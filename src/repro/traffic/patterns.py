"""Synthetic traffic patterns (paper Sec. V).

The paper evaluates uniform, tornado, bit-complement, transpose and
neighbor traffic.  Each pattern maps a source node to a destination —
either deterministically (permutation patterns) or randomly (uniform,
hotspot).  Definitions follow Booksim's, generalized so they remain
well-defined on non-power-of-two meshes such as the paper's 5x5:

* *bit-complement* generalizes to the coordinate complement
  ``(W-1-x, H-1-y)`` (identical to bit complement when each dimension
  is a power of two);
* *tornado* shifts each coordinate by ``ceil(k/2) - 1`` modulo ``k``;
* *transpose* swaps coordinates (requires a square mesh);
* *neighbor* sends to ``((x+1) mod W, y)``.

A deterministic pattern may map a node onto itself (e.g. the center of
an odd-width mesh under complement); such nodes generate no traffic,
as in Booksim.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core.registry import Ref, Registry
from ..noc.topology import Mesh

#: The process-wide traffic-pattern registry — the mirror of
#: ``repro.core.registry.POLICY_REGISTRY`` for workloads.  Factories
#: take the mesh first, then the pattern's own parameters.
PATTERN_REGISTRY = Registry("traffic pattern")


def register_pattern(cls=None, *, name: str | None = None,
                     replace: bool = False):
    """Class decorator registering a ``TrafficPattern`` under its name.

    Usable bare (``@register_pattern``) or parameterized
    (``@register_pattern(name="mine")``).  Registered patterns are
    reachable everywhere a pattern name is accepted: ``make_pattern``,
    ``ScenarioSpec``, ``Workbench`` sweeps and the CLI ``--pattern``
    flag.
    """
    return PATTERN_REGISTRY.registering(cls, name=name, replace=replace)


def pattern_names() -> tuple[str, ...]:
    """All registered pattern names, in registration order."""
    return PATTERN_REGISTRY.names()


def as_pattern_ref(pattern: "Ref | str") -> Ref:
    """Coerce and fully validate a pattern reference (name + params)."""
    return PATTERN_REGISTRY.validate_ref(pattern, skip_positional=1)


class TrafficPattern(ABC):
    """Maps sources to destinations on a given mesh."""

    #: registry name, set by subclasses
    name: str = "abstract"

    #: Human-readable mesh-shape constraint (``list-scenarios`` note),
    #: or None when the pattern works on any mesh.  Violations raise
    #: at construction and surface at ``ScenarioSpec`` validation.
    requires: str | None = None

    def __init__(self, mesh: Mesh) -> None:
        self.mesh = mesh

    @abstractmethod
    def dest(self, src: int, rng: np.random.Generator) -> int:
        """Destination for a packet from ``src`` (may equal ``src``)."""

    def spec_key(self) -> tuple:
        """Canonical identity of this pattern on its mesh.

        Used by the sweep runner to key unit results: two separately
        constructed patterns with the same key are interchangeable.
        Subclasses with extra parameters must extend the tuple.
        """
        return (self.name, self.mesh.width, self.mesh.height)

    @property
    def is_deterministic(self) -> bool:
        """True when every source always targets the same destination."""
        return True

    def active_sources(self) -> list[int]:
        """Nodes that generate traffic (i.e. have a destination != self)."""
        rng = np.random.default_rng(0)
        return [s for s in range(self.mesh.num_nodes)
                if self.is_deterministic and self.dest(s, rng) != s
                or not self.is_deterministic]


@register_pattern
class UniformTraffic(TrafficPattern):
    """Uniform random: each packet targets a uniformly random other node."""

    name = "uniform"

    @property
    def is_deterministic(self) -> bool:
        return False

    def dest(self, src: int, rng: np.random.Generator) -> int:
        n = self.mesh.num_nodes
        d = int(rng.integers(0, n - 1))
        # Skip over src so the draw is uniform over the other n-1 nodes.
        return d + 1 if d >= src else d


@register_pattern
class ComplementTraffic(TrafficPattern):
    """Bit-complement, generalized to coordinate complement."""

    name = "bitcomp"

    def dest(self, src: int, rng: np.random.Generator) -> int:
        c = self.mesh.coord(src)
        return self.mesh.node_at(self.mesh.width - 1 - c.x,
                                 self.mesh.height - 1 - c.y)


@register_pattern
class TransposeTraffic(TrafficPattern):
    """Matrix transpose: ``(x, y) -> (y, x)``.  Requires a square mesh."""

    name = "transpose"
    requires = "square mesh"

    def __init__(self, mesh: Mesh) -> None:
        if mesh.width != mesh.height:
            raise ValueError("transpose traffic requires a square mesh")
        super().__init__(mesh)

    def dest(self, src: int, rng: np.random.Generator) -> int:
        c = self.mesh.coord(src)
        return self.mesh.node_at(c.y, c.x)


@register_pattern
class TornadoTraffic(TrafficPattern):
    """Tornado: shift each coordinate halfway around its dimension."""

    name = "tornado"

    def dest(self, src: int, rng: np.random.Generator) -> int:
        c = self.mesh.coord(src)
        w, h = self.mesh.width, self.mesh.height
        dx = (c.x + (w + 1) // 2 - 1) % w
        dy = (c.y + (h + 1) // 2 - 1) % h
        return self.mesh.node_at(dx, dy)


@register_pattern
class NeighborTraffic(TrafficPattern):
    """Nearest-neighbor: send one hop east (with wrap in the index)."""

    name = "neighbor"

    def dest(self, src: int, rng: np.random.Generator) -> int:
        c = self.mesh.coord(src)
        return self.mesh.node_at((c.x + 1) % self.mesh.width, c.y)


@register_pattern
class BitReverseTraffic(TrafficPattern):
    """Bit-reversal of the node index (power-of-two node counts only)."""

    name = "bitrev"
    requires = "power-of-two node count"

    def __init__(self, mesh: Mesh) -> None:
        n = mesh.num_nodes
        if n & (n - 1):
            raise ValueError(
                "bit-reverse traffic requires a power-of-two node count")
        super().__init__(mesh)
        self._bits = n.bit_length() - 1

    def dest(self, src: int, rng: np.random.Generator) -> int:
        out = 0
        for i in range(self._bits):
            if src & (1 << i):
                out |= 1 << (self._bits - 1 - i)
        return out


@register_pattern
class ShuffleTraffic(TrafficPattern):
    """Perfect shuffle: rotate the index bits left by one."""

    name = "shuffle"
    requires = "power-of-two node count"

    def __init__(self, mesh: Mesh) -> None:
        n = mesh.num_nodes
        if n & (n - 1):
            raise ValueError(
                "shuffle traffic requires a power-of-two node count")
        super().__init__(mesh)
        self._bits = n.bit_length() - 1

    def dest(self, src: int, rng: np.random.Generator) -> int:
        msb = (src >> (self._bits - 1)) & 1
        return ((src << 1) | msb) & (self.mesh.num_nodes - 1)


@register_pattern
class HotspotTraffic(TrafficPattern):
    """Uniform traffic with a fraction diverted to one hotspot node."""

    name = "hotspot"

    def __init__(self, mesh: Mesh, hotspot: int | None = None,
                 fraction: float = 0.2) -> None:
        super().__init__(mesh)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("hotspot fraction must be in [0, 1]")
        self.hotspot = (hotspot if hotspot is not None
                        else mesh.node_at(mesh.width // 2, mesh.height // 2))
        if not 0 <= self.hotspot < mesh.num_nodes:
            raise ValueError(f"hotspot node {self.hotspot} outside mesh")
        self.fraction = fraction
        self._uniform = UniformTraffic(mesh)

    def spec_key(self) -> tuple:
        return super().spec_key() + (self.hotspot, repr(self.fraction))

    @property
    def is_deterministic(self) -> bool:
        return False

    def dest(self, src: int, rng: np.random.Generator) -> int:
        if src != self.hotspot and rng.random() < self.fraction:
            return self.hotspot
        return self._uniform.dest(src, rng)


#: Backward-compatible name -> class view of the registry.  Live: a
#: pattern registered later (e.g. by a plugin module) appears here too.
PATTERNS = PATTERN_REGISTRY.mapping


def make_pattern(pattern: "Ref | str", mesh: Mesh,
                 **kwargs) -> TrafficPattern:
    """Instantiate a **fresh** registered pattern for this mesh.

    ``pattern`` may be a plain name, a parameterized
    :class:`~repro.core.registry.Ref` (``Ref.of("hotspot",
    fraction=0.1)``), or the CLI spelling ``"hotspot:fraction=0.1"``.
    Unknown names and parameters raise ``ValueError`` listing the
    alternatives.
    """
    return PATTERN_REGISTRY.create(pattern, mesh, **kwargs)
