"""Arbitrary traffic matrices (paper Sec. VI).

The multimedia experiments need "custom traffic matrices" — the paper
modified Booksim to support them.  A ``TrafficMatrix`` holds the rate,
in flits per node clock cycle, offered from every source to every
destination.  It provides per-node total rates (the injection process
draws packet arrivals against these) and per-source destination
distributions (sampled on each arrival).
"""

from __future__ import annotations

import hashlib

import numpy as np


class TrafficMatrix:
    """An ``N x N`` non-negative rate matrix with a zero diagonal."""

    def __init__(self, rates: np.ndarray) -> None:
        rates = np.asarray(rates, dtype=float)
        if rates.ndim != 2 or rates.shape[0] != rates.shape[1]:
            raise ValueError(f"traffic matrix must be square, got "
                             f"{rates.shape}")
        if (rates < 0).any():
            raise ValueError("traffic rates must be non-negative")
        if np.diagonal(rates).any():
            raise ValueError("traffic matrix diagonal must be zero "
                             "(no self-traffic)")
        self.rates = rates
        self._row_sums = rates.sum(axis=1)
        # Pre-computed cumulative destination distribution per source,
        # for O(log N) sampling on each packet arrival.
        self._cum = np.cumsum(rates, axis=1)

    @property
    def num_nodes(self) -> int:
        return self.rates.shape[0]

    def node_rate(self, node: int) -> float:
        """Total offered rate from ``node`` (flits / node-cycle)."""
        return float(self._row_sums[node])

    def digest(self) -> str:
        """Content hash of the matrix (sweep-runner cache identity)."""
        h = hashlib.sha256(repr(self.rates.shape).encode())
        h.update(np.ascontiguousarray(self.rates).tobytes())
        return h.hexdigest()

    def max_node_rate(self) -> float:
        """Highest per-node offered rate — the saturation-critical node."""
        return float(self._row_sums.max())

    def mean_node_rate(self) -> float:
        """Average per-node offered rate across all nodes."""
        return float(self._row_sums.mean())

    def total_rate(self) -> float:
        """Aggregate offered rate over the whole NoC."""
        return float(self._row_sums.sum())

    def draw_dest(self, src: int, rng: np.random.Generator) -> int | None:
        """Sample a destination for a packet from ``src``.

        Returns ``None`` when the source offers no traffic.
        """
        total = self._row_sums[src]
        if total <= 0.0:
            return None
        u = rng.random() * total
        return int(np.searchsorted(self._cum[src], u, side="right"))

    def scaled(self, factor: float) -> "TrafficMatrix":
        """A copy with every rate multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return TrafficMatrix(self.rates * factor)

    def normalized_to_peak(self, peak_node_rate: float) -> "TrafficMatrix":
        """Rescale so the most-loaded source offers ``peak_node_rate``."""
        peak = self.max_node_rate()
        if peak <= 0:
            raise ValueError("cannot normalize an all-zero traffic matrix")
        return self.scaled(peak_node_rate / peak)

    @classmethod
    def from_pairs(cls, num_nodes: int,
                   pairs: list[tuple[int, int, float]]) -> "TrafficMatrix":
        """Build from a list of ``(src, dst, rate)`` tuples."""
        rates = np.zeros((num_nodes, num_nodes))
        for src, dst, rate in pairs:
            if not (0 <= src < num_nodes and 0 <= dst < num_nodes):
                raise ValueError(f"pair ({src}, {dst}) outside 0..{num_nodes-1}")
            if src == dst:
                raise ValueError(f"self-traffic pair at node {src}")
            rates[src, dst] += rate
        return cls(rates)

    @classmethod
    def uniform(cls, num_nodes: int, node_rate: float) -> "TrafficMatrix":
        """Uniform matrix: every node spreads ``node_rate`` over the others."""
        if num_nodes < 2:
            raise ValueError("need at least two nodes")
        per_pair = node_rate / (num_nodes - 1)
        rates = np.full((num_nodes, num_nodes), per_pair)
        np.fill_diagonal(rates, 0.0)
        return cls(rates)
