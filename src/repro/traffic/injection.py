"""Injection processes: what each node offers to the network.

A ``TrafficSpec`` answers two questions for the simulation kernel:
how many flits per *node* clock cycle does node ``i`` offer (the
``lambda_node`` of the paper), and where does each packet go.  Packet
arrivals are Bernoulli per node cycle with probability
``node_rate / packet_length`` — the standard Booksim injection process —
and they happen in the node clock domain, so the offered load is
independent of the DVFS state of the network (Sec. III).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod

import numpy as np

from .matrix import TrafficMatrix
from .patterns import TrafficPattern


class TrafficSpec(ABC):
    """Per-node offered rates plus destination selection."""

    @abstractmethod
    def node_rates(self) -> np.ndarray:
        """Offered rate per node, flits per node clock cycle."""

    @abstractmethod
    def draw_dest(self, src: int, rng: np.random.Generator) -> int | None:
        """Destination for a new packet from ``src`` (``None`` = drop)."""

    @abstractmethod
    def scaled(self, factor: float) -> "TrafficSpec":
        """The same spatial distribution at ``factor`` times the rate."""

    def spec_key(self) -> tuple:
        """Canonical identity tuple (sweep-runner cache/seed key).

        The default keys on the class name and the exact per-node rate
        vector.  Subclasses whose destination distribution is not
        determined by those (it usually isn't) must override.
        """
        rates = np.ascontiguousarray(self.node_rates())
        return (type(self).__name__,
                hashlib.sha256(rates.tobytes()).hexdigest())

    def mean_node_rate(self) -> float:
        """Average offered rate across nodes (the sweep x-axis)."""
        return float(self.node_rates().mean())

    # --- time-varying contract ------------------------------------------
    # ``node_rates`` reports the *nominal* (factor-1) rates; a spec may
    # additionally modulate them over node-cycle time.  The injection
    # process queries the modulation through these hooks, so any spec —
    # built-in or user-defined — participates in the peak-rate
    # saturation check and the per-cycle threshold path without
    # ``isinstance`` special cases.

    @property
    def is_time_varying(self) -> bool:
        """Whether offered load depends on node-cycle time."""
        return False

    def max_factor(self) -> float:
        """Peak rate multiplier over all node cycles (1.0 = constant).

        Part of the base contract so the injection process can validate
        ``peak rate <= one packet per node cycle`` for *any* spec: a
        time-varying subclass that forgets to override this inherits a
        conservative constant-rate answer only if it also leaves
        :meth:`rate_factors` at the default — overriding one without
        the other is caught by the injection process's validation.
        """
        return 1.0

    def rate_factors(self, start_cycle: int,
                     count: int) -> np.ndarray | None:
        """Per-cycle rate multipliers for ``count`` cycles from start.

        ``None`` (the default) means the spec is constant-rate and the
        injection process uses its packet probabilities directly.
        Time-varying subclasses return an array of ``count`` factors.
        """
        return None

    def replay_events(self, start_cycle: int, count: int
                      ) -> list[tuple[int, int, int]] | None:
        """Recorded arrivals for ``[start_cycle, start_cycle+count)``.

        ``None`` (the default) means arrivals are drawn from the
        Bernoulli process.  A replayed spec (see
        :class:`repro.workload.TraceTraffic`) returns its recorded
        ``(cycle_offset, src, dst)`` events instead — the injection
        process then consumes no randomness at all, so replay is
        bit-identical on every backend by construction.
        """
        return None


class PiecewiseRateTraffic(TrafficSpec):
    """A base traffic spec whose rate steps over node-cycle time.

    Used for transient experiments: the DVFS controllers must track a
    load step (e.g. an application phase change).  ``steps`` maps node
    cycle thresholds to rate multipliers: ``[(0, 1.0), (50_000, 2.0)]``
    doubles the offered load after node cycle 50,000.  The *spatial*
    distribution is the base spec's at all times.

    ``node_rates``/``mean_node_rate`` report the base (factor-1) rates;
    time-dependent factors are queried by the injection process through
    :meth:`rate_factors`.
    """

    def __init__(self, base: TrafficSpec,
                 steps: list[tuple[int, float]]) -> None:
        if not steps:
            raise ValueError("need at least one (cycle, factor) step")
        cycles = [c for c, _ in steps]
        if cycles != sorted(cycles) or len(set(cycles)) != len(cycles):
            raise ValueError("step cycles must be strictly increasing")
        if cycles[0] != 0:
            raise ValueError("first step must start at node cycle 0")
        if any(f < 0 for _, f in steps):
            raise ValueError("rate factors must be non-negative")
        self.base = base
        self.steps = list(steps)
        # Vectorized lookup tables for rate_factors: workload sources
        # (repro.workload) emit hundreds of segments, so the per-cycle
        # factor query must not scan the step list per cycle.
        self._step_cycles = np.array([c for c, _ in self.steps],
                                     dtype=np.int64)
        self._step_factors = np.array([f for _, f in self.steps])

    def node_rates(self) -> np.ndarray:
        return self.base.node_rates()

    @property
    def is_time_varying(self) -> bool:
        return True

    def max_factor(self) -> float:
        return max(f for _, f in self.steps)

    def factor_at(self, node_cycle: int) -> float:
        current = self.steps[0][1]
        for cycle, factor in self.steps:
            if node_cycle < cycle:
                break
            current = factor
        return current

    def rate_factors(self, start_cycle: int, count: int) -> np.ndarray:
        """Per-cycle rate multipliers for ``count`` cycles from start.

        One ``searchsorted`` over the step table — the values are the
        exact step factors, bit-identical to the scalar
        :meth:`factor_at` per cycle.
        """
        cycles = np.arange(start_cycle, start_cycle + count,
                           dtype=np.int64)
        idx = np.searchsorted(self._step_cycles, cycles,
                              side="right") - 1
        return self._step_factors[idx]

    def draw_dest(self, src: int, rng: np.random.Generator) -> int | None:
        return self.base.draw_dest(src, rng)

    def spec_key(self) -> tuple:
        return ("piecewise", self.base.spec_key(),
                tuple((c, repr(f)) for c, f in self.steps))

    def scaled(self, factor: float) -> "PiecewiseRateTraffic":
        return PiecewiseRateTraffic(self.base.scaled(factor), self.steps)


class PatternTraffic(TrafficSpec):
    """All nodes offer the same rate; destinations follow a pattern.

    This is the synthetic-traffic setup of paper Sec. V: the x-axis of
    every figure is this common per-node rate in flits/cycle.

    A deterministic pattern may leave some nodes without a destination
    (``dest == src``); those nodes offer nothing, exactly as in
    Booksim.
    """

    def __init__(self, pattern: TrafficPattern, node_rate: float) -> None:
        if node_rate < 0:
            raise ValueError("injection rate must be non-negative")
        self.pattern = pattern
        self.node_rate = node_rate
        n = pattern.mesh.num_nodes
        self._rates = np.full(n, node_rate)
        if pattern.is_deterministic:
            rng = np.random.default_rng(0)
            for src in range(n):
                if pattern.dest(src, rng) == src:
                    self._rates[src] = 0.0

    def node_rates(self) -> np.ndarray:
        return self._rates

    def draw_dest(self, src: int, rng: np.random.Generator) -> int | None:
        d = self.pattern.dest(src, rng)
        return None if d == src else d

    def spec_key(self) -> tuple:
        return (("pattern",) + tuple(self.pattern.spec_key())
                + (repr(float(self.node_rate)),))

    def scaled(self, factor: float) -> "PatternTraffic":
        return PatternTraffic(self.pattern, self.node_rate * factor)


class MatrixTraffic(TrafficSpec):
    """Per-pair rates given by a ``TrafficMatrix`` (multimedia apps)."""

    def __init__(self, matrix: TrafficMatrix) -> None:
        self.matrix = matrix

    def node_rates(self) -> np.ndarray:
        return np.array([self.matrix.node_rate(i)
                         for i in range(self.matrix.num_nodes)])

    def draw_dest(self, src: int, rng: np.random.Generator) -> int | None:
        return self.matrix.draw_dest(src, rng)

    def spec_key(self) -> tuple:
        return ("matrix", self.matrix.digest())

    def scaled(self, factor: float) -> "MatrixTraffic":
        return MatrixTraffic(self.matrix.scaled(factor))


class InjectionProcess:
    """Bernoulli packet-arrival process for all nodes, node clock domain.

    Vectorized: one call covers a contiguous range of node cycles for
    every node at once, which keeps the Python overhead of the hot loop
    low.  Arrivals are reproducible for a given seed regardless of the
    network's DVFS trajectory, because the draws depend only on node
    cycles, never on network state.
    """

    def __init__(self, spec: TrafficSpec, packet_length: int,
                 rng: np.random.Generator) -> None:
        if packet_length < 1:
            raise ValueError("packet length must be >= 1")
        self.spec = spec
        self.packet_length = packet_length
        self.rng = rng
        rates = spec.node_rates()
        self.packet_prob = rates / packet_length
        # The base-contract peak check: every spec answers max_factor()
        # (1.0 for constant-rate specs), so a time-varying spec cannot
        # silently bypass the saturation validation.
        peak_factor = float(spec.max_factor())
        if (self.packet_prob * peak_factor > 1.0).any():
            bad = float(rates.max()) * peak_factor
            raise ValueError(
                f"offered rate {bad:.3f} flits/cycle exceeds one packet "
                f"per node cycle for packet length {packet_length}")
        self.num_nodes = len(rates)
        self._cursor = 0  # next node cycle to be drawn

    def arrivals(self, num_node_cycles: int) -> list[tuple[int, int, int]]:
        """Draw arrivals for the next ``num_node_cycles`` node cycles.

        Returns ``(cycle_offset, src, dst)`` tuples, where
        ``cycle_offset`` is the index within the requested range.
        Sources with no destination (deterministic self-traffic, empty
        matrix rows) never appear.
        """
        if num_node_cycles <= 0:
            return []
        replayed = self.spec.replay_events(self._cursor, num_node_cycles)
        if replayed is not None:
            # Trace replay: the events *are* the arrivals; no
            # randomness is consumed, so replay cannot depend on the
            # backend, the chunking or the DVFS trajectory.
            self._cursor += num_node_cycles
            return replayed
        draws = self.rng.random((num_node_cycles, self.num_nodes))
        factors = self.spec.rate_factors(self._cursor, num_node_cycles)
        if factors is not None:
            threshold = np.asarray(factors)[:, None] \
                * self.packet_prob[None, :]
        else:
            threshold = self.packet_prob
        self._cursor += num_node_cycles
        hits = np.nonzero(draws < threshold)
        out = []
        for offset, src in zip(hits[0].tolist(), hits[1].tolist()):
            dst = self.spec.draw_dest(src, self.rng)
            if dst is not None:
                out.append((offset, src, dst))
        return out

    def arrivals_per_node(self, counts: np.ndarray
                          ) -> list[tuple[int, int, int]]:
        """Draw arrivals when nodes tick at *different* rates.

        ``counts[n]`` is how many node cycles completed at node ``n``
        since the last call (from
        :meth:`repro.noc.clock.MultiNodeClockBridge.elapsed_counts`).
        Returns ``(node, cycle_offset, dst)`` tuples, where
        ``cycle_offset`` indexes into node ``n``'s own delivered range.
        Time-varying traffic (piecewise rates, trace replay) is not
        supported together with heterogeneous node clocks.
        """
        if self.spec.is_time_varying:
            raise NotImplementedError(
                "time-varying traffic with heterogeneous node clocks "
                "is not supported")
        counts = np.asarray(counts)
        if len(counts) != self.num_nodes:
            raise ValueError(f"expected {self.num_nodes} counts, got "
                             f"{len(counts)}")
        total = int(counts.sum())
        if total <= 0:
            return []
        # One Bernoulli trial per (node, node-cycle) pair, flattened in
        # node order so results are deterministic for a given seed.
        nodes = np.repeat(np.arange(self.num_nodes), counts)
        probs = self.packet_prob[nodes]
        draws = self.rng.random(total)
        hit_idx = np.nonzero(draws < probs)[0]
        # Per-node cycle offset of each flattened trial.
        firsts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        out = []
        for idx in hit_idx.tolist():
            src = int(nodes[idx])
            offset = idx - int(firsts[src])
            dst = self.spec.draw_dest(src, self.rng)
            if dst is not None:
                out.append((src, offset, dst))
        return out
