"""Multimedia application task graphs (paper Sec. VI, Fig. 9).

The paper drives the NoC with two applications taken from Latif's
design-space-exploration thesis [13]: an H.264/MPEG-4 encoder mapped on
a 4x4 mesh and a Video Conference Encoder (VCE: video + audio encoding
plus an OFDM transmitter) mapped on a 5x5 mesh.  Graph edges carry the
number of packets exchanged per encoded frame.

**Reproduction note** (see DESIGN.md): the published figure is not
machine-readable in the text we work from, so the edge *topology* is
reconstructed along the canonical encoder pipelines while the edge
*weight multisets* are exactly the published ones (all weights are
legible in the paper text).  The experiment only consumes the resulting
traffic matrix, which is dominated by the weight distribution and the
mesh mapping.

"App speed" follows the paper: the injection rate is proportional to
the application speed, normalized so that speed 1.0 corresponds to the
paper's reference operating point of 75 frames/second.  Since the
paper's absolute flit clock-budget per frame is not recoverable, speed
1.0 is calibrated so the most-loaded node offers
``PEAK_NODE_RATE_AT_SPEED1`` flits per node cycle, placing the top of
the sweep just below saturation exactly as in paper Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..noc.config import NocConfig
from .matrix import TrafficMatrix

#: Per-node offered rate (flits/node-cycle) of the most-loaded node at
#: app speed 1.0.  Chosen so the fastest app setting approaches (but
#: does not pass) saturation, matching the shape of paper Fig. 10.
PEAK_NODE_RATE_AT_SPEED1 = 0.50

#: The paper's reference frame rate for speed normalization.
REFERENCE_FPS = 75.0


@dataclass(frozen=True)
class TaskEdge:
    """One producer->consumer communication, in packets per frame."""

    src: str
    dst: str
    packets_per_frame: float


class ApplicationGraph:
    """A task graph with a placement onto a mesh."""

    def __init__(self, name: str, edges: list[TaskEdge],
                 mapping: dict[str, int], mesh_width: int,
                 mesh_height: int) -> None:
        self.name = name
        self.edges = list(edges)
        self.mapping = dict(mapping)
        self.mesh_width = mesh_width
        self.mesh_height = mesh_height
        self._validate()

    def _validate(self) -> None:
        num_nodes = self.mesh_width * self.mesh_height
        placed = set()
        for task, node in self.mapping.items():
            if not 0 <= node < num_nodes:
                raise ValueError(f"task {task!r} mapped outside the mesh")
            if node in placed:
                raise ValueError(f"two tasks mapped to node {node}")
            placed.add(node)
        for edge in self.edges:
            for task in (edge.src, edge.dst):
                if task not in self.mapping:
                    raise ValueError(f"edge references unmapped task {task!r}")
            if edge.src == edge.dst:
                raise ValueError(f"self-edge on task {edge.src!r}")
            if edge.packets_per_frame <= 0:
                raise ValueError("edge weights must be positive")

    @property
    def tasks(self) -> list[str]:
        return sorted(self.mapping)

    def total_packets_per_frame(self) -> float:
        return sum(e.packets_per_frame for e in self.edges)

    def weight_multiset(self) -> list[float]:
        """Sorted edge weights — the published, checkable quantity."""
        return sorted(e.packets_per_frame for e in self.edges)

    def traffic_matrix(self, config: NocConfig,
                       frames_per_second: float) -> TrafficMatrix:
        """Offered traffic at a given frame rate, flits per node cycle.

        Each edge of weight ``w`` packets/frame at ``R`` frames/second
        offers ``w * R * packet_length / f_node`` flits per node clock
        cycle from its source to its destination.
        """
        if frames_per_second < 0:
            raise ValueError("frame rate must be non-negative")
        # Compare the full shape, not just the node count: task
        # coordinates are mapped on a specific width x height grid, so
        # e.g. a 2x8 config must not pass for a 4x4-mapped app (the
        # node count matches but every coordinate would remap).
        if (config.width, config.height) != (self.mesh_width,
                                             self.mesh_height):
            raise ValueError(
                f"{self.name} is mapped on {self.mesh_width}x"
                f"{self.mesh_height}; config is "
                f"{config.width}x{config.height}")
        n = config.num_nodes
        rates = np.zeros((n, n))
        flits_per_packet = config.packet_length
        for edge in self.edges:
            src = self.mapping[edge.src]
            dst = self.mapping[edge.dst]
            rate = (edge.packets_per_frame * frames_per_second
                    * flits_per_packet / config.f_node_hz)
            rates[src, dst] += rate
        return TrafficMatrix(rates)

    def speed1_frames_per_second(
            self, config: NocConfig,
            peak_node_rate: float = PEAK_NODE_RATE_AT_SPEED1) -> float:
        """Frame rate corresponding to app speed 1.0.

        Calibrated so the most-loaded node offers ``peak_node_rate``
        flits per node cycle (see module docstring).
        """
        at_1fps = self.traffic_matrix(config, 1.0)
        peak = at_1fps.max_node_rate()
        if peak <= 0:
            raise ValueError("application offers no traffic")
        return peak_node_rate / peak

    def traffic_at_speed(self, config: NocConfig, speed: float,
                         peak_node_rate: float = PEAK_NODE_RATE_AT_SPEED1,
                         ) -> TrafficMatrix:
        """Traffic matrix at a normalized app speed in [0, 1]."""
        fps = speed * self.speed1_frames_per_second(config, peak_node_rate)
        return self.traffic_matrix(config, fps)


def _grid(width: int, positions: dict[str, tuple[int, int]]) -> dict[str, int]:
    return {task: x + y * width for task, (x, y) in positions.items()}


def h264_encoder() -> ApplicationGraph:
    """The H.264 encoder graph on a 4x4 mesh (paper Fig. 9(a)).

    19 edges; weight multiset exactly as published: {840, 560, 420x2,
    280x3, 228x2, 221, 210, 140, 66x2, 60, 24x2, 3x2}.
    """
    edges = [
        TaskEdge("video_in", "yuv_gen", 840),
        TaskEdge("yuv_gen", "padding_mv", 420),
        TaskEdge("padding_mv", "motion_est", 560),
        TaskEdge("yuv_gen", "motion_est", 420),
        TaskEdge("motion_est", "motion_comp", 280),
        TaskEdge("padding_mv", "motion_comp", 280),
        TaskEdge("motion_comp", "dct", 280),
        TaskEdge("dct", "quant", 210),
        TaskEdge("quant", "entropy_enc", 140),
        TaskEdge("quant", "iq", 66),
        TaskEdge("iq", "idct", 66),
        TaskEdge("idct", "deblock", 228),
        TaskEdge("deblock", "predictor", 228),
        TaskEdge("predictor", "motion_comp", 221),
        TaskEdge("deblock", "sample_hold", 60),
        TaskEdge("sample_hold", "chroma_resampler", 24),
        TaskEdge("chroma_resampler", "stream_out", 24),
        TaskEdge("entropy_enc", "stream_out", 3),
        TaskEdge("predictor", "motion_est", 3),
    ]
    mapping = _grid(4, {
        "video_in": (0, 0), "yuv_gen": (1, 0),
        "padding_mv": (2, 0), "motion_est": (3, 0),
        "entropy_enc": (0, 1), "quant": (1, 1),
        "dct": (2, 1), "motion_comp": (3, 1),
        "stream_out": (0, 2), "iq": (1, 2),
        "idct": (2, 2), "deblock": (3, 2),
        "chroma_resampler": (1, 3), "sample_hold": (2, 3),
        "predictor": (3, 3),
    })
    return ApplicationGraph("h264", edges, mapping, 4, 4)


def vce_encoder() -> ApplicationGraph:
    """The Video Conference Encoder graph on a 5x5 mesh (Fig. 9(b)).

    31 edges: a scaled-up H.264 video pipeline, an audio encoding chain
    (filter bank -> FFT -> MDCT -> quantizer -> Huffman), stream muxing
    and an OFDM transmit path (SRAM -> IFFT -> modulator).  Weight
    multiset exactly as published.
    """
    edges = [
        # video encoding pipeline
        TaskEdge("video_in_mem", "yuv_gen", 8400),
        TaskEdge("yuv_gen", "padding_mv", 4200),
        TaskEdge("padding_mv", "motion_est", 5600),
        TaskEdge("yuv_gen", "motion_est", 4200),
        TaskEdge("motion_est", "motion_comp", 2800),
        TaskEdge("padding_mv", "motion_comp", 2800),
        TaskEdge("motion_comp", "dct", 2800),
        TaskEdge("dct", "quant", 2100),
        TaskEdge("quant", "entropy_enc", 1400),
        TaskEdge("quant", "iq", 2280),
        TaskEdge("iq", "idct", 2280),
        TaskEdge("idct", "deblock", 2210),
        TaskEdge("deblock", "predictor", 4200),
        TaskEdge("predictor", "motion_comp", 2000),
        TaskEdge("deblock", "sample_hold", 600),
        TaskEdge("sample_hold", "chroma_resampler", 240),
        TaskEdge("chroma_resampler", "stream_mux", 240),
        TaskEdge("entropy_enc", "stream_mux", 30),
        # audio encoding chain
        TaskEdge("audio_in", "filter_bank", 660),
        TaskEdge("filter_bank", "fft", 660),
        TaskEdge("fft", "mdct", 640),
        TaskEdge("mdct", "audio_quant", 640),
        TaskEdge("audio_quant", "huffman", 620),
        TaskEdge("huffman", "ps_ts_mux", 90),
        # muxing and OFDM transmit path
        TaskEdge("stream_mux", "ps_ts_mux", 90),
        TaskEdge("ps_ts_mux", "sram", 90),
        TaskEdge("sram", "ifft", 90),
        TaskEdge("ifft", "modulator", 30),
        TaskEdge("modulator", "sram", 30),
        TaskEdge("stream_mux", "sram", 20),
        TaskEdge("fft", "ifft", 20),
    ]
    mapping = _grid(5, {
        "video_in_mem": (0, 0), "yuv_gen": (1, 0), "padding_mv": (2, 0),
        "motion_est": (3, 0), "motion_comp": (4, 0),
        "entropy_enc": (0, 1), "quant": (1, 1), "dct": (2, 1),
        "predictor": (3, 1), "deblock": (4, 1),
        "stream_mux": (0, 2), "iq": (1, 2), "idct": (2, 2),
        "sample_hold": (3, 2), "chroma_resampler": (4, 2),
        "ps_ts_mux": (0, 3), "sram": (1, 3), "ifft": (2, 3),
        "modulator": (3, 3), "huffman": (4, 3),
        "audio_in": (0, 4), "filter_bank": (1, 4), "fft": (2, 4),
        "mdct": (3, 4), "audio_quant": (4, 4),
    })
    return ApplicationGraph("vce", edges, mapping, 5, 5)


#: Published edge-weight multisets, used by tests to pin the graphs to
#: the paper's data.
H264_PUBLISHED_WEIGHTS = sorted([
    420, 840, 280, 280, 280, 560, 140, 420, 210, 66, 3, 3, 228, 66,
    24, 60, 24, 221, 228,
])
VCE_PUBLISHED_WEIGHTS = sorted([
    4200, 8400, 2800, 2800, 5600, 2800, 1400, 30, 2280, 4200, 4200,
    2280, 2210, 240, 240, 660, 660, 2100, 640, 30, 2000, 600, 640,
    90, 620, 90, 90, 90, 30, 20, 20,
])

APPLICATIONS = {"h264": h264_encoder, "vce": vce_encoder}
