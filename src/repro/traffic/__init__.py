"""Traffic generation: synthetic patterns, matrices and applications."""

from .apps import (APPLICATIONS, ApplicationGraph, H264_PUBLISHED_WEIGHTS,
                   PEAK_NODE_RATE_AT_SPEED1, REFERENCE_FPS, TaskEdge,
                   VCE_PUBLISHED_WEIGHTS, h264_encoder, vce_encoder)
from .injection import (InjectionProcess, MatrixTraffic, PatternTraffic,
                        PiecewiseRateTraffic, TrafficSpec)
from .matrix import TrafficMatrix
from .patterns import (PATTERN_REGISTRY, PATTERNS, ComplementTraffic,
                       HotspotTraffic, NeighborTraffic, ShuffleTraffic,
                       TornadoTraffic, TrafficPattern, TransposeTraffic,
                       UniformTraffic, as_pattern_ref, make_pattern,
                       pattern_names, register_pattern)

__all__ = [
    "APPLICATIONS",
    "ApplicationGraph",
    "ComplementTraffic",
    "H264_PUBLISHED_WEIGHTS",
    "HotspotTraffic",
    "InjectionProcess",
    "MatrixTraffic",
    "NeighborTraffic",
    "PATTERNS",
    "PATTERN_REGISTRY",
    "PEAK_NODE_RATE_AT_SPEED1",
    "PatternTraffic",
    "PiecewiseRateTraffic",
    "REFERENCE_FPS",
    "ShuffleTraffic",
    "TaskEdge",
    "TornadoTraffic",
    "TrafficMatrix",
    "TrafficPattern",
    "TrafficSpec",
    "TransposeTraffic",
    "UniformTraffic",
    "VCE_PUBLISHED_WEIGHTS",
    "as_pattern_ref",
    "h264_encoder",
    "make_pattern",
    "pattern_names",
    "register_pattern",
    "vce_encoder",
]
