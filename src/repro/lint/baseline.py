"""Committed baselines: grandfathered findings, paid down over time.

A baseline lets a new rule land *enforcing* — the tree lints clean
from day one — without forcing every historical finding to be fixed in
the same PR.  Baselined findings are invisible to the exit code but
still counted, and deleting the entry (or fixing the code) retires
them for good.

Entries key on ``(rule, path, stripped source line)`` rather than line
numbers, so unrelated edits above a grandfathered finding do not
invalidate the baseline; ``count`` absorbs several identical findings
on identical lines.  Paths compare by segment suffix, so a baseline
written from the repo root still matches a lint run handed an
absolute path.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from .engine import Finding

BASELINE_VERSION = 1

#: the default committed baseline, looked up from the working directory
DEFAULT_BASELINE_NAME = "repro-lint-baseline.json"


def _same_file(a: str, b: str) -> bool:
    """Segment-suffix path equality (absolute vs relative spellings)."""
    pa = [p for p in a.replace("\\", "/").split("/") if p and p != "."]
    pb = [p for p in b.replace("\\", "/").split("/") if p and p != "."]
    if not pa or not pb:
        return False
    n = min(len(pa), len(pb))
    return pa[-n:] == pb[-n:]


class Baseline:
    """A set of grandfathered findings loaded from (or bound for) disk."""

    def __init__(self, entries: list[dict] | None = None) -> None:
        self.entries: list[dict] = list(entries or [])

    # --- construction ---------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path} "
                f"(expected {BASELINE_VERSION})")
        entries = payload.get("entries")
        if not isinstance(entries, list):
            raise ValueError(f"malformed baseline in {path}: "
                             f"'entries' must be a list")
        for entry in entries:
            if not {"rule", "path", "snippet"} <= set(entry):
                raise ValueError(f"malformed baseline entry {entry!r} "
                                 f"(need rule/path/snippet)")
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """A baseline grandfathering exactly ``findings``."""
        counts: Counter[tuple[str, str, str]] = Counter(
            (f.rule, f.path, f.snippet) for f in findings)
        entries = [
            {"rule": rule, "path": path, "snippet": snippet,
             "count": count}
            for (rule, path, snippet), count in sorted(counts.items())]
        return cls(entries)

    # --- persistence ----------------------------------------------------
    def save(self, path: str | Path) -> None:
        payload = {"version": BASELINE_VERSION, "entries": self.entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    # --- filtering ------------------------------------------------------
    def filter(self, findings: list[Finding]
               ) -> tuple[list[Finding], int]:
        """Split findings into (kept, number grandfathered).

        Each entry absorbs up to ``count`` (default 1) findings whose
        rule matches, whose path names the same file, and whose
        stripped source line is unchanged.
        """
        budgets = [
            [entry["rule"], entry["path"], entry["snippet"],
             int(entry.get("count", 1))]
            for entry in self.entries]
        kept: list[Finding] = []
        absorbed = 0
        for finding in findings:
            matched = False
            for budget in budgets:
                rule, path, snippet, left = budget
                if (left > 0 and rule == finding.rule
                        and snippet == finding.snippet
                        and _same_file(path, finding.path)):
                    budget[3] -= 1
                    absorbed += 1
                    matched = True
                    break
            if not matched:
                kept.append(finding)
        return kept, absorbed

    def __len__(self) -> int:
        return sum(int(e.get("count", 1)) for e in self.entries)
