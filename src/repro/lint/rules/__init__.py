"""The determinism-contract rule set (one module per rule).

Importing this package registers every built-in rule with
:data:`repro.lint.engine.RULE_REGISTRY`:

========  ==============================================================
D001      wall-clock reads in simulation/digest paths
D002      global-RNG use outside the seeding module
D003      unsorted filesystem iteration
D004      set/frozenset iteration order in digest/plan/spec-key code
D005      deprecated shim spellings inside ``src/``
D006      registry hygiene (mutable class defaults, unregistered
          policies/patterns)
========  ==============================================================
"""

from . import (fsorder, globalrng, registry_hygiene, setiter, shims,
               wallclock)

__all__ = ["fsorder", "globalrng", "registry_hygiene", "setiter",
           "shims", "wallclock"]
