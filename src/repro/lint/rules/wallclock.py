"""D001 — wall-clock reads in simulation/digest paths.

A unit's result must be a pure function of its spec digest.  A
``time.time()`` (or ``datetime.now()``, ``time.monotonic()``) read
anywhere between "unit submitted" and "result digested" makes the
outcome depend on *when* it ran — exactly the class of bug the
serial/distributed differentials exist to catch, caught here at
review time instead.

``time.perf_counter()`` stays legal: the runner stamps ``elapsed_s``
bookkeeping with it, which never enters a digest.  The distributed
lease/heartbeat modules are allowlisted wholesale in
:mod:`repro.lint.config` — wall-clock expiry is their contract.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .. import config
from ..engine import Finding, Module, Rule, dotted_name, register_rule

#: dotted call targets that read the wall clock
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
    "date.today",
})

#: names whose bare import from ``time`` is itself the violation
_TIME_IMPORTS = frozenset({"time", "time_ns", "monotonic",
                           "monotonic_ns"})


@register_rule
class WallClockRule(Rule):
    id = "D001"
    title = "wall-clock read in a simulation/digest path"
    severity = "error"
    include = config.WALL_CLOCK_SCOPE
    exclude = config.WALL_CLOCK_ALLOWLIST

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in WALL_CLOCK_CALLS:
                    yield self.finding(
                        module, node,
                        f"wall-clock read {name}() in a simulation/"
                        f"digest path; results must be a function of "
                        f"the unit spec digest only (time.perf_counter"
                        f" is fine for elapsed bookkeeping)")
            elif (isinstance(node, ast.ImportFrom)
                    and node.module == "time"):
                for alias in node.names:
                    if alias.name in _TIME_IMPORTS:
                        yield self.finding(
                            module, node,
                            f"'from time import {alias.name}' pulls a "
                            f"wall-clock reader into a simulation/"
                            f"digest path; import the module and use "
                            f"time.perf_counter for bookkeeping")
