"""D004 — set iteration order in digest/plan/spec-key code.

``set`` and ``frozenset`` iterate in hash order, and string hashing is
salted per process (``PYTHONHASHSEED``): two workers iterating one set
see two orders.  Where that order reaches a digest, a cache key, a
spec tuple or a float accumulation (float addition does not commute
bit-for-bit), the result silently stops being a function of the spec.
CI runs tier-1 under a randomized ``PYTHONHASHSEED`` to surface these
dynamically; this rule rejects them at review time.

Flagged, within the scoped digest/plan modules
(:data:`repro.lint.config.SET_ORDER_SCOPE`):

* ``for``-loops, comprehensions and ``yield from`` iterating a set
  literal, set comprehension, or ``set(...)``/``frozenset(...)`` call;
* the same via a local name assigned from one of those (straight-line
  tracking per scope);
* order-sensitive consumers (``tuple``, ``list``, ``"".join``,
  ``sum``, ``enumerate``, ``reversed``) applied to one.

``sorted(<set>)`` is the fix, and membership tests stay legal — sets
are still the right container, they just may not *leak order*.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .. import config
from ..engine import Finding, Module, Rule, register_rule

#: order-sensitive consumers: the set's order becomes data
_ORDER_SINKS = frozenset({"tuple", "list", "sum", "enumerate",
                          "reversed"})

_SET_CALLS = frozenset({"set", "frozenset"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _SET_CALLS)


class _ScopeVisitor(ast.NodeVisitor):
    """Walks one scope in statement order, tracking set-valued names."""

    def __init__(self, rule: "SetIterRule", module: Module) -> None:
        self.rule = rule
        self.module = module
        self.tainted: set[str] = set()
        self.findings: list[Finding] = []

    # --- taint bookkeeping ---------------------------------------------
    def _note_assign(self, target: ast.AST, value: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        if _is_set_expr(value):
            self.tainted.add(target.id)
        else:
            self.tainted.discard(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_assign(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._note_assign(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # `s |= {...}` keeps a set a set; anything else we forget.
        self.generic_visit(node)

    # --- nested scopes get their own visitor ---------------------------
    def _nested(self, node: ast.AST) -> None:
        nested = _ScopeVisitor(self.rule, self.module)
        for child in ast.iter_child_nodes(node):
            nested.visit(child)
        self.findings.extend(nested.findings)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._nested(node)

    # --- order escapes -------------------------------------------------
    def _ordered(self, node: ast.AST, context: str) -> None:
        if _is_set_expr(node):
            self.findings.append(self.rule.finding(
                self.module, node,
                f"iteration order of a set {context}; wrap it in "
                f"sorted(...) — set order is hash-salted and varies "
                f"per process (PYTHONHASHSEED)"))
        elif (isinstance(node, ast.Name)
                and node.id in self.tainted):
            self.findings.append(self.rule.finding(
                self.module, node,
                f"iteration order of set {node.id!r} {context}; wrap "
                f"it in sorted(...) — set order is hash-salted and "
                f"varies per process (PYTHONHASHSEED)"))

    def visit_For(self, node: ast.For) -> None:
        self._ordered(node.iter, "drives this loop")
        self.generic_visit(node)

    def _comp(self, node) -> None:
        for gen in node.generators:
            self._ordered(gen.iter, "drives this comprehension")
        self.generic_visit(node)

    visit_ListComp = _comp
    visit_GeneratorExp = _comp
    visit_DictComp = _comp

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # building another *set* from a set keeps order irrelevant
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self._ordered(node.value, "is yielded")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        sink = None
        if isinstance(func, ast.Name) and func.id in _ORDER_SINKS:
            sink = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            sink = "join"
        if sink is not None and node.args:
            self._ordered(node.args[0], f"reaches {sink}(...)")
        self.generic_visit(node)


@register_rule
class SetIterRule(Rule):
    id = "D004"
    title = "set iteration order reaches digest/plan code"
    severity = "error"
    include = config.SET_ORDER_SCOPE

    def check(self, module: Module) -> Iterator[Finding]:
        visitor = _ScopeVisitor(self, module)
        for child in ast.iter_child_nodes(module.tree):
            visitor.visit(child)
        yield from visitor.findings
