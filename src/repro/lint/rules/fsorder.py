"""D003 — unsorted filesystem iteration.

``os.listdir`` / ``Path.iterdir`` / ``glob`` return entries in
whatever order the filesystem hands back — ext4, tmpfs and NFS all
disagree, and so do two runs on one machine after a rename.  Any scan
whose order feeds iteration (queue draining, result collection,
digesting a directory) must pin it with ``sorted(...)`` *at the call
site*, where the reviewer can see it.

The check is deliberately syntactic: the scan call must sit directly
inside an order-insensitive consumer (``sorted``, ``len``, ``set``,
``frozenset``, or a membership test).  Stashing the listing in a
variable and sorting later may be correct, but it is unverifiable file
-locally — restructure, or suppress with an inline comment explaining
why order cannot escape.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Module, Rule, register_rule

#: method names that enumerate a directory on any receiver
_SCAN_METHODS = frozenset({"iterdir", "rglob", "iglob", "scandir",
                           "listdir"})

#: ``<module>.glob(...)`` / ``<path>.glob(...)`` both enumerate; bare
#: ``glob(...)`` from ``from glob import glob`` too
_GLOB_NAMES = frozenset({"glob", "iglob"})

#: wrapping calls that make enumeration order irrelevant
_ORDER_FREE_WRAPPERS = frozenset({"sorted", "len", "set", "frozenset"})


def _is_scan_call(node: ast.Call) -> str | None:
    """The scanning function's display name, or None."""
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr in _SCAN_METHODS or func.attr in _GLOB_NAMES:
            return func.attr
    elif isinstance(func, ast.Name):
        if func.id in ("listdir", "scandir") or func.id in _GLOB_NAMES:
            return func.id
    return None


@register_rule
class FsOrderRule(Rule):
    id = "D003"
    title = "unsorted filesystem iteration"
    severity = "error"

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _is_scan_call(node)
            if name is None:
                continue
            if self._order_free_context(module, node):
                continue
            yield self.finding(
                module, node,
                f"{name}() result order is filesystem-dependent; wrap "
                f"the call in sorted(...) so scans are order-stable "
                f"across hosts and runs")

    def _order_free_context(self, module: Module,
                            node: ast.Call) -> bool:
        parent = module.parent(node)
        if isinstance(parent, ast.Call):
            func = parent.func
            if (isinstance(func, ast.Name)
                    and func.id in _ORDER_FREE_WRAPPERS
                    and parent.args and parent.args[0] is node):
                return True
        # `x in os.listdir(d)` — membership only, order-free
        if isinstance(parent, ast.Compare) and node in parent.comparators:
            return True
        return False
