"""D005 — deprecated shim spellings inside ``src/``.

The pre-context keyword forms — ``run_sweep(runner=..., engine=...)``
and ``Workbench(jobs=..., unit_cache=..., engine=...)`` — live on as
``DeprecationWarning`` shims for downstream users, but internal code
migrated to ``ExecutionContext`` in PR 7 and pytest promotes the
warnings to errors.  This rule closes the remaining gap: a deprecated
spelling on a path no test exercises would otherwise survive until a
user hits it.  Library code must build a context once and pass it
down whole.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Module, Rule, register_rule

#: callable name -> (deprecated keywords, replacement hint)
_SHIMS = {
    "run_sweep": (
        frozenset({"runner", "engine"}),
        "build an ExecutionContext and pass context=...",
    ),
    "Workbench": (
        frozenset({"jobs", "unit_cache", "engine"}),
        "pass Workbench(context=ExecutionContext(...))",
    ),
}


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register_rule
class DeprecatedShimRule(Rule):
    id = "D005"
    title = "deprecated shim spelling in library code"
    severity = "error"

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in _SHIMS:
                continue
            deprecated, hint = _SHIMS[name]
            used = sorted(
                kw.arg for kw in node.keywords
                if kw.arg is not None and kw.arg in deprecated)
            if used:
                spelled = ", ".join(f"{kw}=" for kw in used)
                yield self.finding(
                    module, node,
                    f"deprecated {name}({spelled}...) spelling; {hint}")
