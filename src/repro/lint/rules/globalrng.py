"""D002 — global-RNG use outside the seeding module.

Every random stream in a unit's execution derives from its spec-hash
seed (``repro.runner.seeding``): ``np.random.default_rng(seed)`` and
friends.  Touching the *module-level* generators — ``random.random()``,
``np.random.rand()``, ``np.random.seed()`` — couples results to
process-global state: import order, library internals, or another
sweep running in the same interpreter.  The shared-PI-state bug class
(PR 5) taught us how quietly that breaks bit-identity.

Constructing *instance* RNGs stays legal everywhere — the point is
that state must be owned, not shared: ``random.Random()`` for jitter
that never touches results, ``np.random.default_rng(seed)`` /
``SeedSequence`` for seeded streams.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .. import config
from ..engine import Finding, Module, Rule, register_rule

#: ``random.<attr>`` calls that construct owned state (allowed)
_ALLOWED_RANDOM = frozenset({"Random", "SystemRandom"})

#: ``numpy.random.<attr>`` constructors/types (allowed); everything
#: else on that module is the legacy global generator
_ALLOWED_NP_RANDOM = frozenset({
    "default_rng", "Generator", "BitGenerator", "SeedSequence",
    "RandomState", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


def _module_aliases(tree: ast.Module
                    ) -> tuple[set[str], set[str], set[str]]:
    """Local names bound to ``random``, ``numpy``, ``numpy.random``."""
    random_names: set[str] = set()
    numpy_names: set[str] = set()
    np_random_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                if alias.name == "random":
                    random_names.add(local)
                elif alias.name == "numpy":
                    numpy_names.add(local)
                elif alias.name == "numpy.random":
                    if alias.asname:
                        np_random_names.add(alias.asname)
                    else:
                        numpy_names.add("numpy")
        elif isinstance(node, ast.ImportFrom) and node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    np_random_names.add(alias.asname or alias.name)
    return random_names, numpy_names, np_random_names


@register_rule
class GlobalRngRule(Rule):
    id = "D002"
    title = "global-RNG use outside the seeding module"
    severity = "error"
    exclude = config.GLOBAL_RNG_ALLOWLIST

    def check(self, module: Module) -> Iterator[Finding]:
        aliases = _module_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, *aliases)

    def _check_import(self, module: Module,
                      node: ast.ImportFrom) -> Iterator[Finding]:
        if node.module == "random":
            for alias in node.names:
                if alias.name not in _ALLOWED_RANDOM:
                    yield self.finding(
                        module, node,
                        f"'from random import {alias.name}' binds the "
                        f"process-global RNG; unit streams must derive "
                        f"from spec-hash seeds (repro.runner.seeding), "
                        f"non-result jitter from an owned "
                        f"random.Random() instance")
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _ALLOWED_NP_RANDOM:
                    yield self.finding(
                        module, node,
                        f"'from numpy.random import {alias.name}' "
                        f"binds numpy's global generator; use "
                        f"default_rng(seed) with a spec-hash seed "
                        f"(repro.runner.seeding)")

    def _check_call(self, module: Module, node: ast.Call,
                    random_names: set[str], numpy_names: set[str],
                    np_random_names: set[str]) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        # random.<fn>(...)
        if (isinstance(func.value, ast.Name)
                and func.value.id in random_names
                and func.attr not in _ALLOWED_RANDOM):
            yield self.finding(
                module, node,
                f"call to the module-level random.{func.attr}(); "
                f"global RNG state is shared across the process — "
                f"derive streams from spec-hash seeds "
                f"(repro.runner.seeding) or own a random.Random() "
                f"instance")
            return
        # np.random.<fn>(...) or <np-random-alias>.<fn>(...)
        value = func.value
        is_np_random = (
            (isinstance(value, ast.Attribute) and value.attr == "random"
             and isinstance(value.value, ast.Name)
             and value.value.id in numpy_names)
            or (isinstance(value, ast.Name)
                and value.id in np_random_names))
        if is_np_random and func.attr not in _ALLOWED_NP_RANDOM:
            yield self.finding(
                module, node,
                f"call to numpy's module-level random.{func.attr}(); "
                f"use np.random.default_rng(seed) with a spec-hash "
                f"seed (repro.runner.seeding)")
