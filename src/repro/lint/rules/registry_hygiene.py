"""D006 — registry hygiene for policies and traffic patterns.

Two checks over ``DvfsPolicy``/``TrafficPattern`` subclasses:

* **mutable class-level defaults** — a ``list``/``dict``/``set``
  literal (or constructor call) assigned at class level is shared by
  every instance.  For controllers that is exactly the PR-5 bug: one
  PI state leaking across sweep units, breaking bit-identity between
  execution orders.  Mutable state belongs in ``__init__``.
* **unregistered concrete classes** — a subclass that declares a
  concrete registry ``name`` (anything but ``"abstract"``) must be
  registered *in its own module*: decorated with
  ``@register_policy``/``@register_pattern`` (or ``.registering``), or
  passed to a module-level registration call.  Registration at a
  distance means the class silently misses every name-driven consumer
  (CLI ``--policy``, scenarios, default figure sweeps) until someone
  remembers the side table.

Subclassing is resolved module-locally (a class whose base chain
reaches a name ending in ``DvfsPolicy`` or ``TrafficPattern``), so
the rule works file-by-file without imports.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Module, Rule, dotted_name, register_rule

_ROOT_BASES = ("DvfsPolicy", "TrafficPattern")

#: calls producing a fresh mutable container per evaluation — shared
#: forever when evaluated once at class level
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict",
                            "OrderedDict", "Counter", "deque"})

_REGISTER_MARKERS = ("register_policy", "register_pattern",
                     "registering")


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        name = dotted_name(base)
        if name:
            names.append(name.split(".")[-1])
    return names


def _registry_classes(tree: ast.Module) -> dict[str, ast.ClassDef]:
    """Module classes descending (module-locally) from a root base."""
    classes = {node.name: node for node in tree.body
               if isinstance(node, ast.ClassDef)}
    resolved: dict[str, bool] = {}

    def descends(name: str, seen: frozenset[str]) -> bool:
        if name in _ROOT_BASES:
            return True
        if name in resolved:
            return resolved[name]
        node = classes.get(name)
        if node is None or name in seen:
            return False
        result = any(descends(base, seen | {name})
                     for base in _base_names(node))
        resolved[name] = result
        return result

    return {name: node for name, node in classes.items()
            if descends(name, frozenset())}


def _is_mutable_default(value: ast.AST) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_CALLS)


def _concrete_name(node: ast.ClassDef) -> str | None:
    """The class's registry ``name`` literal, if concretely declared."""
    for stmt in node.body:
        targets: list[ast.AST] = []
        value: ast.AST | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if (isinstance(target, ast.Name) and target.id == "name"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                    and value.value != "abstract"):
                return value.value
    return None


def _is_registered(node: ast.ClassDef, tree: ast.Module) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target) or ""
        if any(marker in name for marker in _REGISTER_MARKERS):
            return True
    # module-level `register_policy(ClassName)` / `REG.add(..., Cls)`
    for stmt in tree.body:
        if not (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)):
            continue
        call = stmt.value
        name = dotted_name(call.func) or ""
        if not (any(marker in name for marker in _REGISTER_MARKERS)
                or name.endswith(".add")):
            continue
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Name) and arg.id == node.name:
                return True
    return False


@register_rule
class RegistryHygieneRule(Rule):
    id = "D006"
    title = "policy/pattern registry hygiene"
    severity = "error"

    def check(self, module: Module) -> Iterator[Finding]:
        for node in _registry_classes(module.tree).values():
            yield from self._check_mutable_defaults(module, node)
            yield from self._check_registered(module, node)

    def _check_mutable_defaults(self, module: Module,
                                node: ast.ClassDef) -> Iterator[Finding]:
        for stmt in node.body:
            value = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if value is not None and _is_mutable_default(value):
                yield self.finding(
                    module, stmt,
                    f"mutable class-level default on {node.name}; one "
                    f"container is shared by every instance (the "
                    f"shared-PI-state bug class) — initialize it in "
                    f"__init__")

    def _check_registered(self, module: Module,
                          node: ast.ClassDef) -> Iterator[Finding]:
        concrete = _concrete_name(node)
        if concrete is None:
            return
        if not _is_registered(node, module.tree):
            kind = ("@register_pattern"
                    if "TrafficPattern" in _base_names(node)
                    or self._pattern_ancestry(module, node)
                    else "@register_policy")
            yield self.finding(
                module, node,
                f"{node.name} declares registry name {concrete!r} but "
                f"is not registered in this module; decorate it with "
                f"{kind} so name-driven consumers (CLI, scenarios, "
                f"sweeps) can find it")

    def _pattern_ancestry(self, module: Module,
                          node: ast.ClassDef) -> bool:
        classes = {c.name: c for c in module.tree.body
                   if isinstance(c, ast.ClassDef)}
        stack = list(_base_names(node))
        seen: set[str] = set()
        while stack:
            base = stack.pop()
            if base == "TrafficPattern":
                return True
            if base in seen or base not in classes:
                continue
            seen.add(base)
            stack.extend(_base_names(classes[base]))
        return False
