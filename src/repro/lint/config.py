"""Path scopes for the determinism-contract rules.

Scoping is data, not code, so the answer to "where does this rule
apply, and why is that file exempt?" lives in one reviewable place.
Fragments match path segments (see
:func:`repro.lint.engine.path_matches`): a trailing ``/`` scopes a
subtree, a ``.py`` entry scopes one file.

Two kinds of entry:

* *include* scopes — where the contract is load-bearing.  D001 and
  D004 only make sense where results are digested or simulated;
  flagging a wall-clock read in a CLI progress printer would teach
  people to ignore the linter.
* *allowlists* — modules whose **job** is the thing the rule forbids.
  The distributed queue's leases and heartbeats are *built on*
  wall-clock expiry stamps (README "Distributed execution"); listing
  them here is an audited decision, where an inline suppression per
  call site would drown the real signal.
"""

from __future__ import annotations

#: D001: simulation / digest paths where wall-clock reads poison
#: results.  ``runner/executor.py`` and friends are included via the
#: whole-runner scope; the experiments CLI (progress timing) is not.
WALL_CLOCK_SCOPE = (
    "repro/noc/",
    "repro/control/",
    "repro/core/",
    "repro/runner/",
    "repro/scenario.py",
    "repro/workload/",
)

#: D001 allowlist: the distributed lease/heartbeat machinery.  Lease
#: expiry, idle backoff and shutdown sentinels are *defined* in terms
#: of wall-clock stamps shared across hosts — that is their contract,
#: and it never reaches a unit digest (task ids derive from spec
#: digests alone).
WALL_CLOCK_ALLOWLIST = (
    "repro/runner/distributed/lease.py",
    "repro/runner/distributed/queue.py",
    "repro/runner/distributed/worker.py",
    "repro/runner/distributed/collector.py",
    "repro/runner/distributed/pool.py",
    "repro/runner/distributed/broker.py",
    "repro/runner/distributed/service.py",
)

#: D002 allowlist: the one module allowed to mint RNGs from run seeds.
GLOBAL_RNG_ALLOWLIST = (
    "repro/runner/seeding.py",
)

#: D004: code where iteration order reaches a digest, a cache key or a
#: float accumulation.  Unordered iteration elsewhere (e.g. a backend
#: draining futures) is order-free by construction and stays legal.
SET_ORDER_SCOPE = (
    "repro/runner/",
    "repro/scenario.py",
    "repro/core/registry.py",
    "repro/noc/stats.py",
    "repro/workload/",
)
