"""The ``python -m repro.lint`` command line.

Exit codes: 0 — no error-severity findings; 1 — at least one; 2 —
usage errors (argparse).  ``--format json`` emits the machine-readable
report CI uploads as an artifact; ``--write-baseline`` grandfathers
the current findings so a new rule can land enforcing on a dirty
tree.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import Baseline, DEFAULT_BASELINE_NAME
from .engine import check_paths, iter_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based determinism-contract analyzer for the "
                    "repro tree (rules D001-D006; see README 'Static "
                    "analysis').")
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src if present, "
             "else the current directory)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--severity", action="append", default=[], metavar="RULE=LEVEL",
        help="override one rule's severity, e.g. D004=warning "
             "(repeatable)")
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file of grandfathered findings (default: "
             f"./{DEFAULT_BASELINE_NAME} when present)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and "
             "exit 0")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit")
    return parser


def _parse_severities(pairs: list[str]) -> dict[str, str]:
    out: dict[str, str] = {}
    for pair in pairs:
        rule, sep, level = pair.partition("=")
        if not sep or not rule or not level:
            raise ValueError(
                f"malformed --severity {pair!r} (expected RULE=LEVEL)")
        out[rule.strip()] = level.strip()
    return out


def _resolve_baseline(args) -> tuple[Baseline | None, Path | None]:
    if args.no_baseline:
        return None, None
    if args.baseline is not None:
        path = Path(args.baseline)
        if path.exists():
            return Baseline.load(path), path
        return None, path
    default = Path(DEFAULT_BASELINE_NAME)
    if default.exists():
        return Baseline.load(default), default
    return None, default


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            scope = ", ".join(rule.include) if rule.include else "all"
            print(f"{rule.id}  [{rule.severity:7s}]  {rule.title}  "
                  f"(scope: {scope})")
        return 0

    paths = args.paths or None
    if not paths:
        paths = ["src"] if Path("src").is_dir() else ["."]
    select = (None if args.select is None
              else [s.strip() for s in args.select.split(",")
                    if s.strip()])
    try:
        severities = _parse_severities(args.severity)
        baseline, baseline_path = _resolve_baseline(args)
        if args.write_baseline:
            report = check_paths(paths, select=select,
                                 severities=severities)
            target = baseline_path or Path(DEFAULT_BASELINE_NAME)
            Baseline.from_findings(report.findings).save(target)
            print(f"wrote {len(report.findings)} finding(s) to "
                  f"{target}")
            return 0
        report = check_paths(paths, select=select, baseline=baseline,
                             severities=severities)
    except ValueError as exc:
        parser.error(str(exc))  # exits 2

    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        print(report.summary())
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
