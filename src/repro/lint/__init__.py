"""repro-lint — the repo's determinism-contract static analyzer.

The dynamic side of the determinism guarantee (differential tests,
fault injection, the randomized-``PYTHONHASHSEED`` CI run) catches
violations after they execute; this package rejects them at review
time with an AST pass purpose-built for this codebase's failure modes
(see :mod:`repro.lint.rules` for the rule table and README "Static
analysis" for the workflow).

Three ways in:

* library — ``check_paths(["src"])`` returns a
  :class:`~repro.lint.engine.LintReport`;
* CLI — ``python -m repro.lint [paths] --format {text,json}``; exit 0
  clean, 1 on error-severity findings, 2 on usage errors;
* tier-1 — ``tests/test_lint_tree.py`` lints the installed ``repro``
  package and fails on any non-baselined finding.
"""

from .baseline import Baseline, DEFAULT_BASELINE_NAME
from .engine import (Finding, LintReport, Module, RULE_REGISTRY, Rule,
                     check_paths, check_source, iter_rules,
                     register_rule)

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintReport",
    "Module",
    "RULE_REGISTRY",
    "Rule",
    "check_paths",
    "check_source",
    "iter_rules",
    "register_rule",
]
