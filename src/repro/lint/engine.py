"""The repro-lint engine: modules, rules, suppression, reporting.

Everything in this reproduction rests on one invariant: a sweep's
results are a pure function of each unit's spec digest, so serial,
pooled, batched and distributed execution are bit-identical (README
"Determinism guarantee").  The differential tests enforce that
*dynamically*; this package enforces the contract *statically* — an
AST pass over the source tree that rejects the nondeterminism classes
that have actually bitten this codebase (wall-clock reads in
simulation paths, global RNG use, unsorted directory scans, set-order
dependence in digest code, deprecated shims, registry hygiene).

The engine is deliberately stdlib-only (``ast`` + ``re``): it must be
able to lint a tree whose imports are broken, and it must run in CI
steps that install nothing.

Layout:

* :class:`Module` — one parsed source file (AST, parent links,
  suppression comments);
* :class:`Rule` — base class; concrete rules live in
  :mod:`repro.lint.rules` and self-register via :func:`register_rule`
  into a name->class registry (the same shape as the policy/pattern
  registries in :mod:`repro.core.registry`);
* :func:`check_paths` / :func:`check_source` — the library entry
  points (the CLI in :mod:`repro.lint.cli` and the tier-1 tree test
  are thin wrappers over these).

Suppression syntax: a trailing ``# repro-lint: disable=D001`` comment
silences the named rule(s) on that line (comma-separate several;
``disable=all`` silences every rule).  Grandfathered findings live in
a committed baseline file instead (:mod:`repro.lint.baseline`), so new
code is held to the contract even while old findings are paid down.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

SEVERITIES = ("warning", "error")

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_*][A-Za-z0-9_*,\s-]*)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix display path, as the file was addressed
    line: int
    col: int
    message: str
    severity: str = "error"
    #: the stripped source line — the baseline's drift-stable key
    snippet: str = ""

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.severity}: {self.message}")

    def to_json(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "severity": self.severity,
                "message": self.message, "snippet": self.snippet}


class Module:
    """One parsed source file, ready for rules to inspect."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: child AST node -> parent (rules use this to ask "is this
        #: call already wrapped in sorted()?")
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        #: line number -> rule ids disabled on that line ({"all"} = any)
        self.suppressions: dict[int, frozenset[str]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                ids = frozenset(
                    part.strip() for part in match.group(1).split(",")
                    if part.strip())
                self.suppressions[lineno] = frozenset(
                    "all" if i == "*" else i for i in ids)

    @classmethod
    def parse(cls, path: str, source: str) -> "Module":
        """Parse ``source``; raises ``SyntaxError`` on a broken file."""
        return cls(path, source, ast.parse(source, filename=path))

    # --- helpers rules share -------------------------------------------
    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def suppressed(self, finding: Finding) -> bool:
        ids = self.suppressions.get(finding.line)
        return bool(ids) and ("all" in ids or finding.rule in ids)


def dotted_name(node: ast.AST) -> str | None:
    """``os.path.join`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def path_matches(display: str, fragment: str) -> bool:
    """Does ``display`` fall under the scope ``fragment``?

    Fragments are posix path pieces matched at segment boundaries:
    ``"repro/noc/"`` (trailing slash) scopes a directory subtree,
    ``"repro/runner/units.py"`` scopes one file.  Matching is
    containment-based so it works for absolute paths, repo-relative
    paths and tmp-dir test fixtures alike.
    """
    hay = "/" + display.replace("\\", "/").strip("/") + "/"
    needle = "/" + fragment.strip("/") + "/"
    return needle in hay


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``title``/``severity``, scope themselves with
    ``include``/``exclude`` path fragments (empty ``include`` = every
    file), and implement :meth:`check`.
    """

    id: str = ""
    title: str = ""
    severity: str = "error"
    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()

    def applies_to(self, module: Module) -> bool:
        if any(path_matches(module.path, f) for f in self.exclude):
            return False
        if not self.include:
            return True
        return any(path_matches(module.path, f) for f in self.include)

    def check(self, module: Module) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str,
                severity: str | None = None) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=self.id, path=module.path, line=line,
                       col=col, message=message,
                       severity=severity or self.severity,
                       snippet=module.line_text(line))


#: rule id -> rule class, in registration order (reported sorted by id)
RULE_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (id must be new)."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULE_REGISTRY:
        raise ValueError(f"rule id {cls.id!r} is already registered")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"rule {cls.id} severity must be one of "
                         f"{SEVERITIES}, got {cls.severity!r}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def iter_rules(select: Iterable[str] | None = None,
               severities: dict[str, str] | None = None) -> list[Rule]:
    """Fresh rule instances, sorted by id.

    ``select`` restricts to the named ids (unknown ids raise);
    ``severities`` overrides per-rule severity (the CLI's
    ``--severity D004=warning``).
    """
    _load_builtin_rules()
    wanted = None if select is None else set(select)
    if wanted is not None:
        unknown = wanted - set(RULE_REGISTRY)
        if unknown:
            known = ", ".join(sorted(RULE_REGISTRY))
            raise ValueError(f"unknown rule id(s) "
                             f"{', '.join(sorted(unknown))}; known: {known}")
    rules = []
    for rule_id in sorted(RULE_REGISTRY):
        if wanted is not None and rule_id not in wanted:
            continue
        rule = RULE_REGISTRY[rule_id]()
        if severities and rule_id in severities:
            level = severities[rule_id]
            if level not in SEVERITIES:
                raise ValueError(
                    f"invalid severity {level!r} for {rule_id}; "
                    f"use one of {SEVERITIES}")
            rule.severity = level
        rules.append(rule)
    return rules


def _load_builtin_rules() -> None:
    # Imported lazily so `import repro.lint.engine` alone never costs
    # the rule modules, and so the rules package can import the engine.
    from . import rules  # noqa: F401  (import registers the rules)


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def to_json(self) -> dict:
        return {
            "version": 1,
            "files": self.files,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "errors": len(self.errors),
            "findings": [f.to_json() for f in
                         sorted(self.findings, key=Finding.sort_key)],
        }

    def summary(self) -> str:
        return (f"checked {self.files} file(s): "
                f"{len(self.findings)} finding(s) "
                f"({len(self.errors)} error(s), "
                f"{self.suppressed} suppressed, "
                f"{self.baselined} baselined)")


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Every ``.py`` under ``paths``, deterministically ordered."""
    out: list[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        else:
            out.append(path)
    return out


def check_module(module: Module, rules: Iterable[Rule],
                 report: LintReport) -> None:
    """Run ``rules`` over one module, folding into ``report``."""
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if module.suppressed(finding):
                report.suppressed += 1
            else:
                report.findings.append(finding)


def check_source(source: str, path: str = "<string>",
                 select: Iterable[str] | None = None) -> LintReport:
    """Lint one source string (the unit-test entry point)."""
    report = LintReport(files=1)
    rules = iter_rules(select)
    try:
        module = Module.parse(path, source)
    except SyntaxError as exc:
        report.findings.append(_parse_finding(path, exc))
        return report
    check_module(module, rules, report)
    report.findings.sort(key=Finding.sort_key)
    return report


def check_paths(paths: Iterable[str | Path],
                select: Iterable[str] | None = None,
                baseline=None,
                severities: dict[str, str] | None = None) -> LintReport:
    """Lint files/trees; the library API behind the CLI and tier-1.

    ``baseline`` is a :class:`repro.lint.baseline.Baseline` (or None):
    findings it covers are counted, not reported.
    """
    rules = iter_rules(select, severities)
    report = LintReport()
    for path in iter_python_files(paths):
        report.files += 1
        display = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            module = Module.parse(display, source)
        except SyntaxError as exc:
            report.findings.append(_parse_finding(display, exc))
            continue
        except OSError as exc:
            report.findings.append(Finding(
                rule="E000", path=display, line=1, col=0,
                message=f"cannot read file: {exc}", severity="error"))
            continue
        check_module(module, rules, report)
    if baseline is not None:
        report.findings, report.baselined = baseline.filter(
            report.findings)
    report.findings.sort(key=Finding.sort_key)
    return report


def _parse_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(rule="E001", path=path, line=exc.lineno or 1,
                   col=(exc.offset or 1) - 1,
                   message=f"syntax error: {exc.msg}", severity="error")
