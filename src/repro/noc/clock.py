"""Clock-domain bookkeeping: the heart of the paper's DVFS mechanism.

The paper's key modification to Booksim is *decoupling the network
clock from the node clock* (Sec. III).  The simulation kernel advances
in **network** clock cycles; each cycle advances absolute time by the
current network period ``1/Fnoc``.  Node-domain processes (the traffic
generators) tick at the fixed ``Fnode``; when the network runs slower
than the nodes, several node cycles elapse per network cycle, which is
exactly how eq. (1), ``lambda_noc = lambda_node * Fnode / Fnoc``,
manifests mechanically: more flits are offered per network cycle and
the NoC operates closer to saturation.
"""

from __future__ import annotations

import numpy as np


class NetworkClock:
    """The NoC's scalable clock: cycle counter plus absolute time.

    Frequency changes (from the DVFS controller) take effect on the
    next cycle boundary, which matches the paper's assumption that the
    PLL retunes between control periods.
    """

    __slots__ = ("f_min_hz", "f_max_hz", "freq_hz", "cycle", "time_ns")

    def __init__(self, f_initial_hz: float, f_min_hz: float,
                 f_max_hz: float) -> None:
        if not (0 < f_min_hz <= f_max_hz):
            raise ValueError("need 0 < f_min <= f_max")
        self.f_min_hz = f_min_hz
        self.f_max_hz = f_max_hz
        self.freq_hz = self._clip(f_initial_hz)
        self.cycle = 0
        self.time_ns = 0.0

    def _clip(self, freq_hz: float) -> float:
        return min(self.f_max_hz, max(self.f_min_hz, freq_hz))

    @property
    def period_ns(self) -> float:
        """Duration of one network clock cycle at the current frequency."""
        return 1e9 / self.freq_hz

    def set_frequency(self, freq_hz: float) -> float:
        """Retune the clock, clipping into ``[f_min, f_max]``.

        Returns the actually-applied (clipped) frequency, mirroring the
        clipping regions of the paper's Fig. 1 / Fig. 3 transfer
        characteristics.
        """
        if freq_hz <= 0:
            raise ValueError(f"frequency must be positive, got {freq_hz}")
        self.freq_hz = self._clip(freq_hz)
        return self.freq_hz

    def tick(self) -> None:
        """Advance one network cycle of absolute time."""
        self.time_ns += self.period_ns
        self.cycle += 1


class MultiNodeClockBridge:
    """Per-node clock ticks for heterogeneous node frequencies.

    The paper's footnote 1 notes that "a more general treatment with
    different and variable node frequencies is possible"; this bridge
    provides it.  Each node ``n`` ticks at its own ``freqs_hz[n]``;
    after every network cycle the kernel asks how many node cycles
    completed per node and draws that node's arrivals accordingly, so
    faster nodes offer proportionally more traffic per second at the
    same per-node-cycle rate.
    """

    __slots__ = ("freqs_hz", "periods_ns", "next_cycles")

    def __init__(self, freqs_hz) -> None:
        freqs = np.asarray(freqs_hz, dtype=float)
        if freqs.ndim != 1 or len(freqs) == 0:
            raise ValueError("need a 1-D array of node frequencies")
        if (freqs <= 0).any():
            raise ValueError("node frequencies must be positive")
        self.freqs_hz = freqs
        self.periods_ns = 1e9 / freqs
        self.next_cycles = np.zeros(len(freqs), dtype=np.int64)

    def node_time_ns(self, node: int, node_cycle: int) -> float:
        """Absolute time of node ``node``'s clock edge ``node_cycle``."""
        return node_cycle * self.periods_ns[node]

    def elapsed_counts(self, time_ns: float):
        """Per-node count of newly completed node cycles.

        Returns ``(start_cycles, counts)`` — for node ``n`` the newly
        delivered cycles are ``start_cycles[n] ..
        start_cycles[n] + counts[n] - 1``.  Cursors advance so every
        cycle is delivered exactly once.
        """
        completed = (time_ns / self.periods_ns + 1e-9).astype(np.int64)
        start = self.next_cycles.copy()
        counts = np.maximum(0, completed + 1 - start)
        self.next_cycles = np.maximum(self.next_cycles, completed + 1)
        return start, counts


class NodeClockBridge:
    """Delivers node-clock ticks to node-domain processes.

    Node cycle ``k`` occurs at absolute time ``k / Fnode``.  After each
    network-clock tick the kernel asks the bridge which node cycles
    have newly completed; the traffic generators then draw one
    Bernoulli arrival trial per node cycle, so the offered load is
    defined in the node clock domain regardless of how slowly the
    network runs — precisely the paper's injection model.
    """

    __slots__ = ("f_node_hz", "period_ns", "next_node_cycle")

    def __init__(self, f_node_hz: float) -> None:
        if f_node_hz <= 0:
            raise ValueError("node frequency must be positive")
        self.f_node_hz = f_node_hz
        self.period_ns = 1e9 / f_node_hz
        self.next_node_cycle = 0

    def node_time_ns(self, node_cycle: int) -> float:
        """Absolute time of node clock edge ``node_cycle``."""
        return node_cycle * self.period_ns

    def elapsed_node_cycles(self, time_ns: float) -> range:
        """Node cycles whose clock edge occurred at or before ``time_ns``.

        Returns the (possibly empty) range of newly completed node
        cycle indices and advances the internal cursor, so every node
        cycle is delivered exactly once.
        """
        # Add a tiny epsilon so that exact-ratio frequencies (e.g.
        # Fnode == Fnoc) are not lost to float rounding.
        completed = int(time_ns / self.period_ns + 1e-9)
        start = self.next_node_cycle
        if completed < start:
            return range(start, start)
        self.next_node_cycle = completed + 1
        return range(start, completed + 1)
