"""The simulation kernel: clocks, phases, measurement and DVFS hooks.

``Simulation`` reproduces the measurement methodology of the paper's
modified Booksim:

* the kernel advances in **network clock cycles**; absolute time grows
  by the current network period each cycle, so a frequency change by
  the DVFS controller immediately stretches or shrinks subsequent
  cycles;
* traffic generation runs in the **node clock domain** (see
  ``repro.noc.clock``), so offered load is independent of the network's
  DVFS state — this is what pushes the NoC toward saturation when it is
  slowed down (eq. (1));
* runs have a *warmup* phase, a *measurement* phase whose packets are
  tagged and reported, and a *drain* phase that waits for tagged
  packets to arrive (with a cap so saturated runs still terminate);
* every control period the attached controller receives a
  ``MeasurementSample`` (measured injection rate for RMSD, mean packet
  delay for DMSD) and returns the frequency to apply next — the
  controller node of paper Figs. 1 and 3;
* activity is recorded per interval of constant frequency
  (``PowerWindow``) during the measurement phase, so the power model
  can integrate voltage-dependent energy exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from ..traffic.injection import InjectionProcess, TrafficSpec
from .clock import MultiNodeClockBridge, NetworkClock, NodeClockBridge
from .config import NocConfig
from .engines import DEFAULT_ENGINE, make_engine
from .flit import Packet
from .stats import ActivityCounters, MeasurementSample, PowerWindow


@runtime_checkable
class Controller(Protocol):
    """What the kernel requires of a DVFS controller."""

    def reset(self, config: NocConfig) -> float:
        """Prepare for a new run; return the initial frequency in Hz."""

    def update(self, sample: MeasurementSample) -> float:
        """Consume one measurement window; return the next frequency."""


class _FixedController:
    """Trivial controller holding one frequency (No-DVFS, sweeps)."""

    def __init__(self, freq_hz: float | None = None) -> None:
        self._freq_hz = freq_hz

    def reset(self, config: NocConfig) -> float:
        if self._freq_hz is None:
            self._freq_hz = config.f_max_hz
        return self._freq_hz

    def update(self, sample: MeasurementSample) -> float:
        return self._freq_hz


@dataclass
class SimResult:
    """Everything measured in one simulation run."""

    config: NocConfig
    seed: int
    offered_node_rate: float
    warmup_cycles: int
    measure_cycles: int
    # packet statistics (None when no measured packet was delivered)
    mean_latency_cycles: float | None
    mean_delay_ns: float | None
    p99_delay_ns: float | None
    mean_hops: float | None
    measured_created: int
    measured_delivered: int
    complete: bool
    # throughput over the measurement phase
    accepted_node_rate: float
    measure_duration_ns: float
    measure_node_cycles: int
    backlog_delta_flits: int
    # DVFS trace
    freq_trace: list[tuple[float, float]] = field(default_factory=list)
    samples: list[MeasurementSample] = field(default_factory=list)
    power_windows: list[PowerWindow] = field(default_factory=list)

    @property
    def mean_freq_hz(self) -> float:
        """Time-weighted mean network frequency over the measurement."""
        total_t = sum(w.duration_ns for w in self.power_windows)
        if total_t <= 0:
            return self.freq_trace[-1][1] if self.freq_trace else 0.0
        return sum(w.freq_hz * w.duration_ns
                   for w in self.power_windows) / total_t

    @property
    def saturated(self) -> bool:
        """Heuristic saturation flag: tagged packets never drained, or
        the source backlog grew by more than the traffic generated in a
        few hundred node cycles."""
        if not self.complete:
            return True
        threshold = max(
            4 * self.config.num_nodes * self.config.packet_length,
            int(0.05 * self.offered_node_rate * self.config.num_nodes
                * self.measure_node_cycles))
        return self.backlog_delta_flits > threshold

    @property
    def delivery_ratio(self) -> float:
        if self.measured_created == 0:
            return 1.0
        return self.measured_delivered / self.measured_created


class Simulation:
    """One simulation run of a traffic spec under a DVFS controller."""

    def __init__(self, config: NocConfig, traffic: TrafficSpec,
                 controller: "Controller | float | str | None" = None,
                 seed: int = 1,
                 control_period_node_cycles: int = 10_000,
                 engine: str = DEFAULT_ENGINE) -> None:
        if control_period_node_cycles < 1:
            raise ValueError("control period must be >= 1 node cycle")
        self.config = config
        self.traffic = traffic
        self.seed = seed
        self.control_period_node_cycles = control_period_node_cycles
        self.engine = engine

        self.controller = self._coerce_controller(controller)

        self.network = make_engine(engine, config)
        self.rng = np.random.default_rng(seed)
        self.injection = InjectionProcess(traffic, config.packet_length,
                                          self.rng)
        f0 = self.controller.reset(config)
        self.clock = NetworkClock(f0, config.f_min_hz, config.f_max_hz)
        # The reference bridge drives rate measurement and control
        # periods even with heterogeneous node clocks (footnote 1):
        # `f_node_hz` stays the reference frequency of eq. (2).
        self.bridge = NodeClockBridge(config.f_node_hz)
        self.node_bridge = (MultiNodeClockBridge(config.node_freqs_hz)
                            if config.node_freqs_hz is not None else None)

    @staticmethod
    def _coerce_controller(controller) -> Controller:
        """Accept a Controller, a pinned frequency, or a registry ref.

        Policy-registry spellings — a name string like
        ``"dmsd:target_delay_ns=150"`` or a
        :class:`~repro.core.registry.Ref` — always construct a *fresh*
        controller instance, so two simulations built from the same
        spec never share PI state.
        """
        if controller is None or isinstance(controller, (int, float)):
            return _FixedController(
                None if controller is None else float(controller))
        if isinstance(controller, Controller):
            return controller
        # Late import: the registry lives in repro.core, which imports
        # this package's config/stats modules.
        from ..core.registry import Ref, make_policy
        if isinstance(controller, (str, Ref)):
            return make_policy(controller)
        raise TypeError(
            f"controller must be a Controller, a frequency in Hz, a "
            f"policy-registry name/Ref or None; got {controller!r}")

    # ------------------------------------------------------------------
    def run(self, warmup_cycles: int = 2000, measure_cycles: int = 5000,
            drain_cycles: int | None = None) -> SimResult:
        """Execute warmup, measurement and drain; return the result."""
        if drain_cycles is None:
            drain_cycles = max(10_000, 4 * measure_cycles)
        # Delegate range validation to SimBudget (the one place the
        # warmup/measure/drain contract is defined).
        from .budget import SimBudget
        SimBudget(warmup_cycles, measure_cycles, drain_cycles)

        net = self.network
        stats = net.stats
        clock = self.clock
        bridge = self.bridge
        config = self.config
        num_nodes = config.num_nodes

        measure_start = warmup_cycles
        measure_end = warmup_cycles + measure_cycles
        hard_end = measure_end + drain_cycles

        control_period_ns = (self.control_period_node_cycles
                             * 1e9 / config.f_node_hz)
        next_control_ns = control_period_ns
        last_control_node_cycle = 0
        last_control_cycle = 0
        last_control_ns = 0.0

        freq_trace = [(0.0, clock.freq_hz)]
        samples: list[MeasurementSample] = []
        power_windows: list[PowerWindow] = []

        # measurement-phase bookkeeping, set at the phase boundary
        in_measurement = False
        tagging = False
        meas_start_ns = meas_end_ns = 0.0
        meas_start_node_cycle = meas_end_node_cycle = 0
        ejected_at_start = ejected_at_end = 0
        backlog_at_start = backlog_at_end = 0
        win_activity: ActivityCounters | None = None
        win_start_ns = 0.0
        win_start_cycle = 0

        def close_power_window(now_ns: float, now_cycle: int) -> None:
            nonlocal win_activity, win_start_ns, win_start_cycle
            delta = net.aggregate_activity() - win_activity
            power_windows.append(PowerWindow(
                duration_ns=now_ns - win_start_ns,
                cycles=now_cycle - win_start_cycle,
                freq_hz=clock.freq_hz,
                activity=delta))
            win_activity = net.aggregate_activity()
            win_start_ns = now_ns
            win_start_cycle = now_cycle

        def close_measurement(now_ns: float, now_cycle: int) -> None:
            """End the measurement phase (idempotent)."""
            nonlocal in_measurement, tagging
            nonlocal meas_end_ns, meas_end_node_cycle
            nonlocal ejected_at_end, backlog_at_end
            tagging = False
            if not in_measurement:
                return
            close_power_window(now_ns, now_cycle)
            in_measurement = False
            meas_end_ns = now_ns
            meas_end_node_cycle = bridge.next_node_cycle
            ejected_at_end = stats.ejected_flits
            backlog_at_end = net.source_backlog_flits()

        while True:
            cycle = clock.cycle
            now_ns = clock.time_ns

            if cycle == measure_start:
                in_measurement = True
                tagging = True
                meas_start_ns = now_ns
                meas_start_node_cycle = bridge.next_node_cycle
                ejected_at_start = stats.ejected_flits
                backlog_at_start = net.source_backlog_flits()
                win_activity = net.aggregate_activity()
                win_start_ns = now_ns
                win_start_cycle = cycle
            if cycle == measure_end:
                close_measurement(now_ns, cycle)

            # --- node-domain traffic generation
            node_cycles = bridge.elapsed_node_cycles(now_ns)
            if self.node_bridge is not None:
                # Heterogeneous node clocks (paper footnote 1): each
                # node draws against its own completed cycles; the
                # reference bridge above still paces measurement.
                starts, counts = self.node_bridge.elapsed_counts(now_ns)
                for src, offset, dst in \
                        self.injection.arrivals_per_node(counts):
                    created_ns = self.node_bridge.node_time_ns(
                        src, int(starts[src]) + offset)
                    packet = Packet(src, dst, config.packet_length,
                                    created_cycle=cycle,
                                    created_ns=created_ns,
                                    measured=tagging)
                    net.enqueue_packet(packet)
            elif len(node_cycles):
                arrivals = self.injection.arrivals(len(node_cycles))
                for offset, src, dst in arrivals:
                    created_ns = bridge.node_time_ns(node_cycles.start
                                                     + offset)
                    packet = Packet(src, dst, config.packet_length,
                                    created_cycle=cycle,
                                    created_ns=created_ns,
                                    measured=tagging)
                    net.enqueue_packet(packet)

            # --- DVFS control action
            if now_ns >= next_control_ns:
                sample = stats.take_sample(
                    window_cycles=cycle - last_control_cycle,
                    window_node_cycles=(bridge.next_node_cycle
                                        - last_control_node_cycle),
                    window_ns=now_ns - last_control_ns,
                    freq_hz=clock.freq_hz,
                    time_ns=now_ns,
                    num_nodes=num_nodes)
                samples.append(sample)
                last_control_cycle = cycle
                last_control_node_cycle = bridge.next_node_cycle
                last_control_ns = now_ns
                next_control_ns += control_period_ns
                new_freq = self.controller.update(sample)
                if new_freq != clock.freq_hz:
                    if in_measurement:
                        close_power_window(now_ns, cycle)
                    applied = clock.set_frequency(new_freq)
                    freq_trace.append((now_ns, applied))

            # --- advance the network by one cycle
            net.step_cycle(cycle, now_ns)
            clock.tick()

            # --- termination
            if clock.cycle >= measure_end:
                close_measurement(clock.time_ns, clock.cycle)
                if stats.measured_delivered >= stats.measured_created:
                    complete = True
                    break
                if clock.cycle >= hard_end:
                    complete = False
                    break

        offered = self.traffic.mean_node_rate()
        duration_ns = meas_end_ns - meas_start_ns
        node_cycles_meas = max(1, meas_end_node_cycle
                               - meas_start_node_cycle)
        accepted = ((ejected_at_end - ejected_at_start)
                    / (node_cycles_meas * num_nodes))

        delays = stats.measured_delays_ns
        return SimResult(
            config=config,
            seed=self.seed,
            offered_node_rate=offered,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
            mean_latency_cycles=(stats.mean_latency_cycles()
                                 if delays else None),
            mean_delay_ns=stats.mean_delay_ns() if delays else None,
            p99_delay_ns=(float(np.percentile(delays, 99))
                          if delays else None),
            mean_hops=stats.mean_hops() if delays else None,
            measured_created=stats.measured_created,
            measured_delivered=stats.measured_delivered,
            complete=complete,
            accepted_node_rate=accepted,
            measure_duration_ns=duration_ns,
            measure_node_cycles=node_cycles_meas,
            backlog_delta_flits=backlog_at_end - backlog_at_start,
            freq_trace=freq_trace,
            samples=samples,
            power_windows=power_windows,
        )
