"""Arbitration primitives for VC and switch allocation.

The router uses *separable input-first* allocation built from
round-robin arbiters, the same structure as Booksim's default
``SeparableInputFirstAllocator``: each input port first picks one
requesting VC, then each output port picks one requesting input.
Round-robin pointers advance past the winner, which provides the
strong fairness the paper's average-latency measurements rely on.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class RoundRobinArbiter:
    """Classic rotating-priority arbiter over ``size`` request lines."""

    __slots__ = ("size", "_ptr")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("arbiter needs at least one input")
        self.size = size
        self._ptr = 0

    def grant(self, requests: Sequence[int] | Iterable[int]) -> int | None:
        """Pick one of the requesting line indices, or ``None``.

        ``requests`` is a collection of requesting line indices in
        ``[0, size)``.  The arbiter grants the first requester at or
        after the rotating pointer and advances the pointer one past
        the winner (so a continuously-requesting line cannot starve
        the others).
        """
        req = set(requests)
        if not req:
            return None
        for offset in range(self.size):
            line = (self._ptr + offset) % self.size
            if line in req:
                self._ptr = (line + 1) % self.size
                return line
        return None

    def reset(self) -> None:
        self._ptr = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RoundRobinArbiter(size={self.size}, ptr={self._ptr})"


class MatrixArbiterPool:
    """A pool of independent round-robin arbiters, one per resource.

    Convenience wrapper used for the per-output-port stage of the
    separable allocator: output ``i`` arbitrates among its requesting
    inputs with its own private pointer.
    """

    __slots__ = ("arbiters",)

    def __init__(self, num_resources: int, num_requesters: int) -> None:
        self.arbiters = [RoundRobinArbiter(num_requesters)
                         for _ in range(num_resources)]

    def grant(self, resource: int, requests: Iterable[int]) -> int | None:
        return self.arbiters[resource].grant(requests)

    def reset(self) -> None:
        for arb in self.arbiters:
            arb.reset()
