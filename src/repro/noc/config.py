"""Simulation configuration.

``NocConfig`` gathers every microarchitectural and clocking knob the
paper varies: mesh size, virtual channels, buffers per VC, packet size
(Sec. V sensitivity analysis, Fig. 8) and the clock-domain parameters
``Fnode``/``Fmin``/``Fmax`` (Sec. III).  The defaults reproduce the
paper's baseline scenario: a 5x5 mesh with dimension-ordered routing,
8 VCs, 4 flit buffers per VC, 20 flits per packet, ``Fnode = Fmax =
1 GHz`` and ``Fmin = 333 MHz`` (Figs. 2, 4, 6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .routing import get_routing_function
from .topology import Mesh

GHZ = 1e9
MHZ = 1e6


@dataclass(frozen=True)
class NocConfig:
    """Full description of one simulated NoC instance."""

    # --- topology -----------------------------------------------------
    width: int = 5
    height: int = 5
    routing: str = "dor_xy"

    # --- router microarchitecture (paper Fig. 8 sensitivity knobs) ----
    num_vcs: int = 8
    vc_buf_depth: int = 4
    packet_length: int = 20

    # --- pipeline timing (network clock cycles) -----------------------
    #: cycles for route computation once a head flit reaches a VC front
    route_latency: int = 1
    #: cycles from VC allocation grant to switch-allocation eligibility
    va_latency: int = 1
    #: link traversal latency between adjacent routers
    link_latency: int = 1
    #: credit return latency from downstream back to upstream
    credit_latency: int = 1

    # --- clock domains (paper Sec. III) --------------------------------
    #: node (injection) clock frequency, fixed; the paper sets it to Fmax
    f_node_hz: float = 1.0 * GHZ
    #: lower bound of the NoC DVFS frequency range
    f_min_hz: float = GHZ / 3.0
    #: upper bound of the NoC DVFS frequency range
    f_max_hz: float = 1.0 * GHZ
    #: per-node injection clock frequencies (paper footnote 1: "a more
    #: general treatment with different ... node frequencies").  When
    #: given, overrides ``f_node_hz`` per node; ``f_node_hz`` remains
    #: the reference clock for rate measurement and control periods.
    node_freqs_hz: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError("mesh must be at least 2x2")
        if self.num_vcs < 1:
            raise ValueError("need at least one virtual channel")
        if self.vc_buf_depth < 1:
            raise ValueError("need at least one flit buffer per VC")
        if self.packet_length < 1:
            raise ValueError("packets must have at least one flit")
        if min(self.route_latency, self.va_latency) < 0:
            raise ValueError("pipeline latencies must be non-negative")
        if self.link_latency < 1 or self.credit_latency < 1:
            raise ValueError("link and credit latencies must be >= 1")
        if not (0 < self.f_min_hz <= self.f_max_hz):
            raise ValueError("need 0 < f_min <= f_max")
        if self.f_node_hz <= 0:
            raise ValueError("node frequency must be positive")
        if self.node_freqs_hz is not None:
            if len(self.node_freqs_hz) != self.width * self.height:
                raise ValueError(
                    f"node_freqs_hz must list all "
                    f"{self.width * self.height} nodes")
            if any(f <= 0 for f in self.node_freqs_hz):
                raise ValueError("node frequencies must be positive")
        # Fail early on a bad routing name rather than at simulation time.
        get_routing_function(self.routing)

    # --- derived helpers ------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of nodes (= routers) in the mesh."""
        return self.width * self.height

    def make_mesh(self) -> Mesh:
        """Instantiate the mesh topology object."""
        return Mesh(self.width, self.height)

    @property
    def slowdown_ratio(self) -> float:
        """Maximum slow-down factor ``Fmax / Fmin`` (paper: 3x)."""
        return self.f_max_hz / self.f_min_hz

    def zero_load_latency_cycles(self) -> float:
        """Analytical zero-load packet latency estimate, in cycles.

        Head latency is ``hops * (per-hop pipeline + link)`` plus the
        serialization of the remaining ``packet_length - 1`` flits.
        Used for sanity checks, not by the simulator itself.
        """
        mesh = self.make_mesh()
        # +1 hop: the destination router itself is traversed too.
        hops = mesh.average_uniform_distance() + 1
        per_hop = (self.route_latency + self.va_latency + 1  # SA/ST
                   + self.link_latency)
        return hops * per_hop + (self.packet_length - 1)

    def with_(self, **changes) -> "NocConfig":
        """Return a copy with the given fields replaced.

        Convenience for the Fig. 8 sensitivity sweeps, e.g.
        ``cfg.with_(num_vcs=2)``.
        """
        return replace(self, **changes)

    # --- wire format (sweep-service submissions) ------------------------
    def to_dict(self) -> dict:
        """JSON-ready field mapping; inverse of :meth:`from_dict`.

        Used wherever a configuration crosses a trust or process
        boundary as plain data instead of a pickle — notably the
        sweep service's submission files.
        """
        out = {}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            out[name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "NocConfig":
        """Rebuild a configuration from :meth:`to_dict` output.

        Unknown keys fail loudly — a submission written by a newer
        build must not silently lose a field on an older daemon.
        """
        unknown = sorted(set(data) - set(cls.__dataclass_fields__))
        if unknown:
            raise ValueError(f"unknown NocConfig field(s): "
                             f"{', '.join(unknown)}")
        kwargs = dict(data)
        if kwargs.get("node_freqs_hz") is not None:
            kwargs["node_freqs_hz"] = tuple(kwargs["node_freqs_hz"])
        return cls(**kwargs)


#: The paper's baseline configuration (Figs. 2, 4, 6 and Sec. V).
PAPER_BASELINE = NocConfig()

#: Smaller configuration for quick tests and the quickstart example.
SMALL_TEST = NocConfig(width=4, height=4, num_vcs=2, vc_buf_depth=4,
                       packet_length=4)
