"""Injection sources: the node-side queue feeding each router.

Each node owns an unbounded source queue of generated packets (the
paper's injection model: offered load is defined at the node clock, so
packets accumulate here whenever the network cannot absorb them — this
queueing time is *included* in packet latency, which is what makes the
RMSD latency plateau of Fig. 2(a) visible).

The source injects serially: one packet at a time, one flit per
network cycle, into a round-robin-chosen VC of the router's local
input port, subject to credit availability.
"""

from __future__ import annotations

from collections import deque

from .flit import Flit, Packet, flits_of
from .router import Router
from .topology import LOCAL


class Source:
    """Per-node packet queue plus flit-level injection state machine."""

    __slots__ = ("node", "router", "num_vcs", "queue", "credits",
                 "_flits", "_next_flit", "_vc", "_rr")

    def __init__(self, node: int, router: Router, num_vcs: int,
                 vc_buf_depth: int) -> None:
        self.node = node
        self.router = router
        self.num_vcs = num_vcs
        self.queue: deque[Packet] = deque()
        #: source-side mirror of free slots in the local input VCs
        self.credits = [vc_buf_depth] * num_vcs
        self._flits: list[Flit] | None = None
        self._next_flit = 0
        self._vc = 0
        self._rr = 0

    def enqueue(self, packet: Packet) -> None:
        self.queue.append(packet)

    def return_credit(self, vc_index: int) -> None:
        self.credits[vc_index] += 1

    @property
    def has_work(self) -> bool:
        return self._flits is not None or bool(self.queue)

    def queued_packets(self) -> int:
        return len(self.queue) + (1 if self._flits is not None else 0)

    def backlog_flits(self) -> int:
        """Flits generated but not yet pushed into the router."""
        total = sum(p.length for p in self.queue)
        if self._flits is not None:
            total += len(self._flits) - self._next_flit
        return total

    def step(self, cycle: int) -> bool:
        """Try to inject one flit this network cycle.

        Returns True while the source still has work queued.
        """
        if self._flits is None:
            if not self.queue:
                return False
            packet = self.queue.popleft()
            self._flits = flits_of(packet)
            self._next_flit = 0
            # Rotate the starting VC so consecutive packets spread over
            # the local port's VCs (fairer VC allocation downstream).
            self._vc = self._rr
            self._rr = (self._rr + 1) % self.num_vcs

        if self.credits[self._vc] > 0:
            flit = self._flits[self._next_flit]
            self.credits[self._vc] -= 1
            if flit.is_head:
                flit.packet.injected_cycle = cycle
            self.router.receive_flit(LOCAL, self._vc, flit)
            self.router.net.stats.on_flit_injected()
            self._next_flit += 1
            if self._next_flit >= len(self._flits):
                self._flits = None
        return self.has_work
