"""Cycle budgets and single fixed-frequency simulation runs.

A ``SimBudget`` is the warmup/measure/drain cycle allocation of one
simulator invocation; ``run_fixed_point`` executes one simulation at a
pinned network frequency under such a budget.  Both used to live in
``repro.analysis.sweep`` but are simulator-level concepts: the parallel
runner (``repro.runner``) schedules fixed-point runs without depending
on the analysis layer, so they sit next to the kernel instead.
``repro.analysis.sweep`` re-exports them for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..traffic.injection import TrafficSpec
from .config import NocConfig
from .engines import DEFAULT_ENGINE
from .simulator import SimResult, Simulation


@dataclass(frozen=True)
class SimBudget:
    """Cycle budget for one simulation run.

    Validated on construction — every execution path (single runs,
    batched runs, work units) relies on this instead of re-checking:
    ``warmup >= 0``, ``measure >= 1`` and ``drain >= 0``.
    """

    warmup_cycles: int = 2000
    measure_cycles: int = 4000
    drain_cycles: int = 10000

    def __post_init__(self) -> None:
        if (self.warmup_cycles < 0 or self.measure_cycles < 1
                or self.drain_cycles < 0):
            raise ValueError(
                f"invalid SimBudget({self.warmup_cycles}, "
                f"{self.measure_cycles}, {self.drain_cycles}): need "
                f"warmup >= 0, measure >= 1 and drain >= 0 cycles")

    def scaled(self, factor: float) -> "SimBudget":
        return SimBudget(max(200, int(self.warmup_cycles * factor)),
                         max(400, int(self.measure_cycles * factor)),
                         max(800, int(self.drain_cycles * factor)))


#: Budgets: FAST for benchmarks/sweeps, DEFAULT for normal studies,
#: THOROUGH for final numbers.
FAST = SimBudget(1200, 2500, 6000)
DEFAULT = SimBudget(2000, 4000, 10000)
THOROUGH = SimBudget(4000, 10000, 30000)


def run_fixed_point(config: NocConfig, traffic: TrafficSpec | float,
                    freq_hz: float, budget: SimBudget,
                    seed: int = 1,
                    engine: str = DEFAULT_ENGINE) -> SimResult:
    """One simulation at a pinned network frequency.

    Also accepts the scenario spelling ``run_fixed_point(spec, rate,
    ...)``: a :class:`repro.scenario.ScenarioSpec` in the ``config``
    slot with the injection rate in the ``traffic`` slot (detected
    structurally to keep this simulator-level module free of
    scenario-layer imports).
    """
    if isinstance(traffic, (int, float)):
        if not hasattr(config, "traffic_factory"):
            raise TypeError(
                f"run_fixed_point got a numeric traffic argument "
                f"({traffic!r}); that spelling needs a ScenarioSpec "
                f"first — run_fixed_point(spec, rate, ...) — not "
                f"{type(config).__name__}")
        spec = config
        config, traffic = spec.config, spec.traffic_factory()(
            float(traffic))
    sim = Simulation(config, traffic, controller=freq_hz, seed=seed,
                     engine=engine)
    return sim.run(budget.warmup_cycles, budget.measure_cycles,
                   budget.drain_cycles)
