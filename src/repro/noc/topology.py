"""2-D mesh topology: node numbering, port directions and adjacency.

The paper evaluates k x k meshes (4x4, 5x5 and 8x8).  Nodes are numbered
row-major: node ``(x, y)`` has id ``x + y * width`` with ``x`` growing
eastward and ``y`` growing southward.  Every router has five ports: the
local (injection/ejection) port plus one per compass direction.
"""

from __future__ import annotations

from dataclasses import dataclass

# Port indices.  LOCAL is 0 so that "network" ports are 1..4.
LOCAL, EAST, WEST, NORTH, SOUTH = range(5)
NUM_PORTS = 5

PORT_NAMES = ("local", "east", "west", "north", "south")

#: Port on the neighbouring router that a flit leaving through the keyed
#: port arrives on (east-going flits arrive on the neighbour's west port).
OPPOSITE = {EAST: WEST, WEST: EAST, NORTH: SOUTH, SOUTH: NORTH}


@dataclass(frozen=True)
class Coord:
    """Cartesian position of a node in the mesh."""

    x: int
    y: int


class Mesh:
    """A ``width`` x ``height`` 2-D mesh without wraparound links.

    Provides the node-id/coordinate mapping, neighbour lookup used to
    wire routers together, and the hop-distance metric used by tests and
    by the zero-load latency model.
    """

    def __init__(self, width: int, height: int) -> None:
        if width < 2 or height < 2:
            raise ValueError(
                f"mesh must be at least 2x2, got {width}x{height}")
        self.width = width
        self.height = height
        self.num_nodes = width * height

    def coord(self, node: int) -> Coord:
        """Coordinates of ``node``."""
        self._check_node(node)
        return Coord(node % self.width, node // self.width)

    def node_at(self, x: int, y: int) -> int:
        """Node id at coordinates ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x}, {y}) outside {self.width}x{self.height}")
        return x + y * self.width

    def neighbor(self, node: int, port: int) -> int | None:
        """Node reached by leaving ``node`` through ``port``.

        Returns ``None`` for the local port and for mesh-edge ports that
        have no link (no wraparound).
        """
        c = self.coord(node)
        if port == EAST:
            return self.node_at(c.x + 1, c.y) if c.x + 1 < self.width else None
        if port == WEST:
            return self.node_at(c.x - 1, c.y) if c.x - 1 >= 0 else None
        if port == SOUTH:
            return self.node_at(c.x, c.y + 1) if c.y + 1 < self.height else None
        if port == NORTH:
            return self.node_at(c.x, c.y - 1) if c.y - 1 >= 0 else None
        if port == LOCAL:
            return None
        raise ValueError(f"invalid port {port}")

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan (minimal) hop count between two nodes."""
        a, b = self.coord(src), self.coord(dst)
        return abs(a.x - b.x) + abs(a.y - b.y)

    def links(self) -> list[tuple[int, int, int]]:
        """All directed inter-router links as ``(src, port, dst)``."""
        out = []
        for node in range(self.num_nodes):
            for port in (EAST, WEST, NORTH, SOUTH):
                nbr = self.neighbor(node, port)
                if nbr is not None:
                    out.append((node, port, nbr))
        return out

    def average_uniform_distance(self) -> float:
        """Mean hop distance over all ordered src != dst pairs.

        Used by the analytical zero-load latency estimate and by tests
        that sanity-check measured latency against first principles.
        """
        total = 0
        for s in range(self.num_nodes):
            for d in range(self.num_nodes):
                if s != d:
                    total += self.hop_distance(s, d)
        return total / (self.num_nodes * (self.num_nodes - 1))

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ValueError(
                f"node {node} outside mesh of {self.num_nodes} nodes")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Mesh({self.width}x{self.height})"
