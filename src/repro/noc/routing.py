"""Routing functions for the mesh.

The paper uses dimension-ordered routing (DOR).  We implement XY (the
conventional choice and deadlock-free on a mesh) and YX as a variant,
behind a small registry so experiments can select the algorithm by
name.  A routing function maps ``(mesh, current_node, dest_node)`` to
the output port of the current router.
"""

from __future__ import annotations

from typing import Callable

from .topology import EAST, LOCAL, Mesh, NORTH, SOUTH, WEST

RoutingFunction = Callable[[Mesh, int, int], int]


def xy_route(mesh: Mesh, current: int, dest: int) -> int:
    """Dimension-ordered XY routing: correct X first, then Y."""
    c, d = mesh.coord(current), mesh.coord(dest)
    if c.x < d.x:
        return EAST
    if c.x > d.x:
        return WEST
    if c.y < d.y:
        return SOUTH
    if c.y > d.y:
        return NORTH
    return LOCAL


def yx_route(mesh: Mesh, current: int, dest: int) -> int:
    """Dimension-ordered YX routing: correct Y first, then X."""
    c, d = mesh.coord(current), mesh.coord(dest)
    if c.y < d.y:
        return SOUTH
    if c.y > d.y:
        return NORTH
    if c.x < d.x:
        return EAST
    if c.x > d.x:
        return WEST
    return LOCAL


ROUTING_FUNCTIONS: dict[str, RoutingFunction] = {
    "dor_xy": xy_route,
    "dor_yx": yx_route,
}


def get_routing_function(name: str) -> RoutingFunction:
    """Look up a routing function by registry name."""
    try:
        return ROUTING_FUNCTIONS[name]
    except KeyError:
        known = ", ".join(sorted(ROUTING_FUNCTIONS))
        raise ValueError(f"unknown routing function {name!r}; "
                         f"known: {known}") from None


def route_path(mesh: Mesh, routing: RoutingFunction,
               src: int, dst: int) -> list[int]:
    """Full node sequence a packet follows from ``src`` to ``dst``.

    Used by tests (path properties: minimality, deadlock-freedom of the
    turn set) and by the application mapper to compute link loads.
    """
    path = [src]
    current = src
    for _ in range(mesh.num_nodes + 1):
        port = routing(mesh, current, dst)
        if port == LOCAL:
            return path
        nxt = mesh.neighbor(current, port)
        if nxt is None:
            raise RuntimeError(
                f"routing walked off the mesh at node {current} port {port}")
        path.append(nxt)
        current = nxt
    raise RuntimeError(f"routing loop detected from {src} to {dst}")
