"""Statistics, activity counters and measurement windows.

Three distinct consumers read the simulator's counters, so they are
kept separate:

* **Latency/delay statistics** (``StatsCollector``) implement the
  paper's measurement methodology: packets created during the
  measurement phase are tagged and their creation-to-ejection latency
  (network cycles) and delay (ns) recorded when delivered.
* **Activity counters** (``ActivityCounters``) count buffer writes and
  reads, crossbar traversals, link flits and allocator grants — the
  quantities the paper exports from Booksim into the Synopsys power
  flow (Sec. IV-A).  The power model turns them into energy.
* **Measurement windows** (``MeasurementSample``) are what the DVFS
  controllers see: per control period, the measured node injection
  rate (RMSD, Fig. 1) and the mean end-to-end packet delay (DMSD,
  Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from .flit import Packet

ACTIVITY_FIELDS = (
    "buffer_writes",
    "buffer_reads",
    "xbar_traversals",
    "link_flits",
    "vc_allocs",
    "sa_grants",
    "credit_transfers",
)


class ActivityCounters:
    """Event counts that drive the activity-based power model."""

    __slots__ = ACTIVITY_FIELDS

    def __init__(self, **kwargs: int) -> None:
        for name in ACTIVITY_FIELDS:
            setattr(self, name, kwargs.pop(name, 0))
        if kwargs:
            raise TypeError(f"unknown activity fields: {sorted(kwargs)}")

    def copy(self) -> "ActivityCounters":
        return ActivityCounters(
            **{name: getattr(self, name) for name in ACTIVITY_FIELDS})

    def __sub__(self, other: "ActivityCounters") -> "ActivityCounters":
        return ActivityCounters(
            **{name: getattr(self, name) - getattr(other, name)
               for name in ACTIVITY_FIELDS})

    def __add__(self, other: "ActivityCounters") -> "ActivityCounters":
        return ActivityCounters(
            **{name: getattr(self, name) + getattr(other, name)
               for name in ACTIVITY_FIELDS})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ActivityCounters):
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name)
                   for name in ACTIVITY_FIELDS)

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in ACTIVITY_FIELDS}

    def total_events(self) -> int:
        return sum(getattr(self, name) for name in ACTIVITY_FIELDS)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"ActivityCounters({inner})"


@dataclass(frozen=True)
class MeasurementSample:
    """One control-period window as seen by a DVFS controller.

    ``node_lambda`` is the measured node injection rate in flits per
    *node* clock cycle per node — the quantity ``lambda_node`` in the
    paper's eq. (2).  ``mean_delay_ns`` is the average end-to-end delay
    of packets *delivered* during the window (``None`` when no packet
    was delivered, e.g. at very low load) — the DMSD feedback signal.
    """

    window_cycles: int
    window_node_cycles: int
    window_ns: float
    generated_flits: int
    delivered_packets: int
    mean_delay_ns: float | None
    mean_latency_cycles: float | None
    freq_hz: float
    time_ns: float
    num_nodes: int

    @property
    def node_lambda(self) -> float:
        """Measured injection rate (flits / node-cycle / node)."""
        if self.window_node_cycles <= 0:
            return 0.0
        return self.generated_flits / (self.window_node_cycles
                                       * self.num_nodes)


@dataclass(frozen=True)
class PowerWindow:
    """Activity accumulated over an interval of constant frequency.

    The simulator closes a window whenever the DVFS controller changes
    frequency (and at end of run), so the power model can integrate
    ``V^2``-scaled energy correctly across operating points.
    """

    duration_ns: float
    cycles: int
    freq_hz: float
    activity: ActivityCounters


class StatsCollector:
    """Aggregates packet statistics and raw event counts for one run."""

    def __init__(self) -> None:
        self.activity = ActivityCounters()
        # lifetime counters
        self.generated_packets = 0
        self.generated_flits = 0
        self.injected_flits = 0
        self.ejected_flits = 0
        self.delivered_packets = 0
        # measured-phase packet records
        self.measured_latencies: list[int] = []
        self.measured_delays_ns: list[float] = []
        self.measured_hops: list[int] = []
        self.measured_created = 0
        # control-window accumulators (reset by take_sample)
        self._win_generated_flits = 0
        self._win_delay_sum_ns = 0.0
        self._win_latency_sum = 0.0
        self._win_delivered = 0

    # --- event hooks (called from the hot loop) -------------------------
    def on_packet_generated(self, packet: Packet) -> None:
        self.generated_packets += 1
        self.generated_flits += packet.length
        self._win_generated_flits += packet.length
        if packet.measured:
            self.measured_created += 1

    def on_flit_injected(self) -> None:
        self.injected_flits += 1

    def on_packet_delivered(self, packet: Packet) -> None:
        self.delivered_packets += 1
        self._win_delivered += 1
        delay_ns = packet.ejected_ns - packet.created_ns
        latency = packet.ejected_cycle - packet.created_cycle
        self._win_delay_sum_ns += delay_ns
        self._win_latency_sum += latency
        if packet.measured:
            self.measured_latencies.append(latency)
            self.measured_delays_ns.append(delay_ns)
            self.measured_hops.append(packet.hops)

    # --- control window --------------------------------------------------
    def take_sample(self, window_cycles: int, window_node_cycles: int,
                    window_ns: float, freq_hz: float, time_ns: float,
                    num_nodes: int) -> MeasurementSample:
        """Build the controller's view of the window and reset it."""
        delivered = self._win_delivered
        sample = MeasurementSample(
            window_cycles=window_cycles,
            window_node_cycles=window_node_cycles,
            window_ns=window_ns,
            generated_flits=self._win_generated_flits,
            delivered_packets=delivered,
            mean_delay_ns=(self._win_delay_sum_ns / delivered
                           if delivered else None),
            mean_latency_cycles=(self._win_latency_sum / delivered
                                 if delivered else None),
            freq_hz=freq_hz,
            time_ns=time_ns,
            num_nodes=num_nodes,
        )
        self._win_generated_flits = 0
        self._win_delay_sum_ns = 0.0
        self._win_latency_sum = 0.0
        self._win_delivered = 0
        return sample

    # --- end-of-run summaries ---------------------------------------------
    @property
    def measured_delivered(self) -> int:
        return len(self.measured_latencies)

    def mean_latency_cycles(self) -> float:
        """Mean measured packet latency in network clock cycles."""
        if not self.measured_latencies:
            raise RuntimeError("no measured packets were delivered")
        return sum(self.measured_latencies) / len(self.measured_latencies)

    def mean_delay_ns(self) -> float:
        """Mean measured packet delay in nanoseconds."""
        if not self.measured_delays_ns:
            raise RuntimeError("no measured packets were delivered")
        return sum(self.measured_delays_ns) / len(self.measured_delays_ns)

    def percentile_latency(self, q: float) -> float:
        """``q``-quantile (0..1) of measured latency in cycles."""
        if not self.measured_latencies:
            raise RuntimeError("no measured packets were delivered")
        data = sorted(self.measured_latencies)
        idx = min(len(data) - 1, int(q * len(data)))
        return float(data[idx])

    def mean_hops(self) -> float:
        if not self.measured_hops:
            raise RuntimeError("no measured packets were delivered")
        return sum(self.measured_hops) / len(self.measured_hops)
