"""Engine selection: interchangeable simulation backends.

The simulation kernel (:class:`repro.noc.Simulation`) owns time, clock
domains, measurement phases and the DVFS control loop; everything that
happens *inside* the mesh during one cycle is delegated to an engine.
Two engines ship:

``reference``
    The object-per-router cycle-level model (:class:`repro.noc.Network`)
    — readable, introspectable, the ground truth.
``fast``
    The array-based batched model
    (:class:`repro.noc.fastsim.FastNetwork`) — the same flit-level
    schedule computed with NumPy struct-of-arrays operations, several
    times faster on paper-scale meshes.

Their statistical equivalence is enforced differentially by
``tests/test_engine_equivalence.py``; the tolerance contract lives in
the README ("Simulation engines").
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .config import NocConfig
from .fastsim import FastNetwork
from .flit import Packet
from .network import Network
from .stats import ActivityCounters, StatsCollector

#: The default engine: the reference model, bit-compatible with the
#: pre-engine era (its work-unit digests are unchanged).
DEFAULT_ENGINE = "reference"


@runtime_checkable
class Engine(Protocol):
    """What the simulation kernel requires of a mesh engine."""

    stats: StatsCollector
    current_time_ns: float
    delivered: list

    def enqueue_packet(self, packet: Packet) -> None:
        """Accept a freshly generated packet into its source queue."""

    def step_cycle(self, cycle: int, time_ns: float) -> None:
        """Advance the whole mesh by one network clock cycle."""

    def aggregate_activity(self) -> ActivityCounters:
        """Cumulative event counters (power-window bookkeeping)."""

    def source_backlog_flits(self) -> int:
        """Flits generated but not yet injected (saturation signal)."""

    def in_flight_flits(self) -> int:
        """Flits buffered in routers or traversing links."""


ENGINES: dict[str, type] = {
    "reference": Network,
    "fast": FastNetwork,
}


def engine_names() -> tuple[str, ...]:
    """Registered engine names, default first."""
    return tuple(sorted(ENGINES, key=lambda n: n != DEFAULT_ENGINE))


def make_engine(name: str, config: NocConfig) -> Engine:
    """Instantiate the engine registered under ``name``."""
    try:
        cls = ENGINES[name]
    except KeyError:
        known = ", ".join(engine_names())
        raise ValueError(f"unknown engine {name!r}; known: {known}") \
            from None
    return cls(config)
