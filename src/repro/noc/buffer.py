"""Virtual-channel input buffers and their per-packet state machine.

Each router input port owns ``num_vcs`` virtual channels.  A VC is a
FIFO of flits plus the wormhole state of the packet currently at its
front.  The state machine follows the canonical VC router pipeline
(Dally & Towles; also Booksim's ``VC`` class):

``IDLE``
    No packet being routed.  When a head flit reaches the front the VC
    enters ``ROUTING``.
``ROUTING``
    Route computation in progress (takes ``route_latency`` cycles).
``VC_ALLOC``
    Output port known; waiting to win an output VC.
``ACTIVE``
    Output VC held; flits compete for the switch each cycle and the
    tail flit releases the VC back to ``IDLE``.
"""

from __future__ import annotations

from collections import deque

from .flit import Flit

# VC states (ints for speed in the hot loop).
IDLE, ROUTING, VC_ALLOC, ACTIVE = range(4)

STATE_NAMES = ("IDLE", "ROUTING", "VC_ALLOC", "ACTIVE")


class VirtualChannel:
    """One virtual channel: a credit-managed flit FIFO plus route state."""

    __slots__ = ("port", "index", "capacity", "fifo", "state",
                 "out_port", "out_vc", "ready_cycle")

    def __init__(self, port: int, index: int, capacity: int) -> None:
        self.port = port
        self.index = index
        self.capacity = capacity
        self.fifo: deque[Flit] = deque()
        self.state = IDLE
        self.out_port = -1
        self.out_vc = -1
        #: first cycle at which the current pipeline stage's result is usable
        self.ready_cycle = 0

    # --- occupancy ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.fifo)

    @property
    def is_full(self) -> bool:
        return len(self.fifo) >= self.capacity

    @property
    def front(self) -> Flit | None:
        return self.fifo[0] if self.fifo else None

    # --- flit movement ----------------------------------------------------
    def push(self, flit: Flit) -> None:
        """Buffer an arriving flit (a buffer write)."""
        if self.is_full:
            raise OverflowError(
                f"VC overflow at port {self.port} vc {self.index}: "
                "credit protocol violated")
        self.fifo.append(flit)

    def pop(self) -> Flit:
        """Remove and return the front flit (a buffer read)."""
        return self.fifo.popleft()

    # --- state transitions ------------------------------------------------
    def start_routing(self, out_port: int, ready_cycle: int) -> None:
        """Enter ROUTING with the (pre-computed) output port.

        The routing *decision* is computed immediately; ``ready_cycle``
        models the pipeline latency before the decision is usable.
        """
        self.state = ROUTING
        self.out_port = out_port
        self.ready_cycle = ready_cycle

    def enter_vc_alloc(self) -> None:
        self.state = VC_ALLOC

    def grant_output_vc(self, out_vc: int, ready_cycle: int) -> None:
        """VC allocation succeeded: record the output VC and go ACTIVE."""
        self.state = ACTIVE
        self.out_vc = out_vc
        self.ready_cycle = ready_cycle

    def release(self) -> None:
        """Tail flit departed: clear route state, back to IDLE."""
        self.state = IDLE
        self.out_port = -1
        self.out_vc = -1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"VC(port={self.port}, idx={self.index}, "
                f"state={STATE_NAMES[self.state]}, occ={len(self.fifo)})")
