"""Flits and packets — the units of transfer in the wormhole NoC.

A *packet* is the unit of end-to-end communication (what the traffic
generators emit and what latency/delay statistics are recorded on).  A
*flit* (flow-control digit) is the unit of buffer allocation and link
transfer.  Every packet is serialized into ``length`` flits: one head
flit (carries the route), zero or more body flits, and one tail flit
(releases the virtual channel).  A single-flit packet has a flit that is
both head and tail.
"""

from __future__ import annotations

import itertools


class Packet:
    """One end-to-end message, timestamped in both clock domains.

    Timestamps follow the paper's measurement methodology: *latency* is
    counted in **network clock cycles** from packet creation to tail
    ejection (this is what Booksim reports and what paper Fig. 2(a)
    plots), while *delay* is the same interval converted to
    **nanoseconds** using the absolute-time clock (paper Fig. 2(b)),
    which is what the DMSD controller regulates.
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "length",
        "created_cycle",
        "created_ns",
        "injected_cycle",
        "ejected_cycle",
        "ejected_ns",
        "measured",
        "hops",
    )

    _pid_counter = itertools.count()

    def __init__(self, src: int, dst: int, length: int,
                 created_cycle: int, created_ns: float,
                 measured: bool = False) -> None:
        if length < 1:
            raise ValueError(f"packet length must be >= 1, got {length}")
        if src == dst:
            raise ValueError("packet source and destination must differ")
        self.pid = next(Packet._pid_counter)
        self.src = src
        self.dst = dst
        self.length = length
        self.created_cycle = created_cycle
        self.created_ns = created_ns
        self.injected_cycle = -1
        self.ejected_cycle = -1
        self.ejected_ns = -1.0
        self.measured = measured
        self.hops = 0

    @property
    def is_delivered(self) -> bool:
        """True once the tail flit has been ejected at the destination."""
        return self.ejected_cycle >= 0

    @property
    def latency_cycles(self) -> int:
        """Creation-to-ejection latency in network clock cycles."""
        if not self.is_delivered:
            raise RuntimeError(f"packet {self.pid} not delivered yet")
        return self.ejected_cycle - self.created_cycle

    @property
    def delay_ns(self) -> float:
        """Creation-to-ejection delay in nanoseconds (absolute time)."""
        if not self.is_delivered:
            raise RuntimeError(f"packet {self.pid} not delivered yet")
        return self.ejected_ns - self.created_ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Packet(pid={self.pid}, {self.src}->{self.dst}, "
                f"len={self.length}, created@{self.created_cycle})")


class Flit:
    """One flow-control digit of a packet.

    Flits are deliberately tiny (``__slots__`` only) because the
    simulator creates and moves millions of them.  Route state lives in
    the virtual channel that holds the flit, not in the flit itself,
    mirroring a real wormhole router where only the head flit carries
    routing information and body/tail flits inherit the VC's route.
    """

    __slots__ = ("packet", "index", "is_head", "is_tail")

    def __init__(self, packet: Packet, index: int) -> None:
        self.packet = packet
        self.index = index
        self.is_head = index == 0
        self.is_tail = index == packet.length - 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = ("head+tail" if self.is_head and self.is_tail
                else "head" if self.is_head
                else "tail" if self.is_tail
                else "body")
        return f"Flit(pid={self.packet.pid}, idx={self.index}, {kind})"


def flits_of(packet: Packet) -> list[Flit]:
    """Serialize ``packet`` into its ordered list of flits."""
    return [Flit(packet, i) for i in range(packet.length)]
