"""The virtual-channel wormhole router.

Canonical input-buffered VC router with the four-stage pipeline used
by Booksim and by the paper's RTL router: route computation (RC),
virtual-channel allocation (VA), switch allocation (SA) and switch +
link traversal (ST/LT).  Body flits inherit the head's route and VC,
and flow one per cycle when allocation succeeds.  Flow control is
credit-based: a flit may only be sent downstream when the target VC
has a free buffer slot, and the credit returns when the flit leaves
that buffer.

Allocation is *separable input-first* with round-robin arbiters:
each input port nominates one of its requesting VCs, then each output
port picks one nominating input.  VC allocation assigns any free VC of
the routed output port, arbitrated round-robin among requesters.

Performance notes (this is the hot loop of the whole library): routers
keep an insertion-ordered ``busy`` dict of VCs that hold flits or are
mid-allocation, so per-cycle work is proportional to traffic, not to
buffer capacity.  Ordered structures (never plain sets) keep runs
bit-reproducible for a given seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .allocator import RoundRobinArbiter
from .buffer import ACTIVE, IDLE, ROUTING, VC_ALLOC, VirtualChannel
from .config import NocConfig
from .flit import Flit
from .routing import RoutingFunction
from .stats import ActivityCounters
from .topology import LOCAL, Mesh, NUM_PORTS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .network import Network

#: Credit count used for the ejection (local output) port, which drains
#: into an infinite sink and therefore never back-pressures.
_SINK_CREDITS = 1 << 30


class Router:
    """One mesh router: five ports, ``num_vcs`` VCs per input port."""

    __slots__ = (
        "node", "config", "mesh", "routing", "net",
        "in_vcs", "out_credits", "out_vc_owner",
        "out_links", "in_links", "activity",
        "busy", "_va_arbs", "_sa_in_arbs", "_sa_out_arbs",
    )

    def __init__(self, node: int, config: NocConfig, mesh: Mesh,
                 routing: RoutingFunction) -> None:
        self.node = node
        self.config = config
        self.mesh = mesh
        self.routing = routing
        self.net: "Network | None" = None

        nvc = config.num_vcs
        depth = config.vc_buf_depth
        self.in_vcs = [
            [VirtualChannel(port, v, depth) for v in range(nvc)]
            for port in range(NUM_PORTS)
        ]
        # Credits toward each downstream input VC.  Network ports start
        # at the downstream buffer depth; the local (ejection) port is
        # an infinite sink.
        self.out_credits = [
            [_SINK_CREDITS if port == LOCAL else depth
             for _ in range(nvc)]
            for port in range(NUM_PORTS)
        ]
        # Which input VC currently owns each output VC (wormhole lock).
        self.out_vc_owner: list[list[VirtualChannel | None]] = [
            [None] * nvc for _ in range(NUM_PORTS)
        ]
        # Wiring, filled in by the Network: per output port the
        # (neighbor_router, neighbor_input_port) pair, and per input
        # port the (upstream_router, upstream_output_port) pair.
        self.out_links: list[tuple["Router", int] | None] = [None] * NUM_PORTS
        self.in_links: list[tuple["Router", int] | None] = [None] * NUM_PORTS

        #: per-router event counters (summed by the Network for the
        #: global power windows; also usable for per-router power maps)
        self.activity = ActivityCounters()

        # Insertion-ordered working set of VCs (dict used as an ordered
        # set: value is always None).
        self.busy: dict[VirtualChannel, None] = {}

        self._va_arbs = [RoundRobinArbiter(NUM_PORTS * nvc)
                         for _ in range(NUM_PORTS)]
        self._sa_in_arbs = [RoundRobinArbiter(nvc) for _ in range(NUM_PORTS)]
        self._sa_out_arbs = [RoundRobinArbiter(NUM_PORTS)
                             for _ in range(NUM_PORTS)]

    # ------------------------------------------------------------------
    def receive_flit(self, port: int, vc_index: int, flit: Flit) -> None:
        """A flit arrives on an input port (link delivery or injection)."""
        vc = self.in_vcs[port][vc_index]
        vc.push(flit)
        self.activity.buffer_writes += 1
        net = self.net
        if vc not in self.busy:
            self.busy[vc] = None
        net.mark_active(self)

    # ------------------------------------------------------------------
    def step(self, cycle: int) -> bool:
        """Advance one network clock cycle.  Returns True if still busy."""
        if not self.busy:
            return False
        net = self.net
        config = self.config
        nvc = config.num_vcs

        va_requests: dict[int, list[VirtualChannel]] = {}
        sa_requests: dict[int, list[VirtualChannel]] = {}
        done: list[VirtualChannel] = []

        # --- Phase A: per-VC state advance, collect allocation requests
        for vc in self.busy:
            state = vc.state
            if state == IDLE:
                head = vc.front
                if head is None:
                    done.append(vc)
                    continue
                if not head.is_head:
                    raise RuntimeError(
                        f"wormhole protocol violation at router {self.node}: "
                        f"non-head flit {head!r} at front of an idle VC")
                out_port = self.routing(self.mesh, self.node,
                                        head.packet.dst)
                vc.start_routing(out_port, cycle + config.route_latency)
                state = ROUTING
            if state == ROUTING:
                if cycle >= vc.ready_cycle:
                    vc.enter_vc_alloc()
                    state = VC_ALLOC
                else:
                    continue
            if state == VC_ALLOC:
                va_requests.setdefault(vc.out_port, []).append(vc)
            elif state == ACTIVE:
                if (cycle >= vc.ready_cycle and vc.fifo
                        and self.out_credits[vc.out_port][vc.out_vc] > 0):
                    sa_requests.setdefault(vc.port, []).append(vc)
        for vc in done:
            del self.busy[vc]

        # --- Phase B: VC allocation (round-robin over requesters, each
        # winner takes the lowest free VC after the rotating pointer).
        for out_port, requesters in va_requests.items():
            owners = self.out_vc_owner[out_port]
            free_vcs = [v for v in range(nvc) if owners[v] is None]
            if not free_vcs:
                continue
            arb = self._va_arbs[out_port]
            by_line = {req.port * nvc + req.index: req for req in requesters}
            for out_vc in free_vcs:
                line = arb.grant(by_line)
                if line is None:
                    break
                winner = by_line.pop(line)
                owners[out_vc] = winner
                winner.grant_output_vc(out_vc, cycle + config.va_latency)
                self.activity.vc_allocs += 1

        # --- Phase C: switch allocation + switch/link traversal
        if not sa_requests:
            return True
        nominations: dict[int, list[tuple[int, VirtualChannel]]] = {}
        for in_port, cands in sa_requests.items():
            if len(cands) == 1:
                chosen = cands[0]
            else:
                by_vc = {c.index: c for c in cands}
                vc_idx = self._sa_in_arbs[in_port].grant(by_vc)
                chosen = by_vc[vc_idx]
            nominations.setdefault(chosen.out_port, []).append(
                (in_port, chosen))
        for out_port, noms in nominations.items():
            if len(noms) == 1:
                winner = noms[0][1]
            else:
                by_port = {p: v for p, v in noms}
                port = self._sa_out_arbs[out_port].grant(by_port)
                winner = by_port[port]
            self._send_flit(winner, out_port, cycle)
        return True

    # ------------------------------------------------------------------
    def _send_flit(self, vc: VirtualChannel, out_port: int,
                   cycle: int) -> None:
        """Winner of switch allocation: move one flit through ST/LT."""
        net = self.net
        activity = self.activity
        flit = vc.pop()
        activity.buffer_reads += 1
        activity.xbar_traversals += 1
        activity.sa_grants += 1

        if flit.is_head:
            flit.packet.hops += 1

        out_vc = vc.out_vc
        self.out_credits[out_port][out_vc] -= 1

        if out_port == LOCAL:
            # Ejection: the sink consumes the flit; no credit needed.
            self.out_credits[out_port][out_vc] = _SINK_CREDITS
            net.deliver_flit(flit, cycle)
        else:
            link = self.out_links[out_port]
            if link is None:
                raise RuntimeError(
                    f"router {self.node} routed out of the mesh "
                    f"through port {out_port}")
            nbr, nbr_port = link
            activity.link_flits += 1
            net.schedule_flit(nbr, nbr_port, out_vc, flit,
                              cycle + self.config.link_latency)

        # Return a credit upstream for the freed buffer slot.
        credit_cycle = cycle + self.config.credit_latency
        in_port = vc.port
        if in_port == LOCAL:
            net.schedule_source_credit(self.node, vc.index, credit_cycle)
        else:
            up = self.in_links[in_port]
            net.schedule_router_credit(up[0], up[1], vc.index, credit_cycle)
        activity.credit_transfers += 1

        if flit.is_tail:
            self.out_vc_owner[out_port][out_vc] = None
            vc.release()
        if not vc.fifo and vc.state == IDLE:
            self.busy.pop(vc, None)

    # ------------------------------------------------------------------
    def buffered_flits(self) -> int:
        """Total flits currently buffered in this router (for draining)."""
        return sum(len(vc.fifo)
                   for port_vcs in self.in_vcs for vc in port_vcs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Router(node={self.node}, busy={len(self.busy)})"
