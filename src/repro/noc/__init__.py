"""Cycle-level virtual-channel mesh NoC simulator.

This package is the reproduction's substrate for the paper's modified
Booksim: a wormhole, credit-flow-controlled, virtual-channel mesh
simulator whose network clock is decoupled from the node clock so that
global DVFS policies can be studied.
"""

from .budget import DEFAULT, FAST, SimBudget, THOROUGH, run_fixed_point
from .clock import MultiNodeClockBridge, NetworkClock, NodeClockBridge
from .config import GHZ, MHZ, NocConfig, PAPER_BASELINE, SMALL_TEST
from .engines import (DEFAULT_ENGINE, ENGINES, Engine, engine_names,
                      make_engine)
from .fastsim import FastNetwork
from .flit import Flit, Packet, flits_of
from .network import Network
from .router import Router
from .routing import ROUTING_FUNCTIONS, get_routing_function, route_path
from .simulator import Controller, SimResult, Simulation
from .stats import (ActivityCounters, MeasurementSample, PowerWindow,
                    StatsCollector)
from .topology import EAST, LOCAL, Mesh, NORTH, NUM_PORTS, SOUTH, WEST

__all__ = [
    "ActivityCounters",
    "Controller",
    "DEFAULT",
    "DEFAULT_ENGINE",
    "EAST",
    "ENGINES",
    "Engine",
    "FAST",
    "FastNetwork",
    "Flit",
    "GHZ",
    "LOCAL",
    "MHZ",
    "MeasurementSample",
    "MultiNodeClockBridge",
    "Mesh",
    "NORTH",
    "NUM_PORTS",
    "Network",
    "NetworkClock",
    "NocConfig",
    "NodeClockBridge",
    "PAPER_BASELINE",
    "Packet",
    "PowerWindow",
    "ROUTING_FUNCTIONS",
    "Router",
    "SMALL_TEST",
    "SOUTH",
    "SimBudget",
    "SimResult",
    "Simulation",
    "StatsCollector",
    "THOROUGH",
    "WEST",
    "engine_names",
    "flits_of",
    "get_routing_function",
    "make_engine",
    "route_path",
    "run_fixed_point",
]
