"""The assembled NoC: routers wired in a mesh, sources, event calendar.

The ``Network`` owns all structural state (routers, links, sources) and
the two event calendars (in-flight flits on links, in-flight credits).
It advances one network clock cycle at a time under the direction of
the simulation kernel, which owns time and the clock domains.
"""

from __future__ import annotations

import numpy as np

from .config import NocConfig
from .flit import Flit, Packet
from .router import Router
from .routing import get_routing_function
from .source import Source
from .stats import StatsCollector
from .topology import EAST, NORTH, OPPOSITE, SOUTH, WEST

_DIRECTIONS = (EAST, WEST, NORTH, SOUTH)


class Network:
    """A mesh of VC routers plus injection sources and link pipelines."""

    def __init__(self, config: NocConfig) -> None:
        self.config = config
        self.mesh = config.make_mesh()
        self.stats = StatsCollector()
        routing = get_routing_function(config.routing)

        self.routers = [Router(node, config, self.mesh, routing)
                        for node in range(self.mesh.num_nodes)]
        self.sources = [Source(node, self.routers[node], config.num_vcs,
                               config.vc_buf_depth)
                        for node in range(self.mesh.num_nodes)]
        for router in self.routers:
            router.net = self
            for port in _DIRECTIONS:
                nbr = self.mesh.neighbor(router.node, port)
                if nbr is not None:
                    router.out_links[port] = (self.routers[nbr],
                                              OPPOSITE[port])
            # in_links derive from the neighbours' out_links below.
        for router in self.routers:
            for port in _DIRECTIONS:
                link = router.out_links[port]
                if link is not None:
                    nbr_router, nbr_port = link
                    nbr_router.in_links[nbr_port] = (router, port)

        # Event calendars: cycle -> list of pending deliveries.
        self._flit_events: dict[int, list] = {}
        self._credit_events: dict[int, list] = {}
        # Ordered working sets (dicts as ordered sets).
        self._active_routers: dict[Router, None] = {}
        self._active_sources: dict[Source, None] = {}
        #: per-cycle hook set by the kernel to timestamp deliveries
        self.current_time_ns = 0.0
        #: packets delivered this run (kernel reads + clears)
        self.delivered: list[Packet] = []

    # --- scheduling hooks used by routers -------------------------------
    def mark_active(self, router: Router) -> None:
        if router not in self._active_routers:
            self._active_routers[router] = None

    def schedule_flit(self, router: Router, port: int, vc_index: int,
                      flit: Flit, cycle: int) -> None:
        self._flit_events.setdefault(cycle, []).append(
            (router, port, vc_index, flit))

    def schedule_router_credit(self, router: Router, port: int,
                               vc_index: int, cycle: int) -> None:
        self._credit_events.setdefault(cycle, []).append(
            (router, port, vc_index))

    def schedule_source_credit(self, node: int, vc_index: int,
                               cycle: int) -> None:
        self._credit_events.setdefault(cycle, []).append(
            (self.sources[node], None, vc_index))

    def deliver_flit(self, flit: Flit, cycle: int) -> None:
        """A flit crossed the ejection port of its destination router."""
        self.stats.ejected_flits += 1
        if flit.is_tail:
            packet = flit.packet
            packet.ejected_cycle = cycle
            packet.ejected_ns = self.current_time_ns
            self.stats.on_packet_delivered(packet)
            self.delivered.append(packet)

    # --- packet entry -----------------------------------------------------
    def enqueue_packet(self, packet: Packet) -> None:
        """Hand a freshly generated packet to its source queue."""
        self.stats.on_packet_generated(packet)
        source = self.sources[packet.src]
        source.enqueue(packet)
        if source not in self._active_sources:
            self._active_sources[source] = None

    # --- cycle advance ------------------------------------------------------
    def step_cycle(self, cycle: int, time_ns: float) -> None:
        """Advance every component by one network clock cycle."""
        self.current_time_ns = time_ns

        credit_events = self._credit_events.pop(cycle, None)
        if credit_events:
            for target, port, vc_index in credit_events:
                if port is None:
                    target.return_credit(vc_index)
                else:
                    target.out_credits[port][vc_index] += 1

        flit_events = self._flit_events.pop(cycle, None)
        if flit_events:
            for router, port, vc_index, flit in flit_events:
                router.receive_flit(port, vc_index, flit)

        if self._active_sources:
            idle_sources = [s for s in self._active_sources
                            if not s.step(cycle)]
            for source in idle_sources:
                del self._active_sources[source]

        if self._active_routers:
            idle_routers = [r for r in self._active_routers
                            if not r.step(cycle)]
            for router in idle_routers:
                del self._active_routers[router]

    # --- introspection -----------------------------------------------------
    def occupancy_matrix(self):
        """Buffered flits per VC, shape ``(nodes, ports, vcs)``.

        Shared introspection surface with the fast engine, used by the
        engine-invariant property tests.
        """
        return np.array([[[len(vc.fifo) for vc in port_vcs]
                          for port_vcs in router.in_vcs]
                         for router in self.routers])

    def aggregate_activity(self):
        """Sum of all routers' event counters (for power windows)."""
        total = self.stats.activity.copy()
        for router in self.routers:
            total = total + router.activity
        return total

    def router_activity_map(self) -> list:
        """Per-router cumulative activity, indexed by node id.

        Feed to :meth:`repro.power.PowerModel.router_power_map` for a
        spatial power profile (the paper's per-router estimation).
        """
        return [router.activity.copy() for router in self.routers]

    def in_flight_flits(self) -> int:
        """Flits buffered in routers or traversing links right now."""
        buffered = sum(r.buffered_flits() for r in self.routers)
        on_links = sum(len(events) for events in self._flit_events.values())
        return buffered + on_links

    def source_backlog_flits(self) -> int:
        """Flits stuck in source queues (grows without bound past
        saturation)."""
        return sum(s.backlog_flits() for s in self.sources)

    def is_drained(self) -> bool:
        """True when no flit remains anywhere in the system."""
        return (self.in_flight_flits() == 0
                and self.source_backlog_flits() == 0)
