"""Fast array-based (struct-of-arrays) mesh engine.

A drop-in replacement for :class:`repro.noc.network.Network` that
advances *all* routers' pipeline stages per cycle with batched NumPy
operations instead of per-flit Python loops.  Selected through
``engine="fast"`` on :class:`repro.noc.Simulation`, work-unit specs and
the experiments CLI; its equivalence to the reference engine is
enforced by ``tests/test_engine_equivalence.py``.
"""

from .batch import BatchPoint, run_fixed_batch
from .engine import FastNetwork

__all__ = ["BatchPoint", "FastNetwork", "run_fixed_batch"]
