"""The vectorized mesh engine: struct-of-arrays, batched per cycle.

``FastNetwork`` replaces the reference :class:`repro.noc.Network` for
sweeps where wall-clock speed matters.  Instead of objects per router,
VC and flit, every piece of state lives in flat NumPy arrays indexed by
the *VC line* ``line = node * (ports * vcs) + port * vcs + vc``, and
every router pipeline stage (route computation, VC allocation, switch
allocation, link traversal, credit return) advances for *all* routers
at once with batched array operations.  Per-cycle cost is therefore a
nearly fixed number of NumPy calls, independent of how many flits are
in flight — the regime where the interpreted reference engine is
slowest.

The implementation mirrors the reference semantics decision-for-
decision (same separable input-first allocation, same line-indexed
round-robin arbiter order, same phase ordering within a cycle, same
credit and link timing), so the two engines produce the same flit-level
schedule for the same arrival sequence; only float accumulation order
differs.  ``tests/test_engine_equivalence.py`` enforces this
differentially.

Layout notes (all hot state is flat, int64, and preallocated):

* ``credits[line]`` counts credits *toward the downstream input VC*
  behind output ``(port, vc)`` of ``node`` — the same line indexing as
  input VCs, reused for the output side.
* ``out_line[line]``/``out_group[line]`` cache the allocated output
  credit line and the ``node * P + out_port`` arbiter group of a
  routed packet, so the per-cycle phases are pure gathers.
* ``link_base[node * P + port]`` is the line base of the neighbouring
  router's mirror port; it addresses both flit delivery (downstream
  input VC) and credit return (upstream output credit), which are the
  same line by mesh symmetry.
* Event "calendars" are rings of length ``latency + 1`` holding one
  batch of arrays per future cycle.
* Round-robin winners are found with a ``minimum.at`` scoreboard over
  rotated priorities rather than sorting; priorities are unique within
  a group, so each group gets exactly one champion.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..buffer import ACTIVE, IDLE, ROUTING, VC_ALLOC
from ..config import NocConfig
from ..flit import Packet
from ..routing import get_routing_function
from ..stats import ActivityCounters, StatsCollector
from ..topology import LOCAL, NUM_PORTS, OPPOSITE

#: Credit count used for ejection (local) ports — an infinite sink.
_SINK_CREDITS = 1 << 30

#: Larger than any rotated arbiter priority (scoreboard fill value).
_NO_REQUEST = 1 << 30


class FastNetwork:
    """Array-based mesh engine, flit-schedule-equivalent to ``Network``.

    ``copies`` instantiates that many *disjoint* replicas of the mesh
    inside one engine (block-diagonal topology tables): replica ``c``
    owns global nodes ``c*N .. (c+1)*N - 1``.  Replicas share nothing
    but the batched NumPy dispatch, so each behaves exactly like a
    ``copies=1`` engine while the per-cycle interpreter overhead is
    amortized across the batch — the substrate of
    :func:`repro.noc.fastsim.run_fixed_batch`.
    """

    def __init__(self, config: NocConfig, copies: int = 1) -> None:
        if copies < 1:
            raise ValueError("need at least one mesh replica")
        self.config = config
        self.copies = copies
        self.mesh = config.make_mesh()
        self.stats = StatsCollector()
        #: per-replica statistics; aliases ``stats`` when copies == 1
        self.stats_by_copy = ([self.stats] if copies == 1 else
                              [StatsCollector() for _ in range(copies)])
        #: per-cycle hook set by the kernel to timestamp deliveries
        self.current_time_ns = 0.0
        #: per-replica delivery timestamps (batched runs only)
        self.time_by_copy: np.ndarray | None = None
        #: packets delivered this run (kernel reads + clears)
        self.delivered: list[Packet] = []

        local_nodes = self.mesh.num_nodes
        num_nodes = local_nodes * copies
        self._NL = local_nodes
        self._N = num_nodes
        self._P = NUM_PORTS
        self._V = config.num_vcs
        self._D = config.vc_buf_depth
        self._PV = self._P * self._V
        self._L = num_nodes * self._PV
        self._NP = num_nodes * self._P
        self._route_latency = config.route_latency
        self._va_latency = config.va_latency
        self._link_latency = config.link_latency
        self._credit_latency = config.credit_latency

        lines = np.arange(self._L, dtype=np.int64)
        self.line_node = lines // self._PV
        self.line_port = (lines // self._V) % self._P

        # Routing table, flat over (global node * NL + local dest); the
        # per-replica blocks are identical, so one tile covers all.
        routing = get_routing_function(config.routing)
        route = np.empty(local_nodes * local_nodes, dtype=np.int64)
        for src in range(local_nodes):
            for dst in range(local_nodes):
                route[src * local_nodes + dst] = routing(self.mesh, src,
                                                         dst)
        self._route_flat = np.tile(route, copies)

        link_base = np.full(local_nodes * self._P, -1, dtype=np.int64)
        for node in range(local_nodes):
            for port, opp in OPPOSITE.items():
                nbr = self.mesh.neighbor(node, port)
                if nbr is not None:
                    link_base[node * self._P + port] = (nbr * self._PV
                                                        + opp * self._V)
        local_lines = local_nodes * self._PV
        self._link_base = np.concatenate(
            [np.where(link_base >= 0, link_base + c * local_lines, -1)
             for c in range(copies)])

        # --- per-VC state, struct-of-arrays over all L lines ----------
        self.state = np.full(self._L, IDLE, dtype=np.int8)
        self.out_port = np.full(self._L, -1, dtype=np.int64)
        self.out_vc = np.full(self._L, -1, dtype=np.int64)
        #: cached ``node * P + out_port`` of a routed head (valid while
        #: the VC is ROUTING/VC_ALLOC/ACTIVE)
        self.out_group = np.zeros(self._L, dtype=np.int64)
        #: cached output credit line of the allocated output VC (valid
        #: while ACTIVE)
        self.out_line = np.zeros(self._L, dtype=np.int64)
        self.ready = np.zeros(self._L, dtype=np.int64)
        self.fifo_head = np.zeros(self._L, dtype=np.int64)
        # int16: the per-cycle busy-line scan reads this end to end,
        # and VC depths never approach the dtype limit.
        self.fifo_len = np.zeros(self._L, dtype=np.int16)
        self.buf_pid = np.full(self._L * self._D, -1, dtype=np.int64)
        self.buf_fidx = np.full(self._L * self._D, -1, dtype=np.int64)

        self.credits = np.full(self._L, self._D, dtype=np.int64)
        self.credits[self.line_port == LOCAL] = _SINK_CREDITS
        #: which input line owns each output VC line (-1 = free)
        self.owner = np.full(self._L, -1, dtype=np.int64)
        self._owner_rows = self.owner.reshape(self._NP, self._V)

        # Round-robin pointers, one per (node, port) arbiter, mirroring
        # the reference arbiters' line numbering exactly.
        self.va_ptr = np.zeros(self._NP, dtype=np.int64)
        self.sa_in_ptr = np.zeros(self._NP, dtype=np.int64)
        self.sa_out_ptr = np.zeros(self._NP, dtype=np.int64)
        # Invariant: all _NO_REQUEST between arbitration rounds; each
        # round restores only the entries it touched (O(requests)
        # instead of an O(N*P) refill — copies scale N, requests don't).
        self._scoreboard = np.full(self._NP, _NO_REQUEST, dtype=np.int64)
        self._group_counts = np.zeros(self._NP, dtype=np.int64)

        # --- sources --------------------------------------------------
        self.queues: list[deque[int]] = [deque() for _ in range(num_nodes)]
        self.queue_ready = np.zeros(num_nodes, dtype=bool)
        self.cur_lid = np.full(num_nodes, -1, dtype=np.int64)
        self.cur_len = np.zeros(num_nodes, dtype=np.int64)
        self.cur_sent = np.zeros(num_nodes, dtype=np.int64)
        self.cur_vc = np.zeros(num_nodes, dtype=np.int64)
        self.src_rr = np.zeros(num_nodes, dtype=np.int64)
        self.src_credits = np.full(num_nodes * self._V, self._D,
                                   dtype=np.int64)
        self.node_base = np.arange(num_nodes, dtype=np.int64) * self._PV
        self._queued_packets = 0

        # --- packet store (amortized-doubling arrays + object list) ---
        self.packets: list[Packet] = []
        self.pkt_dst = np.zeros(1024, dtype=np.int64)
        self.pkt_len = np.zeros(1024, dtype=np.int64)
        self.pkt_hops = np.zeros(1024, dtype=np.int64)

        # --- event rings ----------------------------------------------
        self._flit_horizon = config.link_latency + 1
        self._credit_horizon = config.credit_latency + 1
        self._flit_ring: list[tuple | None] = [None] * self._flit_horizon
        self._credit_ring: list[tuple | None] = [None] * self._credit_horizon

        # incremental accounting (avoids O(L) scans in hot properties)
        self._buffered = 0
        self._in_link = 0
        self._src_backlog = 0
        self._multi = copies > 1
        self._CL = local_nodes * self._PV  # lines per replica
        self._ejected_by_copy = np.zeros(copies, dtype=np.int64)
        # plain ints: updated per packet in enqueue_packet's hot path
        self._backlog_by_copy = [0] * copies
        # activity counters (plain ints; see aggregate_activity)
        self._act_buffer_writes = 0
        self._act_buffer_reads = 0
        self._act_xbar = 0
        self._act_link_flits = 0
        self._act_vc_allocs = 0
        self._act_sa_grants = 0
        self._act_credits = 0
        # Per-replica activity (batched runs attribute power per copy).
        # ``attribute_activity`` gates the per-event attribution; the
        # batch kernel enables it only inside the measurement window —
        # window deltas are all that power models consume, so warmup
        # and drain cycles skip the bookkeeping.
        self.attribute_activity = True
        self._actc_buffer_writes = np.zeros(copies, dtype=np.int64)
        self._actc_buffer_reads = np.zeros(copies, dtype=np.int64)
        self._actc_xbar = np.zeros(copies, dtype=np.int64)
        self._actc_link_flits = np.zeros(copies, dtype=np.int64)
        self._actc_vc_allocs = np.zeros(copies, dtype=np.int64)
        self._actc_sa_grants = np.zeros(copies, dtype=np.int64)
        self._actc_credits = np.zeros(copies, dtype=np.int64)

    # --- packet entry -----------------------------------------------------
    def enqueue_packet(self, packet: Packet) -> None:
        """Hand a freshly generated packet to its source queue."""
        lid = len(self.packets)
        if lid >= len(self.pkt_dst):
            self._grow_packet_store()
        self.packets.append(packet)
        copy = packet.src // self._NL
        self.pkt_dst[lid] = packet.dst - copy * self._NL
        self.pkt_len[lid] = packet.length
        self.pkt_hops[lid] = 0
        self.stats_by_copy[copy].on_packet_generated(packet)
        self.queues[packet.src].append(lid)
        self.queue_ready[packet.src] = True
        self._queued_packets += 1
        self._src_backlog += packet.length
        if self._multi:
            self._backlog_by_copy[copy] += packet.length

    def _grow_packet_store(self) -> None:
        cap = 2 * len(self.pkt_dst)
        for name in ("pkt_dst", "pkt_len", "pkt_hops"):
            old = getattr(self, name)
            grown = np.zeros(cap, dtype=np.int64)
            grown[:len(old)] = old
            setattr(self, name, grown)

    # --- cycle advance ------------------------------------------------------
    def step_cycle(self, cycle: int, time_ns: float) -> None:
        """Advance every component by one network clock cycle."""
        self.current_time_ns = time_ns

        batch = self._credit_ring[cycle % self._credit_horizon]
        if batch is not None:
            self._credit_ring[cycle % self._credit_horizon] = None
            router_lines, src_slots = batch
            if router_lines.size:
                self.credits[router_lines] += 1
            if src_slots.size:
                self.src_credits[src_slots] += 1

        batch = self._flit_ring[cycle % self._flit_horizon]
        if batch is not None:
            self._flit_ring[cycle % self._flit_horizon] = None
            lines, pids, fidxs = batch
            self._push_flits(lines, pids, fidxs)
            self._in_link -= lines.size

        if self._src_backlog:
            self._step_sources(cycle)
        if self._buffered:
            self._step_routers(cycle)

    def _push_flits(self, lines: np.ndarray, pids: np.ndarray,
                    fidxs: np.ndarray) -> None:
        """Buffer one arriving flit per (unique) line."""
        pos = self.fifo_head.take(lines) + self.fifo_len.take(lines)
        pos = lines * self._D + pos % self._D
        self.buf_pid[pos] = pids
        self.buf_fidx[pos] = fidxs
        self.fifo_len[lines] += 1
        self._buffered += lines.size
        self._act_buffer_writes += lines.size
        if self._multi and self.attribute_activity:
            self._actc_buffer_writes += np.bincount(
                lines // self._CL, minlength=self.copies)

    # --- sources ------------------------------------------------------------
    def _step_sources(self, cycle: int) -> None:
        """All sources try to inject one flit (the reference Source)."""
        cur_lid = self.cur_lid
        if self._queued_packets:
            need = (cur_lid < 0) & self.queue_ready
            for node in np.nonzero(need)[0].tolist():
                queue = self.queues[node]
                lid = queue.popleft()
                if not queue:
                    self.queue_ready[node] = False
                self._queued_packets -= 1
                cur_lid[node] = lid
                self.cur_len[node] = self.pkt_len[lid]
                self.cur_sent[node] = 0
                # Rotate the starting VC per packet, as the reference.
                self.cur_vc[node] = self.src_rr[node]
                self.src_rr[node] = (self.src_rr[node] + 1) % self._V

        active = np.flatnonzero(cur_lid >= 0)
        if not active.size:
            return
        vcs = self.cur_vc.take(active)
        slots = active * self._V + vcs
        can = self.src_credits.take(slots) > 0
        if not can.all():
            active = active[can]
            if not active.size:
                return
            vcs = vcs[can]
            slots = slots[can]
        lids = cur_lid.take(active)
        sent = self.cur_sent.take(active)

        self.src_credits[slots] -= 1
        lines = self.node_base.take(active) + vcs     # LOCAL port is 0
        self._push_flits(lines, lids, sent)
        self._src_backlog -= active.size
        self.stats.injected_flits += active.size
        if self._multi:
            backlog = self._backlog_by_copy
            injected = np.bincount(active // self._NL,
                                   minlength=self.copies).tolist()
            for copy, flits in enumerate(injected):
                if flits:
                    backlog[copy] -= flits

        heads = sent == 0
        if heads.any():
            for lid in lids[heads].tolist():
                self.packets[lid].injected_cycle = cycle
        sent = sent + 1
        self.cur_sent[active] = sent
        finished = sent >= self.cur_len.take(active)
        if finished.any():
            cur_lid[active[finished]] = -1

    # --- router pipeline ----------------------------------------------------
    def _step_routers(self, cycle: int) -> None:
        """One cycle of every router's pipeline.

        All phase sets derive from the lines that hold flits (``wf``):
        ROUTING and VC_ALLOC lines have their head flit buffered by
        construction, and an ACTIVE line without a buffered flit has
        nothing to send — so one ``flatnonzero`` over the FIFO
        occupancy is the only full-line scan per cycle, and everything
        after operates on the (usually much smaller) busy subset.
        """
        state = self.state
        wf = np.flatnonzero(self.fifo_len)
        if not wf.size:
            return
        st = state.take(wf)

        # Phase A: per-VC state advance (IDLE -> ROUTING -> VC_ALLOC).
        # ``va_mask`` collects this cycle's VC_ALLOC requesters over
        # ``wf`` positions, so ``va`` keeps ascending line order.
        va_mask = st == VC_ALLOC
        rpos = np.flatnonzero(st == ROUTING)
        if rpos.size:
            # Newly ROUTING lines (set below) carry ready > cycle and
            # are not in ``rpos`` anyway: they sit out their latency.
            done = self.ready.take(wf.take(rpos)) <= cycle
            sel = rpos[done]
            if sel.size:
                state[wf.take(sel)] = VC_ALLOC
                va_mask[sel] = True
        ipos = np.flatnonzero(st == IDLE)
        if ipos.size:
            idle = wf.take(ipos)
            front = idle * self._D + self.fifo_head.take(idle)
            dsts = self.pkt_dst.take(self.buf_pid.take(front))
            nodes = self.line_node.take(idle)
            ports = self._route_flat.take(nodes * self._NL + dsts)
            self.out_port[idle] = ports
            self.out_group[idle] = nodes * self._P + ports
            if self._route_latency:
                self.ready[idle] = cycle + self._route_latency
                state[idle] = ROUTING
            else:
                # Zero-latency route computation: straight to VC_ALLOC,
                # as the reference's same-cycle fall-through does.
                state[idle] = VC_ALLOC
                va_mask[ipos] = True

        # SA candidates are collected *before* VA grants, as in the
        # reference (a VC granted an output VC this cycle cannot also
        # win the switch this cycle, even with va_latency == 0).
        act = wf[st == ACTIVE]
        out_lines = np.empty(0, dtype=np.int64)
        if act.size:
            ready_ok = self.ready.take(act) <= cycle
            if not ready_ok.all():
                act = act[ready_ok]
        if act.size:
            out_lines = self.out_line.take(act)
            got_credit = self.credits.take(out_lines) > 0
            if not got_credit.all():
                act = act[got_credit]
                out_lines = out_lines[got_credit]

        va = wf[va_mask]
        if va.size:
            self._vc_allocate(va, cycle)
        if act.size:
            self._switch_allocate(act, out_lines, cycle)

    def _vc_allocate(self, va: np.ndarray, cycle: int) -> None:
        """Phase B: VC allocation, one grant round per free output VC.

        Mirrors the reference loop exactly: per output port, the free
        output VCs are granted in increasing index order, each to the
        next requester after the rotating pointer of the port's
        ``P*V``-line arbiter (which advances on every grant).
        """
        pv = self._PV
        group = self.out_group.take(va)
        lane = va % pv
        scoreboard = self._scoreboard

        while True:
            prio = (lane - self.va_ptr.take(group)) % pv
            np.minimum.at(scoreboard, group, prio)
            champs = np.flatnonzero(prio == scoreboard.take(group))
            scoreboard[group] = _NO_REQUEST
            groups = group.take(champs)

            free_rows = self._owner_rows[groups] < 0
            grantable = free_rows.any(axis=1)
            if not grantable.all():
                if not grantable.any():
                    break
                champs = champs[grantable]
                groups = groups[grantable]
                free_rows = free_rows[grantable]
            free_vc = free_rows.argmax(axis=1)

            winners = va.take(champs)
            granted = groups * self._V + free_vc
            self.owner[granted] = winners
            self.out_line[winners] = granted
            self.out_vc[winners] = free_vc
            self.state[winners] = ACTIVE
            self.ready[winners] = cycle + self._va_latency
            self.va_ptr[groups] = (lane.take(champs) + 1) % pv
            self._act_vc_allocs += winners.size
            if self._multi and self.attribute_activity:
                self._actc_vc_allocs += np.bincount(
                    winners // self._CL, minlength=self.copies)

            if champs.size == va.size:
                break
            keep = np.ones(va.size, dtype=bool)
            keep[champs] = False
            va = va[keep]
            group = group[keep]
            lane = lane[keep]

    def _switch_allocate(self, act: np.ndarray, out_lines: np.ndarray,
                         cycle: int) -> None:
        """Phase C: separable input-first switch allocation.

        As in the reference, an arbiter is only consulted (and its
        pointer advanced) when a port has two or more candidates.
        """
        if act.size > 1:
            champs = self._arbitrate(act // self._V, act % self._V,
                                     self._V, self.sa_in_ptr)
            if champs is not None:
                act = act.take(champs)
                out_lines = out_lines.take(champs)
        if act.size > 1:
            champs = self._arbitrate(self.out_group.take(act),
                                     self.line_port.take(act),
                                     self._P, self.sa_out_ptr)
            if champs is not None:
                act = act.take(champs)
                out_lines = out_lines.take(champs)
        self._send(act, out_lines, cycle)

    def _arbitrate(self, group: np.ndarray, lane: np.ndarray,
                   size: int, pointers: np.ndarray) -> np.ndarray | None:
        """One round-robin stage: the champion of every group.

        Returns candidate positions, or ``None`` when every group had a
        single candidate (everyone wins).  Pointers advance one past
        the winner only for groups that actually arbitrated (>= 2
        candidates), matching the reference's single-candidate path.
        """
        scoreboard = self._scoreboard
        prio = (lane - pointers.take(group)) % size
        np.minimum.at(scoreboard, group, prio)
        champs = np.flatnonzero(prio == scoreboard.take(group))
        scoreboard[group] = _NO_REQUEST
        if champs.size == group.size:
            return None                     # all groups uncontested
        counts = self._group_counts
        np.add.at(counts, group, 1)
        contested = counts.take(group.take(champs)) >= 2
        counts[group] = 0
        advance = champs[contested]
        pointers[group.take(advance)] = (lane.take(advance) + 1) % size
        return champs

    def _send(self, winners: np.ndarray, out_lines: np.ndarray,
              cycle: int) -> None:
        """Phase D: winners traverse switch and link (the reference's
        ``_send_flit``, batched)."""
        count = winners.size
        front = self.fifo_head.take(winners)
        slots = winners * self._D + front
        pids = self.buf_pid.take(slots)
        fidxs = self.buf_fidx.take(slots)
        self.fifo_head[winners] = (front + 1) % self._D
        self.fifo_len[winners] -= 1
        self._buffered -= count
        self._act_buffer_reads += count
        self._act_xbar += count
        self._act_sa_grants += count
        win_by_copy = None
        if self._multi and self.attribute_activity:
            win_by_copy = np.bincount(winners // self._CL,
                                      minlength=self.copies)
            self._actc_buffer_reads += win_by_copy
            self._actc_xbar += win_by_copy
            self._actc_sa_grants += win_by_copy
            self._actc_credits += win_by_copy

        self.pkt_hops[pids[fidxs == 0]] += 1
        tails = fidxs == self.pkt_len.take(pids) - 1
        local = self.out_port.take(winners) == LOCAL

        ejected = int(np.count_nonzero(local))
        ej_by_copy = None
        if ejected:
            # Ejection: the sink consumes the flit; no credit needed.
            self.stats.ejected_flits += ejected
            if self._multi:
                ej_by_copy = np.bincount(winners[local] // self._CL,
                                         minlength=self.copies)
                self._ejected_by_copy += ej_by_copy
            eject_tails = local & tails
            if eject_tails.any():
                now_ns = self.current_time_ns
                times = self.time_by_copy
                time_of = None if times is None else times.tolist()
                done_pids = pids[eject_tails]
                done_hops = self.pkt_hops.take(done_pids).tolist()
                for lid, hops in zip(done_pids.tolist(), done_hops):
                    packet = self.packets[lid]
                    copy = packet.src // self._NL
                    packet.ejected_cycle = cycle
                    packet.ejected_ns = (now_ns if time_of is None
                                         else time_of[copy])
                    packet.hops = hops
                    self.stats_by_copy[copy].on_packet_delivered(packet)
                    self.delivered.append(packet)
        if ejected != count:
            if ejected:
                network = ~local
                sent_lines = out_lines[network]
                sent_pids = pids[network]
                sent_fidxs = fidxs[network]
            else:
                sent_lines, sent_pids, sent_fidxs = out_lines, pids, fidxs
            self.credits[sent_lines] -= 1
            # ``out_line = (node*P + out_port) * V + out_vc`` decomposes
            # back into the link table group and the output VC.
            dests = (self._link_base.take(sent_lines // self._V)
                     + sent_lines % self._V)
            slot = (cycle + self._link_latency) % self._flit_horizon
            self._flit_ring[slot] = (dests, sent_pids, sent_fidxs)
            self._in_link += sent_lines.size
            self._act_link_flits += sent_lines.size
            if win_by_copy is not None:
                self._actc_link_flits += (
                    win_by_copy if ej_by_copy is None
                    else win_by_copy - ej_by_copy)

        # Return a credit upstream for each freed buffer slot.  A line
        # decomposes as ``(node*P + in_port) * V + in_vc``; local input
        # ports credit the source-side mirror instead.
        in_groups = winners // self._V
        from_source = self.line_port.take(winners) == LOCAL
        if from_source.any():
            routed = ~from_source
            router_credits = (self._link_base.take(in_groups[routed])
                              + winners[routed] % self._V)
            src_slots = (winners[from_source] // self._PV * self._V
                         + winners[from_source] % self._V)
        else:
            router_credits = (self._link_base.take(in_groups)
                              + winners % self._V)
            src_slots = np.empty(0, dtype=np.int64)
        slot = (cycle + self._credit_latency) % self._credit_horizon
        self._credit_ring[slot] = (router_credits, src_slots)
        self._act_credits += count

        if tails.any():
            released = winners[tails]
            self.owner[out_lines[tails]] = -1
            self.state[released] = IDLE

    # --- introspection -----------------------------------------------------
    def aggregate_activity(self) -> ActivityCounters:
        """Sum of all event counters (for power windows)."""
        return self.stats.activity + ActivityCounters(
            buffer_writes=self._act_buffer_writes,
            buffer_reads=self._act_buffer_reads,
            xbar_traversals=self._act_xbar,
            link_flits=self._act_link_flits,
            vc_allocs=self._act_vc_allocs,
            sa_grants=self._act_sa_grants,
            credit_transfers=self._act_credits)

    def activity_of(self, copy: int) -> ActivityCounters:
        """Cumulative event counters of one replica.

        This is what per-replica power windows are built from: each
        batched sweep point's energy integrates *its own* mesh events,
        exactly as a standalone ``copies=1`` run would count them.
        Events are attributed per copy only while
        ``attribute_activity`` is True; window *deltas* over an
        attributed interval are exact regardless of the flag's state
        outside it.
        """
        if not self._multi:
            return self.aggregate_activity()
        return ActivityCounters(
            buffer_writes=int(self._actc_buffer_writes[copy]),
            buffer_reads=int(self._actc_buffer_reads[copy]),
            xbar_traversals=int(self._actc_xbar[copy]),
            link_flits=int(self._actc_link_flits[copy]),
            vc_allocs=int(self._actc_vc_allocs[copy]),
            sa_grants=int(self._actc_sa_grants[copy]),
            credit_transfers=int(self._actc_credits[copy]))

    def freeze_copy(self, copy: int) -> None:
        """Retire one replica: drop every flit it still owns.

        Batched runs call this the moment a replica's measured packets
        have all been delivered and its statistics are frozen — the
        point where a standalone run would simply terminate.  Dropping
        the replica's source queues, buffered flits and in-flight
        link/credit events shrinks every subsequent cycle's active
        sets, so stragglers no longer pay for finished replicas.
        Replicas share no state, so the remaining copies' schedules are
        untouched (the equivalence suite enforces this).
        """
        if not self._multi:
            raise ValueError("freeze_copy needs a multi-replica engine")
        lo, hi = copy * self._CL, (copy + 1) * self._CL
        node_lo, node_hi = copy * self._NL, (copy + 1) * self._NL

        # Sources: forget queued and half-sent packets.
        for node in range(node_lo, node_hi):
            queue = self.queues[node]
            self._queued_packets -= len(queue)
            queue.clear()
        self.queue_ready[node_lo:node_hi] = False
        self.cur_lid[node_lo:node_hi] = -1
        self._src_backlog -= self._backlog_by_copy[copy]
        self._backlog_by_copy[copy] = 0

        # Router lines: empty FIFOs and release allocations.
        self._buffered -= int(self.fifo_len[lo:hi].sum())
        self.fifo_len[lo:hi] = 0
        self.fifo_head[lo:hi] = 0
        self.state[lo:hi] = IDLE
        self.owner[lo:hi] = -1

        # Event rings: drop flits and credits addressed into the
        # replica (its lines are never looked at again).
        for slot, batch in enumerate(self._flit_ring):
            if batch is None:
                continue
            lines, pids, fidxs = batch
            keep = (lines < lo) | (lines >= hi)
            if keep.all():
                continue
            self._in_link -= int(np.count_nonzero(~keep))
            self._flit_ring[slot] = (
                (lines[keep], pids[keep], fidxs[keep])
                if keep.any() else None)
        slot_lo, slot_hi = node_lo * self._V, node_hi * self._V
        for slot, batch in enumerate(self._credit_ring):
            if batch is None:
                continue
            router_lines, src_slots = batch
            keep_r = (router_lines < lo) | (router_lines >= hi)
            keep_s = (src_slots < slot_lo) | (src_slots >= slot_hi)
            if keep_r.all() and keep_s.all():
                continue
            router_lines = router_lines[keep_r]
            src_slots = src_slots[keep_s]
            self._credit_ring[slot] = (
                (router_lines, src_slots)
                if router_lines.size or src_slots.size else None)

    def router_activity_map(self) -> list:
        raise NotImplementedError(
            "per-router activity maps need the reference engine "
            "(the fast engine only tracks mesh-wide counters)")

    def occupancy_matrix(self) -> np.ndarray:
        """Buffered flits per VC, shape ``(nodes, ports, vcs)``."""
        return (self.fifo_len.reshape(self._N, self._P, self._V)
                .copy())

    def in_flight_flits(self) -> int:
        """Flits buffered in routers or traversing links right now."""
        return self._buffered + self._in_link

    def source_backlog_flits(self) -> int:
        """Flits stuck in source queues (grows without bound past
        saturation)."""
        return self._src_backlog

    def ejected_flits_of(self, copy: int) -> int:
        """Cumulative ejected flits of one replica."""
        if not self._multi:
            return self.stats.ejected_flits
        return int(self._ejected_by_copy[copy])

    def backlog_of(self, copy: int) -> int:
        """Source-queue backlog flits of one replica."""
        if not self._multi:
            return self._src_backlog
        return self._backlog_by_copy[copy]

    def is_drained(self) -> bool:
        """True when no flit remains anywhere in the system."""
        return self.in_flight_flits() == 0 and self._src_backlog == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FastNetwork({self.mesh.width}x{self.mesh.height}, "
                f"in_flight={self.in_flight_flits()})")
