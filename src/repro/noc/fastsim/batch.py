"""Batched fixed-frequency runs: many sweep points, one engine.

The struct-of-arrays engine is size-agnostic: ``B`` independent sweep
points become ``B`` disjoint replicas of the mesh inside one
:class:`FastNetwork` (block-diagonal topology tables), so the per-cycle
NumPy dispatch overhead — the fast engine's dominant remaining cost —
is amortized over the whole batch.  This is the engine's intended
execution mode for sweeps: the batched execution backend
(:mod:`repro.runner.backends`) routes eligible work-unit groups here,
and it is what ``BENCH_kernel.json``/``BENCH_sweep.json`` benchmark.

Every point keeps its own network clock, node-clock bridge, RNG and
injection process, and the replicas share no simulation state, so each
per-point result is *identical* to running that point alone with
``engine="fast"`` (the equivalence suite enforces this) — including
its power windows, which integrate per-replica activity counters.
The moment a replica's measured packets have all drained (where a
standalone run would terminate) the engine retires it
(:meth:`FastNetwork.freeze_copy`), so long-running stragglers do not
pay stepping costs for finished points.  One restriction versus the
one-run kernel remains: heterogeneous node clocks are not supported
(those units fall back to per-unit execution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ...traffic.injection import InjectionProcess, TrafficSpec
from ..clock import NetworkClock, NodeClockBridge
from ..config import NocConfig
from ..flit import Packet
from ..stats import PowerWindow
from .engine import FastNetwork

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..budget import SimBudget
    from ..simulator import SimResult


@dataclass(frozen=True)
class BatchPoint:
    """One fixed-frequency simulation of a batched run."""

    traffic: TrafficSpec
    freq_hz: float
    seed: int


def run_fixed_batch(config: NocConfig, points: list[BatchPoint],
                    budget: "SimBudget") -> list["SimResult"]:
    """Run every point at its pinned frequency in one batched engine.

    Returns one :class:`~repro.noc.simulator.SimResult` per point,
    equal to ``run_fixed_point(..., engine="fast")`` on the same
    arguments, per-replica power windows included.
    """
    # Runtime import: repro.noc.simulator imports the engine registry,
    # which imports this package.
    from ..simulator import SimResult

    if config.node_freqs_hz is not None:
        raise NotImplementedError(
            "heterogeneous node clocks are not supported in batched runs")
    count = len(points)
    if not count:
        return []

    local_nodes = config.num_nodes
    packet_length = config.packet_length
    net = FastNetwork(config, copies=count)
    clocks = [NetworkClock(p.freq_hz, config.f_min_hz, config.f_max_hz)
              for p in points]
    injections = [InjectionProcess(p.traffic, packet_length,
                                   np.random.default_rng(p.seed))
                  for p in points]
    # All replicas share the node clock, so one NodeClockBridge worth
    # of state is kept as arrays/lists and advanced for all copies at
    # once (element-wise identical to per-replica bridges).
    node_period = NodeClockBridge(config.f_node_hz).period_ns
    next_node_cycle = [0] * count

    # Budget validity is SimBudget.__post_init__'s job; ad-hoc range
    # checks used to live here.
    warmup = budget.warmup_cycles
    measure = budget.measure_cycles
    measure_start = warmup
    measure_end = warmup + measure
    hard_end = measure_end + budget.drain_cycles

    # All clocks are fixed-frequency, so absolute time advances by one
    # per-replica vector add per cycle — element-wise this accumulates
    # bit-identically to each replica's own ``NetworkClock.tick``.
    periods = np.array([1e9 / c.freq_hz for c in clocks])
    times = np.zeros(count)
    net.time_by_copy = times
    # Per-copy activity attribution costs a few bincounts per cycle;
    # power windows only need measurement-phase deltas.
    net.attribute_activity = False
    sims = range(count)
    tagging = False
    closed = False
    complete = [False] * count
    active = list(sims)                 # replicas still simulating
    meas_start_ns = [0.0] * count
    meas_end_ns = [0.0] * count
    nc_start = [0] * count
    nc_end = [0] * count
    ej_start = [0] * count
    ej_end = [0] * count
    bl_start = [0] * count
    bl_end = [0] * count
    act_start = [None] * count
    act_end = [None] * count

    cycle = 0
    while True:
        if cycle == measure_start:
            # Same boundary placement as Simulation.run: snapshots are
            # taken before this cycle's arrivals and network step.
            tagging = True
            net.attribute_activity = True
            for i in sims:
                meas_start_ns[i] = times[i]
                nc_start[i] = next_node_cycle[i]
                ej_start[i] = net.ejected_flits_of(i)
                bl_start[i] = net.backlog_of(i)
                act_start[i] = net.activity_of(i)

        # Node cycles completed per replica, all copies in one pass
        # (NodeClockBridge.elapsed_node_cycles, vectorized: same
        # division, same epsilon, same truncation).
        completed = (times / node_period + 1e-9).astype(np.int64).tolist()
        for i in active:
            start = next_node_cycle[i]
            num_cycles = completed[i] + 1 - start
            if num_cycles > 0:
                next_node_cycle[i] = completed[i] + 1
                offset_node = i * local_nodes
                for offset, src, dst in \
                        injections[i].arrivals(num_cycles):
                    packet = Packet(
                        offset_node + src, offset_node + dst,
                        packet_length, created_cycle=cycle,
                        created_ns=(start + offset) * node_period,
                        measured=tagging)
                    net.enqueue_packet(packet)

        net.step_cycle(cycle, 0.0)
        times += periods
        cycle += 1

        if cycle >= measure_end:
            if not closed:
                closed = True
                tagging = False
                net.attribute_activity = False
                for i in sims:
                    meas_end_ns[i] = times[i]
                    nc_end[i] = next_node_cycle[i]
                    ej_end[i] = net.ejected_flits_of(i)
                    bl_end[i] = net.backlog_of(i)
                    act_end[i] = net.activity_of(i)
            still = []
            for i in active:
                stats = net.stats_by_copy[i]
                if stats.measured_delivered >= stats.measured_created:
                    # All of this point's measured packets arrived and
                    # its statistics are frozen; a standalone run would
                    # terminate here, so retire the replica.
                    complete[i] = True
                    if count > 1:
                        net.freeze_copy(i)
                else:
                    still.append(i)
            active = still
            if not active or cycle >= hard_end:
                break

    results = []
    for i, point in enumerate(points):
        stats = net.stats_by_copy[i]
        delays = stats.measured_delays_ns
        node_cycles_meas = max(1, nc_end[i] - nc_start[i])
        window = PowerWindow(
            duration_ns=meas_end_ns[i] - meas_start_ns[i],
            cycles=measure,
            freq_hz=clocks[i].freq_hz,
            activity=act_end[i] - act_start[i])
        results.append(SimResult(
            config=config,
            seed=point.seed,
            offered_node_rate=point.traffic.mean_node_rate(),
            warmup_cycles=warmup,
            measure_cycles=measure,
            mean_latency_cycles=(stats.mean_latency_cycles()
                                 if delays else None),
            mean_delay_ns=stats.mean_delay_ns() if delays else None,
            p99_delay_ns=(float(np.percentile(delays, 99))
                          if delays else None),
            mean_hops=stats.mean_hops() if delays else None,
            measured_created=stats.measured_created,
            measured_delivered=stats.measured_delivered,
            complete=complete[i],
            accepted_node_rate=((ej_end[i] - ej_start[i])
                                / (node_cycles_meas * local_nodes)),
            measure_duration_ns=meas_end_ns[i] - meas_start_ns[i],
            measure_node_cycles=node_cycles_meas,
            backlog_delta_flits=bl_end[i] - bl_start[i],
            freq_trace=[(0.0, clocks[i].freq_hz)],
            power_windows=[window],
        ))
    return results
