"""Batched fixed-frequency runs: many sweep points, one engine.

The struct-of-arrays engine is size-agnostic: ``B`` independent sweep
points become ``B`` disjoint replicas of the mesh inside one
:class:`FastNetwork` (block-diagonal topology tables), so the per-cycle
NumPy dispatch overhead — the fast engine's dominant remaining cost —
is amortized over the whole batch.  This is the engine's intended
execution mode for sweeps and the one benchmarked into
``BENCH_kernel.json``.

Every point keeps its own network clock, node-clock bridge, RNG and
injection process, and the replicas share no simulation state, so each
per-point result is *identical* to running that point alone with
``engine="fast"`` (the equivalence suite enforces this).  Two
restrictions versus the one-run kernel: heterogeneous node clocks are
not supported, and batched results carry no power windows (per-replica
activity attribution would cost more than it is worth); delay and
throughput figures are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ...traffic.injection import InjectionProcess, TrafficSpec
from ..clock import NetworkClock, NodeClockBridge
from ..config import NocConfig
from ..flit import Packet
from .engine import FastNetwork

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..budget import SimBudget
    from ..simulator import SimResult


@dataclass(frozen=True)
class BatchPoint:
    """One fixed-frequency simulation of a batched run."""

    traffic: TrafficSpec
    freq_hz: float
    seed: int


def run_fixed_batch(config: NocConfig, points: list[BatchPoint],
                    budget: "SimBudget") -> list["SimResult"]:
    """Run every point at its pinned frequency in one batched engine.

    Returns one :class:`~repro.noc.simulator.SimResult` per point,
    equal to ``run_fixed_point(..., engine="fast")`` on the same
    arguments (except for the absent power windows).
    """
    # Runtime import: repro.noc.simulator imports the engine registry,
    # which imports this package.
    from ..simulator import SimResult

    if config.node_freqs_hz is not None:
        raise NotImplementedError(
            "heterogeneous node clocks are not supported in batched runs")
    count = len(points)
    if not count:
        return []

    local_nodes = config.num_nodes
    packet_length = config.packet_length
    net = FastNetwork(config, copies=count)
    clocks = [NetworkClock(p.freq_hz, config.f_min_hz, config.f_max_hz)
              for p in points]
    bridges = [NodeClockBridge(config.f_node_hz) for _ in points]
    injections = [InjectionProcess(p.traffic, packet_length,
                                   np.random.default_rng(p.seed))
                  for p in points]

    warmup = budget.warmup_cycles
    measure = budget.measure_cycles
    if warmup < 0 or measure < 1:
        raise ValueError("need warmup >= 0 and measure >= 1 cycles")
    measure_start = warmup
    measure_end = warmup + measure
    hard_end = measure_end + budget.drain_cycles

    times = np.zeros(count)
    net.time_by_copy = times
    sims = range(count)
    tagging = False
    closed = False
    complete = [False] * count
    meas_start_ns = [0.0] * count
    meas_end_ns = [0.0] * count
    nc_start = [0] * count
    nc_end = [0] * count
    ej_start = [0] * count
    ej_end = [0] * count
    bl_start = [0] * count
    bl_end = [0] * count

    cycle = 0
    while True:
        for i in sims:
            times[i] = clocks[i].time_ns
        if cycle == measure_start:
            # Same boundary placement as Simulation.run: snapshots are
            # taken before this cycle's arrivals and network step.
            tagging = True
            for i in sims:
                meas_start_ns[i] = times[i]
                nc_start[i] = bridges[i].next_node_cycle
                ej_start[i] = net.ejected_flits_of(i)
                bl_start[i] = net.backlog_of(i)

        for i in sims:
            if complete[i]:
                # All of this point's measured packets arrived and its
                # statistics are frozen; stop offering load.
                continue
            node_cycles = bridges[i].elapsed_node_cycles(times[i])
            if len(node_cycles):
                offset_node = i * local_nodes
                bridge = bridges[i]
                for offset, src, dst in \
                        injections[i].arrivals(len(node_cycles)):
                    packet = Packet(
                        offset_node + src, offset_node + dst,
                        packet_length, created_cycle=cycle,
                        created_ns=bridge.node_time_ns(
                            node_cycles.start + offset),
                        measured=tagging)
                    net.enqueue_packet(packet)

        net.step_cycle(cycle, 0.0)
        for clock in clocks:
            clock.tick()
        cycle += 1

        if cycle >= measure_end:
            if not closed:
                closed = True
                tagging = False
                for i in sims:
                    meas_end_ns[i] = clocks[i].time_ns
                    nc_end[i] = bridges[i].next_node_cycle
                    ej_end[i] = net.ejected_flits_of(i)
                    bl_end[i] = net.backlog_of(i)
            all_done = True
            for i in sims:
                if not complete[i]:
                    stats = net.stats_by_copy[i]
                    if stats.measured_delivered >= stats.measured_created:
                        complete[i] = True
                    else:
                        all_done = False
            if all_done or cycle >= hard_end:
                break

    results = []
    for i, point in enumerate(points):
        stats = net.stats_by_copy[i]
        delays = stats.measured_delays_ns
        node_cycles_meas = max(1, nc_end[i] - nc_start[i])
        results.append(SimResult(
            config=config,
            seed=point.seed,
            offered_node_rate=point.traffic.mean_node_rate(),
            warmup_cycles=warmup,
            measure_cycles=measure,
            mean_latency_cycles=(stats.mean_latency_cycles()
                                 if delays else None),
            mean_delay_ns=stats.mean_delay_ns() if delays else None,
            p99_delay_ns=(float(np.percentile(delays, 99))
                          if delays else None),
            mean_hops=stats.mean_hops() if delays else None,
            measured_created=stats.measured_created,
            measured_delivered=stats.measured_delivered,
            complete=complete[i],
            accepted_node_rate=((ej_end[i] - ej_start[i])
                                / (node_cycles_meas * local_nodes)),
            measure_duration_ns=meas_end_ns[i] - meas_start_ns[i],
            measure_node_cycles=node_cycles_meas,
            backlog_delta_flits=bl_end[i] - bl_start[i],
            freq_trace=[(0.0, clocks[i].freq_hz)],
        ))
    return results
