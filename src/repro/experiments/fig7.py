"""Fig. 7 — Delay and power under four synthetic traffic patterns.

Tornado, bit-complement, transpose and neighbor traffic on the 5x5
baseline, each with its own saturation point, ``lambda_max`` and DMSD
target — eight panels total (delay row + power row).  The paper's
takeaway: the DMSD-over-RMSD delay win (2–2.5x at 0.2 fl/cy) exceeds
the RMSD-over-DMSD power win (1.2–1.4x) for every pattern.
"""

from __future__ import annotations

from ..noc.config import NocConfig, PAPER_BASELINE
from .common import Workbench, series_by_policy_name
from .render import FigureResult, Series

#: Panel order as in the paper.
FIG7_PATTERNS = ("tornado", "bitcomp", "transpose", "neighbor")

#: Rate at which the paper quotes per-pattern ratios.  Patterns that
#: saturate below that (e.g. transpose under DOR) are quoted at half
#: their own lambda_max instead, mirroring the paper's mid-range marks.
REFERENCE_RATE = 0.2


def figure7(bench: Workbench,
            config: NocConfig = PAPER_BASELINE,
            patterns: tuple[str, ...] = FIG7_PATTERNS
            ) -> list[FigureResult]:
    """Regenerate all Fig. 7 panels (delay + power per pattern)."""
    from ..traffic.patterns import as_pattern_ref

    figures = []
    for pattern in patterns:
        pattern = as_pattern_ref(pattern).label
        rates = bench.rate_grid(config, pattern)
        lam_max = bench.saturation(config, pattern).lambda_max
        ref_rate = min(REFERENCE_RATE, 0.5 * lam_max)
        sweeps = bench.policy_comparison(config, pattern, rates)
        ref = min(rates, key=lambda r: abs(r - ref_rate))

        named = series_by_policy_name(sweeps)
        delay_ann = {}
        if "rmsd" in named and "dmsd" in named:
            rmsd_d = named["rmsd"].point_at(ref).delay_ns
            dmsd_d = named["dmsd"].point_at(ref).delay_ns
            if rmsd_d is not None and dmsd_d:
                delay_ann["rmsd_over_dmsd_at_ref"] = rmsd_d / dmsd_d
        figures.append(FigureResult(
            figure_id=f"fig7-delay-{pattern}",
            title=f"Packet delay vs injection rate ({pattern})",
            x_label="rate (fl/cy)",
            y_label="packet delay (ns)",
            series=[Series(label, list(rates),
                           [pt.delay_ns for pt in swp.points])
                    for label, swp in sweeps.items()],
            annotations={"ref_rate": ref, **delay_ann},
        ))

        power_ann = {}
        if all(p in named for p in ("no-dvfs", "rmsd", "dmsd")):
            dmsd_p = named["dmsd"].point_at(ref).power_mw
            rmsd_p = named["rmsd"].point_at(ref).power_mw
            nod_p = named["no-dvfs"].point_at(ref).power_mw
            if dmsd_p and rmsd_p and nod_p:
                power_ann = {"dmsd_over_rmsd_at_ref": dmsd_p / rmsd_p,
                             "no_dvfs_over_dmsd_at_ref": nod_p / dmsd_p}
        figures.append(FigureResult(
            figure_id=f"fig7-power-{pattern}",
            title=f"NoC power vs injection rate ({pattern})",
            x_label="rate (fl/cy)",
            y_label="power (mW)",
            series=[Series(label, list(rates),
                           [pt.power_mw for pt in swp.points])
                    for label, swp in sweeps.items()],
            annotations={"ref_rate": ref, **power_ann},
        ))
    return figures
