"""Fig. 5 — Network clock frequency vs Vdd in 28-nm FDSOI.

The technology model's V–F curve sampled across the DVFS voltage
range, pinned to the paper's two published anchor points (333 MHz at
0.56 V, 1 GHz at 0.90 V).
"""

from __future__ import annotations

from ..power.technology import FDSOI_28NM, Technology
from .render import FigureResult, Series


def figure5(technology: Technology = FDSOI_28NM,
            points: int = 15) -> FigureResult:
    """Regenerate Fig. 5 from the fitted alpha-power model."""
    table = technology.vf_table(points)
    voltages = [v for v, _ in table]
    freqs_ghz = [f / 1e9 for _, f in table]
    return FigureResult(
        figure_id="fig5",
        title="Maximum clock frequency vs Vdd (28-nm FDSOI model)",
        x_label="Vdd (V)",
        y_label="frequency (GHz)",
        series=[Series("f_max", voltages, freqs_ghz)],
        annotations={
            "alpha": technology.alpha,
            "anchor_low_mhz": technology.frequency_at(0.56) / 1e6,
            "anchor_high_mhz": technology.frequency_at(0.90) / 1e6,
        },
        notes=["anchors from the paper text: 333 MHz @ 0.56 V, "
               "1 GHz @ 0.90 V"],
    )
