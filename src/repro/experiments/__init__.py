"""Experiment drivers: one module per paper figure.

Each ``figureN`` function regenerates the data behind the paper's
figure N and returns :class:`~repro.experiments.render.FigureResult`
objects that ``render_figure`` formats as the rows/series the paper
plots.  The :class:`Workbench` memoizes simulations so figures that
share runs in the paper share them here.
"""

from .common import (FULL, Profile, QUICK, Workbench, active_profile,
                     shared_workbench)
from .fig2 import figure2, rmsd_plateau_latencies
from .fig4 import figure4
from .fig5 import figure5
from .fig6 import figure6
from .fig7 import FIG7_PATTERNS, figure7
from .fig8 import figure8, figure8_case
from .fig10 import SPEED_GRID, app_config, figure10, figure10_app
from .headline import HeadlineReport, headline_report
from .render import (FigureResult, Series, ascii_chart, render_figure,
                     render_figures)


def __getattr__(name: str):
    if name == "POLICIES":
        # Deprecated alias; delegated so the warning fires on access,
        # not on package import.  Deliberately absent from __all__ so
        # a star import neither warns nor breaks under -W error.
        from . import common
        return common.POLICIES
    raise AttributeError(f"module {__name__!r} has no attribute "
                         f"{name!r}")


__all__ = [
    "FIG7_PATTERNS",
    "FULL",
    "FigureResult",
    "HeadlineReport",
    "Profile",
    "QUICK",
    "SPEED_GRID",
    "Series",
    "Workbench",
    "active_profile",
    "app_config",
    "ascii_chart",
    "figure10",
    "figure10_app",
    "figure2",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure8_case",
    "headline_report",
    "render_figure",
    "render_figures",
    "rmsd_plateau_latencies",
    "shared_workbench",
]
