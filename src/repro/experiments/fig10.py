"""Fig. 10 — Delay and power under multimedia traffic (H.264, VCE).

The application graphs of Fig. 9 drive the NoC through custom traffic
matrices; the x-axis is the application speed relative to the paper's
75 frames/second reference point.  RMSD still saves the most power
(paper: DMSD/RMSD ~ 1.4x) but at a delay penalty (paper: ~2x for
H.264 and ~2.1x for VCE at mid speeds).
"""

from __future__ import annotations

from ..analysis.saturation import find_saturation_rate
from ..analysis.sweep import StrategyResources, strategy_from_ref
from ..noc.budget import run_fixed_point
from ..noc.config import NocConfig
from ..traffic.apps import ApplicationGraph, h264_encoder, vce_encoder
from ..traffic.injection import MatrixTraffic
from .common import Workbench, series_by_policy_name
from .render import FigureResult, Series

#: Speed grid of the sweep (relative units, as the paper's x-axis).
SPEED_GRID = (0.2, 0.4, 0.6, 0.8, 1.0)

#: Speed at which ratios are quoted (mid range, like the paper's marks).
REFERENCE_SPEED = 0.6


def app_config(app: ApplicationGraph, base: NocConfig) -> NocConfig:
    """The paper's mesh for this application, other knobs from base."""
    return base.with_(width=app.mesh_width, height=app.mesh_height)


def _app_strategies(bench: Workbench, app: ApplicationGraph,
                    config: NocConfig):
    """Per-app lambda_max and DMSD target, derived like the paper.

    The app's spatial traffic distribution differs from any synthetic
    pattern, so saturation is found by scaling the app matrix itself:
    the sweep coordinate is the mean node rate of the scaled matrix.
    Strategies come from the policy registry with these app-derived
    resources, so plugin policies flow through the multimedia figure
    like any other sweep.
    """
    base_matrix = app.traffic_at_speed(config, 1.0)
    mean_at_speed1 = base_matrix.mean_node_rate()

    def traffic_at(mean_rate: float) -> MatrixTraffic:
        return MatrixTraffic(
            base_matrix.scaled(mean_rate / mean_at_speed1))

    est = find_saturation_rate(
        config, traffic_at, budget=bench.budget_for(config),
        seed=bench.seed,
        iterations=bench.profile.saturation_iterations,
        hi=min(1.0, 3.0 * mean_at_speed1), engine=bench.engine)
    lam_max = est.lambda_max
    result = run_fixed_point(config, traffic_at(lam_max),
                             config.f_max_hz,
                             bench.budget_for(config).scaled(1.5),
                             bench.seed, engine=bench.engine)
    target_ns = result.mean_delay_ns
    if target_ns is None:
        raise RuntimeError(f"no packets delivered deriving {app.name} "
                           "DMSD target")
    resources = StrategyResources(
        lambda_max=lambda: lam_max,
        target_delay_ns=lambda: target_ns,
        dmsd_iterations=bench.profile.dmsd_iterations)
    strategies = {ref.label: strategy_from_ref(ref, resources)
                  for ref in bench.policies}
    return strategies, lam_max, target_ns


def figure10_app(bench: Workbench, app: ApplicationGraph,
                 base: NocConfig,
                 speeds: tuple[float, ...] = SPEED_GRID
                 ) -> list[FigureResult]:
    """Delay + power panels for one application."""
    config = app_config(app, base)
    strategies, lam_max, target_ns = _app_strategies(bench, app, config)

    def traffic_factory(speed: float) -> MatrixTraffic:
        return MatrixTraffic(app.traffic_at_speed(config, speed))

    sweeps = {
        label: bench.custom_sweep(
            (app.name, label, config), config, traffic_factory, speeds,
            strategy)
        for label, strategy in strategies.items()
    }
    ref = min(speeds, key=lambda s: abs(s - REFERENCE_SPEED))

    annotations: dict[str, float] = {
        "ref_speed": ref,
        "lambda_max": lam_max,
        "dmsd_target_ns": target_ns,
    }
    named = series_by_policy_name(sweeps)
    if "rmsd" in named and "dmsd" in named:
        rmsd_d = named["rmsd"].point_at(ref).delay_ns
        dmsd_d = named["dmsd"].point_at(ref).delay_ns
        if rmsd_d and dmsd_d:
            annotations["rmsd_over_dmsd_delay"] = rmsd_d / dmsd_d
        dmsd_p = named["dmsd"].point_at(ref).power_mw
        rmsd_p = named["rmsd"].point_at(ref).power_mw
        if dmsd_p and rmsd_p:
            annotations["dmsd_over_rmsd_power"] = dmsd_p / rmsd_p

    delay_fig = FigureResult(
        figure_id=f"fig10-delay-{app.name}",
        title=f"Packet delay vs app speed ({app.name})",
        x_label="app speed",
        y_label="packet delay (ns)",
        series=[Series(label, list(speeds),
                       [pt.delay_ns for pt in swp.points])
                for label, swp in sweeps.items()],
        annotations=annotations,
    )
    power_fig = FigureResult(
        figure_id=f"fig10-power-{app.name}",
        title=f"NoC power vs app speed ({app.name})",
        x_label="app speed",
        y_label="power (mW)",
        series=[Series(label, list(speeds),
                       [pt.power_mw for pt in swp.points])
                for label, swp in sweeps.items()],
        annotations=annotations,
    )
    return [delay_fig, power_fig]


def figure10(bench: Workbench, base: NocConfig,
             speeds: tuple[float, ...] = SPEED_GRID) -> list[FigureResult]:
    """Regenerate all four Fig. 10 panels (H.264 + VCE)."""
    figures: list[FigureResult] = []
    for make_app in (h264_encoder, vce_encoder):
        figures.extend(figure10_app(bench, make_app(), base, speeds))
    return figures
