"""The abstract's headline claims, evaluated mechanically.

The paper's quantitative summary:

* RMSD consumes 20–50% less power than DMSD (equivalently DMSD burns
  1.2–1.5x RMSD's power, "30% more" at 0.2 fl/cy in Fig. 6);
* DMSD reduces delay substantially, up to ~3x;
* both DVFS policies save >= 2.2x power versus No-DVFS at 0.2 fl/cy.

``headline_report`` computes the same numbers from the baseline
uniform-traffic sweeps and formats them for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tradeoff import HeadlineClaims, headline_claims
from ..noc.config import NocConfig, PAPER_BASELINE
from .common import Workbench

#: The rate the paper quotes its reference numbers at.
REFERENCE_RATE = 0.2


@dataclass(frozen=True)
class HeadlineReport:
    """Measured headline values plus the paper's bands."""

    claims: HeadlineClaims

    # Paper bands (from the abstract and Sec. IV/V)
    PAPER_POWER_OVERHEAD_PCT = (20.0, 50.0)
    PAPER_MAX_DELAY_PENALTY = 3.0
    PAPER_DVFS_SAVING_AT_REF = 2.2

    def render(self) -> str:
        lo, hi = self.claims.power_overhead_range_pct
        lines = [
            "Headline claims (paper band vs measured):",
            f"  DMSD power overhead over RMSD: paper 20-50%  "
            f"measured {lo:.0f}%..{hi:.0f}%",
            f"  RMSD delay penalty over DMSD (max): paper up to 3.0x  "
            f"measured {self.claims.max_delay_penalty:.2f}x",
            f"  No-DVFS power over DMSD at {self.claims.reference_x:.2f} "
            f"fl/cy: paper 2.2x  measured "
            f"{self.claims.nodvfs_over_dmsd_power_at_ref:.2f}x",
        ]
        return "\n".join(lines)


def headline_report(bench: Workbench,
                    config: NocConfig = PAPER_BASELINE,
                    pattern: str = "uniform") -> HeadlineReport:
    """Evaluate the abstract's claims on the baseline scenario.

    The claims are definitionally about the paper's three policies, so
    the comparison is pinned to that triple regardless of any extra
    policies the workbench would sweep by default.
    """
    rates = bench.rate_grid(config, pattern)
    series = bench.policy_comparison(config, pattern, rates,
                                     policies=("no-dvfs", "rmsd",
                                               "dmsd"))
    lam_max = bench.saturation(config, pattern).lambda_max
    # Claims hold over the DVFS-active region; skip near-saturation
    # points where measurements are dominated by queueing noise.
    usable = [r for r in rates if r <= lam_max + 1e-9]
    ref = min(usable, key=lambda r: abs(r - REFERENCE_RATE))
    claims = headline_claims(series, usable, reference_x=ref)
    return HeadlineReport(claims=claims)
