"""Fig. 8 — Sensitivity analysis under uniform traffic.

Re-runs the three-policy comparison while varying virtual channels,
buffers per VC, packet size and mesh size (paper Sec. V).  Every case
gets its own saturation estimate, ``lambda_max`` and DMSD target, as
the per-panel markers of the paper's figure imply.  The claim checked:
the trade-off tips in favour of DMSD under *every* variation.
"""

from __future__ import annotations

from ..analysis.sensitivity import SensitivityCase, sensitivity_cases
from ..noc.config import NocConfig, PAPER_BASELINE
from .common import Workbench, series_by_policy_name
from .render import FigureResult, Series

#: Fraction of each case's lambda_max at which ratios are quoted.
REFERENCE_FRACTION = 0.5


def _case_rates(bench: Workbench, case: SensitivityCase,
                points: int) -> tuple[float, ...]:
    lam_max = bench.saturation(case.config, "uniform").lambda_max
    return tuple(round(lam_max * (i + 1) / points, 4)
                 for i in range(points))


def figure8_case(bench: Workbench, case: SensitivityCase,
                 points: int = 3) -> tuple[FigureResult, FigureResult]:
    """Delay + power panels for one varied configuration."""
    rates = _case_rates(bench, case, points)
    sweeps = bench.policy_comparison(case.config, "uniform", rates)
    ref = rates[max(0, int(len(rates) * REFERENCE_FRACTION) - 1)]

    named = series_by_policy_name(sweeps)
    annotations: dict[str, float] = {"ref_rate": ref}
    if "rmsd" in named and "dmsd" in named:
        rmsd_d = named["rmsd"].point_at(ref).delay_ns
        dmsd_d = named["dmsd"].point_at(ref).delay_ns
        dmsd_p = named["dmsd"].point_at(ref).power_mw
        rmsd_p = named["rmsd"].point_at(ref).power_mw
        if rmsd_d and dmsd_d:
            annotations["rmsd_over_dmsd_delay"] = rmsd_d / dmsd_d
        if dmsd_p and rmsd_p:
            annotations["dmsd_over_rmsd_power"] = dmsd_p / rmsd_p

    delay_fig = FigureResult(
        figure_id=f"fig8-delay-{case.parameter}-{case.label}",
        title=f"Delay, {case.parameter} = {case.label}",
        x_label="rate (fl/cy)",
        y_label="packet delay (ns)",
        series=[Series(label, list(rates),
                       [pt.delay_ns for pt in swp.points])
                for label, swp in sweeps.items()],
        annotations=annotations,
    )
    power_fig = FigureResult(
        figure_id=f"fig8-power-{case.parameter}-{case.label}",
        title=f"Power, {case.parameter} = {case.label}",
        x_label="rate (fl/cy)",
        y_label="power (mW)",
        series=[Series(label, list(rates),
                       [pt.power_mw for pt in swp.points])
                for label, swp in sweeps.items()],
        annotations=annotations,
    )
    return delay_fig, power_fig


def figure8(bench: Workbench,
            base: NocConfig = PAPER_BASELINE,
            parameters: tuple[str, ...] | None = None,
            points: int = 3) -> list[FigureResult]:
    """Regenerate Fig. 8 panels for the selected parameter families."""
    cases = sensitivity_cases(base)
    if parameters is None:
        parameters = tuple(cases)
    figures: list[FigureResult] = []
    for parameter in parameters:
        if parameter not in cases:
            known = ", ".join(cases)
            raise ValueError(f"unknown sensitivity parameter "
                             f"{parameter!r}; known: {known}")
        for case in cases[parameter]:
            delay_fig, power_fig = figure8_case(bench, case, points)
            figures.extend([delay_fig, power_fig])
    return figures
