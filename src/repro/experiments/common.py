"""Shared experiment infrastructure.

Every paper figure is a combination of the same ingredients: find the
saturation rate of a scenario, derive ``lambda_max`` (RMSD) and the
DMSD target delay from it, then sweep the three policies.  The
``Workbench`` wires those steps together and memoizes every expensive
result, so e.g. Fig. 2, Fig. 4 and Fig. 6 — which the paper derives
from the *same* simulations — share one set of runs here too.

Benchmarks can select an effort profile via the environment variable
``REPRO_BENCH_PROFILE`` (``quick`` — default — or ``full``).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Callable, Sequence

from ..analysis.saturation import SaturationEstimate, find_saturation_rate
from ..analysis.sweep import (FAST, SimBudget, StrategyResources,
                              SweepSeries, run_fixed_point, run_sweep,
                              strategy_from_ref)
from ..core.registry import (POLICY_REGISTRY, Ref, as_policy_ref,
                             default_policies)
from ..noc.config import NocConfig
from ..noc.engines import DEFAULT_ENGINE
from ..power.model import PowerModel
from ..runner import (ExecutionContext, SweepRunner, UnitCache,
                      context_from_env)
from ..scenario import ScenarioSpec, run_scenario_sweep
from ..traffic.injection import PatternTraffic, TrafficSpec
from ..traffic.patterns import as_pattern_ref, make_pattern


def __getattr__(name: str):
    if name == "POLICIES":
        # The old hardwired triple, now a deprecated alias for the
        # policy registry's default sweep ordering (identical as long
        # as no plugin policies are registered).
        warnings.warn(
            "repro.experiments.common.POLICIES is deprecated; use "
            "repro.core.registry.default_policies() (the registry's "
            "default sweep ordering) instead",
            DeprecationWarning, stacklevel=2)
        return default_policies()
    raise AttributeError(f"module {__name__!r} has no attribute "
                         f"{name!r}")


def series_by_policy_name(sweeps: dict[str, SweepSeries]
                          ) -> dict[str, SweepSeries]:
    """Re-key a ``policy_comparison`` result by policy *name*.

    Comparison dicts are keyed by ref label (``"dmsd:iterations=8"``)
    for display; annotation code that asks "is DMSD in this sweep?"
    must match on the name so a parameterized spelling of a paper
    policy keeps its paper-ratio annotations.  When one policy appears
    with several parameterizations, the first (policy-order) one wins.
    """
    named: dict[str, SweepSeries] = {}
    for label, series in sweeps.items():
        named.setdefault(label.partition(":")[0], series)
    return named


@dataclass(frozen=True)
class Profile:
    """Effort profile for experiment drivers."""

    name: str
    budget: SimBudget
    sweep_points: int
    dmsd_iterations: int
    saturation_iterations: int


QUICK = Profile("quick", FAST, sweep_points=6, dmsd_iterations=5,
                saturation_iterations=5)
FULL = Profile("full", SimBudget(2500, 5000, 15000), sweep_points=9,
               dmsd_iterations=6, saturation_iterations=7)


def active_profile() -> Profile:
    """Profile selected by ``REPRO_BENCH_PROFILE`` (default quick)."""
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick").lower()
    if name == "full":
        return FULL
    if name == "quick":
        return QUICK
    raise ValueError(f"unknown REPRO_BENCH_PROFILE {name!r} "
                     "(expected 'quick' or 'full')")


class Workbench:
    """Memoizing driver for policy-comparison experiments.

    Simulations are submitted as work units through one shared
    :class:`~repro.runner.ExecutionContext`: its backend decides
    whether sweep points run serially, on a process pool (``jobs``
    workers), or batched through the fast engine's
    :func:`~repro.noc.fastsim.run_fixed_batch`; its unit cache
    deduplicates simulations across figures on top of the workbench's
    own series-level memos.  Results are independent of the backend
    and worker count — see :mod:`repro.runner`.

    The context's ``engine`` selects the simulation backend
    (``"reference"`` or ``"fast"``) for every simulation the workbench
    runs — saturation searches, DMSD targets and sweep units alike.
    The engine is part of each unit's spec, so unit-cache entries
    never cross engines.

    ``policies`` selects which registered policies the comparison
    methods sweep (any mix of names, ``"name:key=value"`` strings and
    :class:`~repro.core.registry.Ref`s); the default is the policy
    registry's default ordering — the paper's three, plus any plugin
    policies registered with a sweep strategy at construction time.

    ``Workbench(jobs=, unit_cache=, engine=, runner=)`` are the
    pre-context spellings; they keep working (mapped onto an
    equivalent context) but emit a ``DeprecationWarning``.
    """

    def __init__(self, profile: Profile | None = None, seed: int = 3,
                 jobs: int | None = None, unit_cache: bool | None = None,
                 runner: SweepRunner | None = None,
                 engine: str | None = None,
                 context: ExecutionContext | None = None,
                 policies: Sequence[Ref | str] | None = None) -> None:
        self.profile = profile or active_profile()
        self.seed = seed
        if policies is None:
            policies = default_policies()
        # Workbench policies always end up in sweeps, so validate
        # against the strategy factories (not just the names): a
        # sweep-incapable policy or a controller-only parameter fails
        # here, not mid-figure.
        self.policies = tuple(POLICY_REGISTRY.validate_sweep_ref(p)
                              for p in policies)
        legacy = [kw for kw, value in (("jobs", jobs),
                                       ("unit_cache", unit_cache),
                                       ("runner", runner),
                                       ("engine", engine))
                  if value is not None]
        if legacy:
            if context is not None:
                raise TypeError(
                    f"pass either context= or the deprecated "
                    f"{'/'.join(legacy)} keyword(s), not both")
            warnings.warn(
                f"Workbench({', '.join(k + '=' for k in legacy)}...) is "
                f"deprecated; build an ExecutionContext once and pass "
                f"context=... instead",
                DeprecationWarning, stacklevel=2)
        if context is None:
            if runner is not None:
                context = runner.context
            else:
                context = ExecutionContext(
                    backend="auto", jobs=jobs if jobs is not None else 1,
                    cache=(UnitCache() if unit_cache is None or unit_cache
                           else None),
                    engine=engine if engine is not None else DEFAULT_ENGINE)
        self.context = context
        self.runner = runner if runner is not None else context.runner
        self._saturation: dict = {}
        self._target: dict = {}
        self._sweeps: dict = {}
        self._power_models: dict[NocConfig, PowerModel] = {}

    @property
    def engine(self) -> str:
        """Simulation engine every workbench simulation runs on."""
        return self.context.engine

    # --- building blocks -------------------------------------------------
    def budget_for(self, config: NocConfig) -> SimBudget:
        """Cycle budget, normalized to the baseline's 25 nodes.

        Measurement precision scales with observed packets, which scale
        with nodes x cycles, so larger meshes reach the same precision
        in proportionally fewer cycles.  Budgets never grow above the
        profile's (small meshes just take longer to average).
        """
        scale = min(1.0, 25.0 / config.num_nodes)
        return (self.profile.budget if scale >= 1.0
                else self.profile.budget.scaled(scale))

    def power_model(self, config: NocConfig) -> PowerModel:
        if config not in self._power_models:
            self._power_models[config] = PowerModel(config)
        return self._power_models[config]

    def pattern_factory(self, config: NocConfig,
                        pattern: Ref | str) -> Callable[[float],
                                                        TrafficSpec]:
        ref = as_pattern_ref(pattern)
        pat = make_pattern(ref, config.make_mesh())
        return lambda rate: PatternTraffic(pat, rate)

    def scenario(self, config: NocConfig, pattern: Ref | str,
                 policy: Ref | str) -> ScenarioSpec:
        """The declarative spec for one (config, pattern, policy)."""
        return ScenarioSpec(as_policy_ref(policy),
                            as_pattern_ref(pattern), config)

    def saturation(self, config: NocConfig,
                   pattern: Ref | str) -> SaturationEstimate:
        """Saturation rate and ``lambda_max`` for a scenario (cached)."""
        key = (config, as_pattern_ref(pattern))
        if key not in self._saturation:
            self._saturation[key] = find_saturation_rate(
                config, self.pattern_factory(config, pattern),
                budget=self.budget_for(config), seed=self.seed,
                iterations=self.profile.saturation_iterations,
                engine=self.engine)
        return self._saturation[key]

    def dmsd_target_ns(self, config: NocConfig,
                       pattern: Ref | str) -> float:
        """The paper's DMSD target: RMSD delay at ``lambda_max``.

        At ``lambda_node = lambda_max`` RMSD runs at ``Fmax``, so the
        target is the full-speed delay at that rate (150 ns for the
        paper's baseline).
        """
        key = (config, as_pattern_ref(pattern))
        if key not in self._target:
            lam_max = self.saturation(config, pattern).lambda_max
            traffic = self.pattern_factory(config, pattern)(lam_max)
            result = run_fixed_point(config, traffic, config.f_max_hz,
                                     self.budget_for(config).scaled(1.5),
                                     self.seed, engine=self.engine)
            if result.mean_delay_ns is None:
                raise RuntimeError(
                    "no packets delivered while deriving the DMSD target")
            self._target[key] = result.mean_delay_ns
        return self._target[key]

    # --- sweeps -----------------------------------------------------------
    def resources_for(self, config: NocConfig,
                      pattern: Ref | str) -> StrategyResources:
        """Lazy scenario-derived inputs for strategy factories.

        The thunks close over the workbench memos, so a saturation
        search or DMSD target derivation runs at most once per
        (config, pattern) no matter how many strategies need it.
        """
        return StrategyResources(
            lambda_max=lambda: self.saturation(config,
                                               pattern).lambda_max,
            target_delay_ns=lambda: self.dmsd_target_ns(config, pattern),
            dmsd_iterations=self.profile.dmsd_iterations)

    def strategy_for(self, policy: Ref | str, config: NocConfig,
                     pattern: Ref | str):
        """Instantiate a steady-state strategy via the policy registry.

        Any registered policy resolves — the paper's three or a
        plugin's; unknown names raise ``ValueError`` listing the
        registry contents.
        """
        return strategy_from_ref(policy,
                                 self.resources_for(config, pattern))

    def _sweep_key(self, config: NocConfig, pattern: Ref | str,
                   policy: Ref | str, rates: tuple[float, ...]) -> tuple:
        return (config, as_pattern_ref(pattern), as_policy_ref(policy),
                rates)

    def pattern_sweep(self, config: NocConfig, pattern: Ref | str,
                      policy: Ref | str,
                      rates: tuple[float, ...]) -> SweepSeries:
        """One policy's sweep over injection rates (cached)."""
        key = self._sweep_key(config, pattern, policy, rates)
        if key not in self._sweeps:
            self._sweeps[key] = run_sweep(
                config, self.pattern_factory(config, pattern), list(rates),
                self.strategy_for(policy, config, pattern),
                budget=self.budget_for(config), seed=self.seed,
                power_model=self.power_model(config),
                context=self.context,
                scenario=self.scenario(config, pattern, policy))
        return self._sweeps[key]

    def scenario_sweep(self, spec: ScenarioSpec,
                       rates: tuple[float, ...] | None = None
                       ) -> SweepSeries:
        """Sweep one :class:`ScenarioSpec` (rates default to its grid).

        Workload-bearing scenarios are memoized under the full spec —
        the (config, pattern, policy) key of :meth:`pattern_sweep`
        would alias a workload sweep with its plain-traffic sibling.
        """
        if rates is None:
            rates = self.rate_grid(spec.config, spec.pattern)
        rates = tuple(rates)
        if spec.workload is None:
            return self.pattern_sweep(spec.config, spec.pattern,
                                      spec.policy, rates)
        key = self.scenario_sweep_key(spec, rates)
        if key not in self._sweeps:
            self._sweeps[key] = run_scenario_sweep(
                spec, list(rates), budget=self.budget_for(spec.config),
                seed=self.seed,
                power_model=self.power_model(spec.config),
                context=self.context,
                resources=self.resources_for(spec.config, spec.pattern))
        return self._sweeps[key]

    def scenario_matrix(self, scenarios: Sequence[ScenarioSpec],
                        rates: tuple[float, ...]):
        """Run a scenario cross product as ONE planned submission.

        Every sweep unit of every scenario goes to the runner in a
        single :meth:`~repro.runner.SweepRunner.run` call: the planner
        deduplicates units shared between cells (and duplicate rate
        points), the backend sees the whole matrix at once, and the
        returned :class:`~repro.experiments.matrix.MatrixResult`
        carries the run report whose ``executed`` count proves each
        distinct unit ran exactly once.  Per-cell series are then
        assembled entirely from the unit cache.

        Strategy resources (saturation searches, DMSD targets) are
        derived per (config, pattern) from the *plain* pattern traffic
        — the workload dimension normalizes to the same mean rate, so
        cells sharing a pattern share one saturation search.
        """
        from .matrix import MatrixResult
        scenarios = tuple(scenarios)
        rates = tuple(rates)
        report = None
        if self.context.cache is not None:
            units = []
            for spec in scenarios:
                if self.scenario_sweep_key(spec, rates) in self._sweeps:
                    continue
                units.extend(spec.units(
                    rates, self.budget_for(spec.config), self.seed,
                    self.engine,
                    resources=self.resources_for(spec.config,
                                                 spec.pattern)))
            if units:
                self.runner.run(units)
                report = self.runner.last_report
        series = {spec.label: self.scenario_sweep(spec, rates)
                  for spec in scenarios}
        return MatrixResult(scenarios=scenarios, rates=rates,
                            series=series, report=report)

    def scenario_sweep_key(self, spec: ScenarioSpec,
                           rates: tuple[float, ...]) -> tuple:
        """The memo key :meth:`scenario_sweep` files ``spec`` under."""
        if spec.workload is None:
            return self._sweep_key(spec.config, spec.pattern,
                                   spec.policy, tuple(rates))
        return ("scenario", spec, tuple(rates))

    def policy_refs(self, policies: Sequence[Ref | str] | None = None
                    ) -> tuple[Ref, ...]:
        """The policy set a comparison sweeps, as validated refs."""
        if policies is None:
            return self.policies
        return tuple(POLICY_REGISTRY.validate_sweep_ref(p)
                     for p in policies)

    def policy_comparison(self, config: NocConfig, pattern: Ref | str,
                          rates: tuple[float, ...],
                          policies: Sequence[Ref | str] | None = None
                          ) -> dict[str, SweepSeries]:
        """The selected policies swept over the same rates.

        Returns ``{ref.label: series}`` in policy order (for the
        default registry ordering the keys are exactly the old
        ``"no-dvfs"/"rmsd"/"dmsd"`` strings).  With a parallel,
        batched or distributed backend every policy's pending points
        are submitted as *one* batch, so the worker pool (or the
        batched engine, or the work queue — whose backend spawns its
        worker fleet once per submission) sees ``len(policies) x
        len(rates)`` independent units instead of separate sweeps —
        per-sweep results are then served from the unit cache.
        """
        refs = self.policy_refs(policies)
        wide = (self.context.jobs > 1
                or self.context.resolved_backend() in ("batched",
                                                       "distributed"))
        if wide and self.context.cache is not None:
            units = []
            for ref in refs:
                if self._sweep_key(config, pattern, ref,
                                   rates) in self._sweeps:
                    continue
                units.extend(self.scenario(config, pattern, ref).units(
                    rates, self.budget_for(config), self.seed,
                    self.engine,
                    resources=self.resources_for(config, pattern)))
            if units:
                self.runner.run(units)
        return {ref.label: self.pattern_sweep(config, pattern, ref,
                                              rates)
                for ref in refs}

    def custom_sweep(self, key: tuple, config: NocConfig,
                     traffic_factory: Callable[[float], TrafficSpec],
                     xs: tuple[float, ...], strategy) -> SweepSeries:
        """Cached sweep for non-pattern traffic (apps); caller keys it."""
        cache_key = ("custom", key, xs)
        if cache_key not in self._sweeps:
            self._sweeps[cache_key] = run_sweep(
                config, traffic_factory, list(xs), strategy,
                budget=self.budget_for(config), seed=self.seed,
                power_model=self.power_model(config),
                context=self.context)
        return self._sweeps[cache_key]

    # --- standard rate grids -----------------------------------------------
    def rate_grid(self, config: NocConfig, pattern: str,
                  include_rmsd_peak: bool = True) -> tuple[float, ...]:
        """Sweep grid from low load up to just under saturation.

        Includes the RMSD clip boundary ``lambda_min`` where the
        non-monotonic delay peaks (Fig. 2(b)), so the anomaly is always
        sampled.
        """
        est = self.saturation(config, pattern)
        lam_max = est.lambda_max
        n = self.profile.sweep_points
        grid = [lam_max * (i + 1) / n for i in range(n)]
        if include_rmsd_peak:
            lam_min = lam_max * config.f_min_hz / config.f_max_hz
            grid.append(lam_min)
        # Round for stable cache keys, but never past lambda_max.
        return tuple(sorted({min(round(g, 4), round(lam_max, 6))
                             for g in grid}))


#: Module-level workbench shared by benchmarks within one process.
_SHARED: Workbench | None = None


def shared_workbench() -> Workbench:
    """Process-wide workbench (benchmarks reuse each other's runs).

    The execution context comes from the environment:
    ``REPRO_BACKEND`` (execution backend, default ``auto``),
    ``REPRO_JOBS`` (worker count, default 1) and ``REPRO_ENGINE``
    (simulation engine, default reference).  Results do not depend on
    any of them except the engine's documented tolerances.
    """
    global _SHARED
    if _SHARED is None:
        _SHARED = Workbench(context=context_from_env())
    return _SHARED
