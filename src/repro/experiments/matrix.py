"""Scenario-matrix runner: a cross product as ONE planned submission.

``python -m repro.experiments matrix --policy rmsd,dmsd --pattern
uniform,transpose --workload none,mmoo --rates 0.05,0.1`` expands the
cross product of policies x patterns x workloads into
:class:`~repro.scenario.ScenarioSpec`s, submits *every* sweep unit in
a single :meth:`~repro.runner.SweepRunner.run` call — so the planner
deduplicates shared units across cells and the backend (pool, batched
kernel or distributed queue) sees the whole matrix at once — and
renders a summary table plus an optional JSON artifact.

The executed-unit count in the report is the planner's proof of
dedupe: submitting the same scenario twice (or overlapping rate
grids) executes each distinct unit exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.sweep import SweepSeries
from ..runner.executor import RunReport
from ..scenario import ScenarioSpec

__all__ = ["MatrixResult", "render_matrix"]


@dataclass
class MatrixResult:
    """The outcome of one scenario-matrix run."""

    scenarios: tuple[ScenarioSpec, ...]
    rates: tuple[float, ...]
    series: dict[str, SweepSeries]
    report: RunReport | None

    def render(self) -> str:
        """The human-readable summary table."""
        return render_matrix(self)

    def to_payload(self) -> dict:
        """JSON-ready artifact: scenarios, per-cell delays, report."""
        cells = []
        for spec in self.scenarios:
            series = self.series[spec.label]
            cells.append({
                "scenario": spec.to_payload(),
                "label": spec.label,
                "digest": spec.digest(),
                "points": [{
                    "rate": p.x,
                    "freq_hz": p.freq_hz,
                    "mean_delay_ns": p.delay_ns,
                    "accepted_rate": p.accepted_rate,
                    "saturated": p.saturated,
                } for p in series.points],
            })
        payload = {"rates": list(self.rates), "cells": cells}
        if self.report is not None:
            payload["report"] = {
                "total_units": self.report.total_units,
                "executed": self.report.executed,
                "cache_hits": self.report.cache_hits,
                "backend": self.report.backend,
            }
        return payload


def _cell_text(point) -> str:
    if point.saturated:
        return "sat"
    if point.delay_ns is None:
        return "-"
    return f"{point.delay_ns:.1f}"


def render_matrix(result: MatrixResult) -> str:
    """Fixed-width table: one row per scenario, one column per rate."""
    headers = ["scenario"] + [f"{r:g}" for r in result.rates]
    rows = [headers]
    for spec in result.scenarios:
        series = result.series[spec.label]
        by_x = {p.x: p for p in series.points}
        rows.append([spec.label]
                    + [_cell_text(by_x[r]) if r in by_x else "-"
                       for r in result.rates])
    widths = [max(len(row[i]) for row in rows)
              for i in range(len(headers))]
    lines = []
    for n, row in enumerate(rows):
        lines.append("  ".join(
            cell.ljust(w) if i == 0 else cell.rjust(w)
            for i, (cell, w) in enumerate(zip(row, widths))))
        if n == 0:
            lines.append("  ".join("-" * w for w in widths))
    lines.append("")
    lines.append("(cells: steady-state mean packet delay in ns; "
                 "'sat' = saturated)")
    if result.report is not None:
        r = result.report
        lines.append(f"[matrix: {r.total_units} units, "
                     f"{r.executed} executed, {r.cache_hits} cached, "
                     f"backend={r.backend}]")
    return "\n".join(lines)
