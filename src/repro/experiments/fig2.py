"""Fig. 2 — RMSD vs No-DVFS: latency (a) and delay (b), uniform 5x5.

Reproduces both panels of paper Fig. 2: under RMSD, the latency in
*network clock cycles* flattens to a plateau inside
``[lambda_min, lambda_max]`` (panel a) while the delay in *nanoseconds*
becomes non-monotonic with a peak around ``lambda_min`` roughly 9x the
No-DVFS delay (panel b).
"""

from __future__ import annotations

from ..core.rmsd import lambda_min_for
from ..noc.config import NocConfig, PAPER_BASELINE
from .common import Workbench
from .render import FigureResult, Series


def figure2(bench: Workbench,
            config: NocConfig = PAPER_BASELINE,
            pattern: str = "uniform") -> list[FigureResult]:
    """Regenerate Fig. 2(a) and Fig. 2(b)."""
    est = bench.saturation(config, pattern)
    lam_max = est.lambda_max
    lam_min = lambda_min_for(config, lam_max)
    rates = bench.rate_grid(config, pattern)

    no_dvfs = bench.pattern_sweep(config, pattern, "no-dvfs", rates)
    rmsd = bench.pattern_sweep(config, pattern, "rmsd", rates)

    latency_fig = FigureResult(
        figure_id="fig2a",
        title="NoC latency vs injection rate (No-DVFS vs RMSD)",
        x_label="rate (fl/cy)",
        y_label="packet latency (network clock cycles)",
        series=[
            Series("no-dvfs", list(rates),
                   [p.latency_cycles for p in no_dvfs.points]),
            Series("rmsd", list(rates),
                   [p.latency_cycles for p in rmsd.points]),
        ],
        annotations={"lambda_min": lam_min, "lambda_max": lam_max},
        notes=[f"saturation rate {est.saturation_rate:.3f} fl/cy "
               f"(paper: 0.42); lambda_max set 10% below"],
    )

    rmsd_delays = [p.delay_ns for p in rmsd.points]
    base_delays = [p.delay_ns for p in no_dvfs.points]
    peak_ratio = _peak_ratio(rmsd_delays, base_delays)
    delay_fig = FigureResult(
        figure_id="fig2b",
        title="NoC delay vs injection rate (No-DVFS vs RMSD)",
        x_label="rate (fl/cy)",
        y_label="packet delay (ns)",
        series=[
            Series("no-dvfs", list(rates), base_delays),
            Series("rmsd", list(rates), rmsd_delays),
        ],
        annotations={"lambda_min": lam_min, "lambda_max": lam_max,
                     "rmsd_peak_over_no_dvfs": peak_ratio},
        notes=["paper reports a non-monotonic RMSD delay with a peak "
               "about 9x the No-DVFS delay"],
    )
    return [latency_fig, delay_fig]


def _peak_ratio(rmsd_delays: list[float | None],
                base_delays: list[float | None]) -> float:
    """Largest per-rate RMSD/No-DVFS delay ratio (the '9x' annotation)."""
    ratios = [r / b for r, b in zip(rmsd_delays, base_delays)
              if r is not None and b is not None and b > 0]
    if not ratios:
        raise ValueError("no comparable delay points")
    return max(ratios)


def rmsd_plateau_latencies(fig2a: FigureResult, lam_min: float,
                           lam_max: float) -> list[float]:
    """Latencies of RMSD points inside the plateau region (for tests)."""
    series = fig2a.series_named("rmsd")
    return [y for x, y in zip(series.xs, series.ys)
            if y is not None and lam_min - 1e-9 <= x <= lam_max + 1e-9]
