"""Fig. 6 — Total NoC power vs injection rate, all three policies.

Reuses the Fig. 2/4 sweeps (same simulations, as in the paper) and
reports the power model's totals, including the two annotated ratios:
No-DVFS over DMSD (paper: 2.2x at 0.2 fl/cy) and DMSD over RMSD
(paper: 1.3x / "30% more power").
"""

from __future__ import annotations

from ..noc.config import NocConfig, PAPER_BASELINE
from .common import Workbench, series_by_policy_name
from .render import FigureResult, Series

#: Rate at which the paper quotes its Fig. 6 ratios.
REFERENCE_RATE = 0.2


def figure6(bench: Workbench,
            config: NocConfig = PAPER_BASELINE,
            pattern: str = "uniform") -> FigureResult:
    """Regenerate Fig. 6 (over the workbench's policy set)."""
    rates = bench.rate_grid(config, pattern)
    sweeps = bench.policy_comparison(config, pattern, rates)

    series = [Series(label, list(rates),
                     [p.power_mw for p in swp.points])
              for label, swp in sweeps.items()]

    ref = min(rates, key=lambda r: abs(r - REFERENCE_RATE))
    powers = {name: swp.point_at(ref).power_mw
              for name, swp in series_by_policy_name(sweeps).items()}
    annotations = {}
    # The paper's annotated ratios, when the policies they compare are
    # part of the sweep and measurable at the reference rate.
    if all(p in powers and powers[p] is not None and powers[p] > 0
           for p in ("no-dvfs", "rmsd", "dmsd")):
        annotations = {
            "ref_rate": ref,
            "no_dvfs_over_dmsd": powers["no-dvfs"] / powers["dmsd"],
            "dmsd_over_rmsd": powers["dmsd"] / powers["rmsd"],
        }
    return FigureResult(
        figure_id="fig6",
        title="Total NoC power vs injection rate",
        x_label="rate (fl/cy)",
        y_label="power (mW)",
        series=series,
        annotations=annotations,
        notes=["paper annotations at 0.2 fl/cy: 2.2x (No-DVFS/DMSD) "
               "and 1.3x (DMSD/RMSD)"],
    )
