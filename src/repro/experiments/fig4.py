"""Fig. 4 — DMSD vs RMSD vs No-DVFS: frequency (a) and delay (b).

Panel (a): the network clock frequency each policy selects across the
rate sweep (RMSD is always at or below DMSD).  Panel (b): the delay in
ns — the PI-tracked DMSD delay hugs the target across the whole range
while RMSD exceeds it by up to ~1.9x at mid loads.
"""

from __future__ import annotations

from ..noc.config import NocConfig, PAPER_BASELINE
from .common import Workbench, series_by_policy_name
from .render import FigureResult, Series


def figure4(bench: Workbench,
            config: NocConfig = PAPER_BASELINE,
            pattern: str = "uniform") -> list[FigureResult]:
    """Regenerate Fig. 4(a) and Fig. 4(b).

    Sweeps the workbench's policy set (registry default: the paper's
    three; plugin policies ride along); the paper's annotated ratios
    are computed whenever the policies they compare are in the set.
    """
    rates = bench.rate_grid(config, pattern)
    sweeps = bench.policy_comparison(config, pattern, rates)

    named = series_by_policy_name(sweeps)
    freq_ann = {"f_min_rel": config.f_min_hz / config.f_max_hz}
    delay_ann = {}
    if "dmsd" in named:
        target_ns = bench.dmsd_target_ns(config, pattern)
        freq_ann["dmsd_target_ns"] = target_ns
        delay_ann["dmsd_target_ns"] = target_ns
    if "rmsd" in named and "dmsd" in named:
        delay_ann["max_rmsd_over_dmsd"] = _max_ratio(
            named["rmsd"].points, named["dmsd"].points)

    freq_fig = FigureResult(
        figure_id="fig4a",
        title="Network clock frequency vs injection rate",
        x_label="rate (fl/cy)",
        y_label="frequency (relative to Fmax)",
        series=[Series(label, list(rates),
                       [p.freq_rel for p in series.points])
                for label, series in sweeps.items()],
        annotations=freq_ann,
    )

    delay_fig = FigureResult(
        figure_id="fig4b",
        title="Packet delay vs injection rate (all policies)",
        x_label="rate (fl/cy)",
        y_label="packet delay (ns)",
        series=[Series(label, list(rates),
                       [p.delay_ns for p in series.points])
                for label, series in sweeps.items()],
        annotations=delay_ann,
        notes=["paper annotates the RMSD/DMSD delay gap as 1.9x"],
    )
    return [freq_fig, delay_fig]


def _max_ratio(rmsd_points, dmsd_points) -> float:
    ratios = []
    for r, d in zip(rmsd_points, dmsd_points):
        if (r.delay_ns is not None and d.delay_ns is not None
                and d.delay_ns > 0):
            ratios.append(r.delay_ns / d.delay_ns)
    if not ratios:
        raise ValueError("no comparable delay points")
    return max(ratios)
