"""Command-line figure regeneration.

Usage::

    python -m repro.experiments fig5
    python -m repro.experiments fig2 fig4 fig6
    python -m repro.experiments --profile full --jobs 8 fig7
    python -m repro.experiments --tiny --jobs 2 fig2   # CI smoke run
    python -m repro.experiments all

Prints each regenerated figure as a text table.  Figures sharing
simulations (2/4/6) share one memoized workbench, so requesting them
together costs little more than the most expensive one.

``--jobs N`` evaluates sweep points on ``N`` worker processes through
the parallel sweep runner; results are bit-identical to ``--jobs 1``
because every work unit derives its own seed from the run seed and the
unit spec (see :mod:`repro.runner`).  ``--no-cache`` disables the
runner's per-unit result cache (the workbench still memoizes whole
sweeps, but nothing is reused across different sweep grids).
``--tiny`` swaps in a small 3x3 configuration — not the
paper's numbers, just a fast end-to-end smoke of the whole pipeline.
``--engine fast`` runs every simulation on the vectorized array engine
(see README "Simulation engines"); results agree with the reference
engine within the tolerances enforced by the equivalence test suite.
``--backend`` selects the execution backend (README "Execution
backends"): the default ``auto`` batches whole sweeps through the fast
engine's ``run_fixed_batch`` whenever ``--engine fast`` is active —
bit-identical to per-unit execution, several times faster.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..noc.config import NocConfig, PAPER_BASELINE
from ..noc.engines import DEFAULT_ENGINE, engine_names
from ..runner import (ExecutionContext, UnitCache, backend_names,
                      default_jobs, print_progress)
from .common import FULL, QUICK, Workbench
from .fig2 import figure2
from .fig4 import figure4
from .fig5 import figure5
from .fig6 import figure6
from .fig7 import figure7
from .fig8 import figure8
from .fig10 import figure10
from .headline import headline_report
from .render import render_figures

FIGURES = ("fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig10",
           "headline")

#: The --tiny smoke configuration: small and fast, same code paths.
TINY_CONFIG = NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                        packet_length=3)


def run_figure(name: str, bench: Workbench,
               config: NocConfig = PAPER_BASELINE) -> str:
    """Regenerate one figure by name and return its rendering."""
    if name == "fig2":
        return render_figures(figure2(bench, config))
    if name == "fig4":
        return render_figures(figure4(bench, config))
    if name == "fig5":
        return render_figures([figure5()])
    if name == "fig6":
        return render_figures([figure6(bench, config)])
    if name == "fig7":
        # Transpose/tornado need the full panel set only on square
        # meshes; the standard pattern set works for any config.
        return render_figures(figure7(bench, config))
    if name == "fig8":
        return render_figures(figure8(bench, config))
    if name == "fig10":
        return render_figures(figure10(bench, config))
    if name == "headline":
        return headline_report(bench, config).render()
    raise ValueError(f"unknown figure {name!r}; known: "
                     f"{', '.join(FIGURES)}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate figures of Casu & Giaccone, DATE 2015.")
    parser.add_argument("figures", nargs="+",
                        help=f"figures to regenerate: "
                             f"{', '.join(FIGURES)} or 'all'")
    parser.add_argument("--profile", choices=("quick", "full"),
                        default="quick",
                        help="simulation effort (default: quick)")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        metavar="N",
                        help="worker processes for sweep points "
                             "(default 1 = serial; 0 = all cores); "
                             "results are identical for any value")
    parser.add_argument("--engine", choices=engine_names(),
                        default=DEFAULT_ENGINE,
                        help="simulation backend: 'reference' is the "
                             "object-per-router model, 'fast' the "
                             "vectorized array engine (default: "
                             f"{DEFAULT_ENGINE})")
    parser.add_argument("--backend", choices=backend_names() + ("auto",),
                        default="auto",
                        help="execution backend for sweep points: "
                             "'serial' and 'pool' run one simulation "
                             "per unit, 'batched' runs whole groups in "
                             "one fast-engine invocation; 'auto' "
                             "(default) picks batched for the fast "
                             "engine — results are identical either "
                             "way")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the per-unit result cache (no "
                             "simulation reuse across different sweep "
                             "grids or batched submissions)")
    parser.add_argument("--tiny", action="store_true",
                        help="run on a tiny 3x3 mesh (smoke runs/CI, "
                             "not the paper's numbers)")
    parser.add_argument("--progress", action="store_true",
                        help="print per-unit progress to stderr")
    args = parser.parse_args(argv)

    names = list(args.figures)
    if names == ["all"]:
        names = list(FIGURES)
    for name in names:
        if name not in FIGURES:
            parser.error(f"unknown figure {name!r}; known: "
                         f"{', '.join(FIGURES)} or 'all'")
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    jobs = args.jobs if args.jobs > 0 else default_jobs()

    profile = FULL if args.profile == "full" else QUICK
    context = ExecutionContext(
        backend=args.backend, jobs=jobs,
        cache=None if args.no_cache else UnitCache(),
        engine=args.engine,
        progress=print_progress if args.progress else None)
    bench = Workbench(profile=profile, seed=args.seed, context=context)
    config = TINY_CONFIG if args.tiny else PAPER_BASELINE
    for name in names:
        start = time.time()
        output = run_figure(name, bench, config)
        elapsed = time.time() - start
        print(output)
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
    totals = bench.runner.totals
    if totals.total_units:
        print(f"[runner: {totals.render()}, jobs={jobs}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
