"""Command-line figure regeneration.

Usage::

    python -m repro.experiments fig5
    python -m repro.experiments fig2 fig4 fig6
    python -m repro.experiments --profile full --jobs 8 fig7
    python -m repro.experiments --tiny --jobs 2 fig2   # CI smoke run
    python -m repro.experiments all

Prints each regenerated figure as a text table.  Figures sharing
simulations (2/4/6) share one memoized workbench, so requesting them
together costs little more than the most expensive one.

``--jobs N`` evaluates sweep points on ``N`` worker processes through
the parallel sweep runner; results are bit-identical to ``--jobs 1``
because every work unit derives its own seed from the run seed and the
unit spec (see :mod:`repro.runner`).  ``--no-cache`` disables the
runner's per-unit result cache (the workbench still memoizes whole
sweeps, but nothing is reused across different sweep grids).
``--tiny`` swaps in a small 3x3 configuration — not the
paper's numbers, just a fast end-to-end smoke of the whole pipeline.
``--engine fast`` runs every simulation on the vectorized array engine
(see README "Simulation engines"); results agree with the reference
engine within the tolerances enforced by the equivalence test suite.
``--backend`` selects the execution backend (README "Execution
backends"): the default ``auto`` batches whole sweeps through the fast
engine's ``run_fixed_batch`` whenever ``--engine fast`` is active —
bit-identical to per-unit execution, several times faster.

``--backend distributed --queue DIR`` publishes sweep shards to a
shared-directory work queue instead of executing in process;
``--workers N`` self-spawns ``N`` local worker subprocesses, while
``--workers 0`` waits for externally started workers (one per host or
process, sharing ``DIR``)::

    python -m repro.experiments worker --queue DIR

runs such a worker until stopped (``--max-tasks`` / ``--max-idle``
bound it).  Results stay bit-identical to serial execution for any
worker count or crash schedule (README "Distributed execution").
"""

from __future__ import annotations

import argparse
import sys
import time

from ..noc.config import NocConfig, PAPER_BASELINE
from ..noc.engines import DEFAULT_ENGINE, engine_names
from ..runner import (ExecutionContext, UnitCache, backend_names,
                      default_jobs, print_progress)
from .common import FULL, QUICK, Workbench
from .fig2 import figure2
from .fig4 import figure4
from .fig5 import figure5
from .fig6 import figure6
from .fig7 import figure7
from .fig8 import figure8
from .fig10 import figure10
from .headline import headline_report
from .render import render_figures

FIGURES = ("fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig10",
           "headline")

#: The --tiny smoke configuration: small and fast, same code paths.
TINY_CONFIG = NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                        packet_length=3)


def run_figure(name: str, bench: Workbench,
               config: NocConfig = PAPER_BASELINE) -> str:
    """Regenerate one figure by name and return its rendering."""
    if name == "fig2":
        return render_figures(figure2(bench, config))
    if name == "fig4":
        return render_figures(figure4(bench, config))
    if name == "fig5":
        return render_figures([figure5()])
    if name == "fig6":
        return render_figures([figure6(bench, config)])
    if name == "fig7":
        # Transpose/tornado need the full panel set only on square
        # meshes; the standard pattern set works for any config.
        return render_figures(figure7(bench, config))
    if name == "fig8":
        return render_figures(figure8(bench, config))
    if name == "fig10":
        return render_figures(figure10(bench, config))
    if name == "headline":
        return headline_report(bench, config).render()
    raise ValueError(f"unknown figure {name!r}; known: "
                     f"{', '.join(FIGURES)}")


def worker_main(argv: list[str]) -> int:
    """``python -m repro.experiments worker``: drain a work queue."""
    from ..runner.distributed import (DEFAULT_LEASE_TTL_S,
                                      DEFAULT_MAX_ATTEMPTS, QueueError,
                                      Worker, WorkQueue)

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments worker",
        description="Claim and execute sweep shards from a shared "
                    "work-queue directory (see README 'Distributed "
                    "execution').")
    parser.add_argument("--queue", required=True, metavar="DIR",
                        help="work-queue directory shared with the "
                             "driver (created if missing)")
    parser.add_argument("--lease-ttl", type=float,
                        default=DEFAULT_LEASE_TTL_S, metavar="S",
                        help="lease time-to-live in seconds; a "
                             "heartbeat renews it every TTL/3 while a "
                             "task executes (default "
                             f"{DEFAULT_LEASE_TTL_S:g})")
    parser.add_argument("--poll", type=float, default=0.2, metavar="S",
                        help="idle poll interval in seconds "
                             "(default 0.2)")
    parser.add_argument("--max-tasks", type=int, default=None,
                        metavar="N",
                        help="exit after handling N tasks (default: "
                             "unbounded)")
    parser.add_argument("--max-idle", type=float, default=None,
                        metavar="S",
                        help="exit after S seconds without claimable "
                             "work (default: wait forever)")
    parser.add_argument("--max-attempts", type=int,
                        default=DEFAULT_MAX_ATTEMPTS, metavar="N",
                        help="per-task attempt budget before a task "
                             f"is marked failed (default "
                             f"{DEFAULT_MAX_ATTEMPTS})")
    args = parser.parse_args(argv)
    if args.lease_ttl <= 0:
        parser.error("--lease-ttl must be > 0")
    if args.max_attempts < 1:
        parser.error("--max-attempts must be >= 1")
    try:
        queue = WorkQueue(args.queue,
                          lease_ttl_s=args.lease_ttl).ensure()
    except QueueError as exc:
        parser.error(str(exc))
    worker = Worker(queue, max_attempts=args.max_attempts)
    handled = worker.run(poll_s=args.poll, max_tasks=args.max_tasks,
                         max_idle_s=args.max_idle)
    print(f"[worker {worker.worker_id}: {handled} task(s) handled, "
          f"{worker.failed} failed]", file=sys.stderr)
    # Non-zero when this worker exhausted any task's retry budget, so
    # supervisors (CI steps, cluster schedulers) notice a worker that
    # can only burn attempts.
    return 1 if worker.failed else 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "worker":
        return worker_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate figures of Casu & Giaccone, DATE 2015.")
    parser.add_argument("figures", nargs="+",
                        help=f"figures to regenerate: "
                             f"{', '.join(FIGURES)} or 'all'")
    parser.add_argument("--profile", choices=("quick", "full"),
                        default="quick",
                        help="simulation effort (default: quick)")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        metavar="N",
                        help="worker processes for sweep points "
                             "(default 1 = serial; 0 = all cores); "
                             "results are identical for any value")
    parser.add_argument("--engine", choices=engine_names(),
                        default=DEFAULT_ENGINE,
                        help="simulation backend: 'reference' is the "
                             "object-per-router model, 'fast' the "
                             "vectorized array engine (default: "
                             f"{DEFAULT_ENGINE})")
    parser.add_argument("--backend", choices=backend_names() + ("auto",),
                        default="auto",
                        help="execution backend for sweep points: "
                             "'serial' and 'pool' run one simulation "
                             "per unit, 'batched' runs whole groups in "
                             "one fast-engine invocation; 'auto' "
                             "(default) picks batched for the fast "
                             "engine — results are identical either "
                             "way")
    parser.add_argument("--queue", metavar="DIR", default=None,
                        help="shared work-queue directory for "
                             "--backend distributed (created if "
                             "missing; workers on any host sharing it "
                             "can execute sweep shards)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="local worker subprocesses to self-spawn "
                             "for --backend distributed (default 0 = "
                             "wait for externally started workers)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the per-unit result cache (no "
                             "simulation reuse across different sweep "
                             "grids or batched submissions)")
    parser.add_argument("--tiny", action="store_true",
                        help="run on a tiny 3x3 mesh (smoke runs/CI, "
                             "not the paper's numbers)")
    parser.add_argument("--progress", action="store_true",
                        help="print per-unit progress to stderr")
    args = parser.parse_args(argv)

    names = list(args.figures)
    if names == ["all"]:
        names = list(FIGURES)
    for name in names:
        if name not in FIGURES:
            parser.error(f"unknown figure {name!r}; known: "
                         f"{', '.join(FIGURES)} or 'all'")
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    jobs = args.jobs if args.jobs > 0 else default_jobs()
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    if args.backend == "distributed":
        if not args.queue:
            parser.error("--backend distributed requires --queue DIR "
                         "(the shared work-queue directory)")
        from ..runner.distributed import QueueError, WorkQueue
        try:
            WorkQueue(args.queue).ensure()
        except QueueError as exc:
            parser.error(str(exc))
    elif args.queue or args.workers:
        parser.error("--queue/--workers are only meaningful with "
                     "--backend distributed")

    profile = FULL if args.profile == "full" else QUICK
    context = ExecutionContext(
        backend=args.backend, jobs=jobs,
        cache=None if args.no_cache else UnitCache(),
        engine=args.engine,
        progress=print_progress if args.progress else None,
        queue=args.queue, workers=args.workers)
    bench = Workbench(profile=profile, seed=args.seed, context=context)
    config = TINY_CONFIG if args.tiny else PAPER_BASELINE
    for name in names:
        start = time.time()
        output = run_figure(name, bench, config)
        elapsed = time.time() - start
        print(output)
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
    totals = bench.runner.totals
    if totals.total_units:
        print(f"[runner: {totals.render()}, jobs={jobs}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
