"""Command-line figure regeneration.

Usage::

    python -m repro.experiments fig5
    python -m repro.experiments fig2 fig4 fig6
    python -m repro.experiments --profile full --jobs 8 fig7
    python -m repro.experiments --tiny --jobs 2 fig2   # CI smoke run
    python -m repro.experiments all

Prints each regenerated figure as a text table.  Figures sharing
simulations (2/4/6) share one memoized workbench, so requesting them
together costs little more than the most expensive one.

``--jobs N`` evaluates sweep points on ``N`` worker processes through
the parallel sweep runner; results are bit-identical to ``--jobs 1``
because every work unit derives its own seed from the run seed and the
unit spec (see :mod:`repro.runner`).  ``--no-cache`` disables the
runner's per-unit result cache (the workbench still memoizes whole
sweeps, but nothing is reused across different sweep grids).
``--tiny`` swaps in a small 3x3 configuration — not the
paper's numbers, just a fast end-to-end smoke of the whole pipeline.
``--engine fast`` runs every simulation on the vectorized array engine
(see README "Simulation engines"); results agree with the reference
engine within the tolerances enforced by the equivalence test suite.
``--backend`` selects the execution backend (README "Execution
backends"): the default ``auto`` batches whole sweeps through the fast
engine's ``run_fixed_batch`` whenever ``--engine fast`` is active —
bit-identical to per-unit execution, several times faster.

``--backend distributed --queue DIR`` publishes sweep shards to a
shared-directory work queue instead of executing in process;
``--workers N`` self-spawns ``N`` local worker subprocesses, while
``--workers 0`` waits for externally started workers (one per host or
process, sharing ``DIR``)::

    python -m repro.experiments worker --queue DIR

runs such a worker until stopped (``--max-tasks`` / ``--max-idle``
bound it).  Results stay bit-identical to serial execution for any
worker count or crash schedule (README "Distributed execution").

The sweep service (README "Sweep as a service") turns one queue
directory into a long-running daemon many clients share::

    python -m repro.experiments serve  --queue DIR --workers 2
    python -m repro.experiments submit --queue DIR \\
        --policy rmsd:lambda_max=0.4 --rates 0.05,0.1 --wait
    python -m repro.experiments status --queue DIR --follow
    python -m repro.experiments gc     --queue DIR --keep-days 7

``--policy NAME[:key=value,...]`` (repeatable) selects which
registered DVFS policies the figures sweep — the paper's three by
default — and ``--pattern NAME[:key=value,...]`` overrides the
traffic pattern of pattern-based figures.  ``--register MODULE``
imports a plugin module first, so user-defined policies and patterns
(see ``examples/scenario_plugin.py`` and README "Scenarios") flow
through any backend::

    python -m repro.experiments list-scenarios

prints every registered policy, pattern and workload with its
parameters.

The scenario-matrix runner sweeps a whole cross product of policies,
patterns and workloads (README "Workloads") as one planned
submission — shared units execute exactly once::

    python -m repro.experiments matrix --policy rmsd --policy dmsd \\
        --pattern uniform --workload none --workload mmoo \\
        --rates 0.05,0.1

``record`` captures one scenario's injection stream to a versioned
trace file and ``replay`` re-drives a mesh from it, bit-exactly::

    python -m repro.experiments record --out u.trace --rate 0.1 --tiny
    python -m repro.experiments replay --trace u.trace --tiny
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

from ..core.registry import POLICY_REGISTRY, Ref
from ..noc.config import NocConfig, PAPER_BASELINE
from ..noc.engines import DEFAULT_ENGINE, engine_names
from ..runner import (ExecutionContext, UnitCache, backend_names,
                      default_jobs, print_progress)
from ..traffic.patterns import PATTERN_REGISTRY
from .common import FULL, QUICK, Workbench
from .fig2 import figure2
from .fig4 import figure4
from .fig5 import figure5
from .fig6 import figure6
from .fig7 import figure7
from .fig8 import figure8
from .fig10 import figure10
from .headline import headline_report
from .render import render_figures

FIGURES = ("fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig10",
           "headline")

#: The --tiny smoke configuration: small and fast, same code paths.
TINY_CONFIG = NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                        packet_length=3)


def run_figure(name: str, bench: Workbench,
               config: NocConfig = PAPER_BASELINE,
               patterns: tuple[str, ...] | None = None) -> str:
    """Regenerate one figure by name and return its rendering.

    ``patterns`` overrides the figure's default traffic: single-pattern
    figures (2, 4, 6, headline) use the first entry; Fig. 7 sweeps the
    whole list.  Figures whose workload is fixed by construction
    (5: analytic, 8: uniform sensitivity, 10: app matrices) ignore it.
    """
    pattern = patterns[0] if patterns else "uniform"
    if name == "fig2":
        return render_figures(figure2(bench, config, pattern))
    if name == "fig4":
        return render_figures(figure4(bench, config, pattern))
    if name == "fig5":
        return render_figures([figure5()])
    if name == "fig6":
        return render_figures([figure6(bench, config, pattern)])
    if name == "fig7":
        # Transpose/tornado need the full panel set only on square
        # meshes; the standard pattern set works for any config.
        if patterns:
            return render_figures(figure7(bench, config, patterns))
        return render_figures(figure7(bench, config))
    if name == "fig8":
        return render_figures(figure8(bench, config))
    if name == "fig10":
        return render_figures(figure10(bench, config))
    if name == "headline":
        return headline_report(bench, config, pattern).render()
    raise ValueError(f"unknown figure {name!r}; known: "
                     f"{', '.join(FIGURES)}")


def register_modules(modules: list[str] | None,
                     error) -> None:
    """Import plugin modules that register policies/patterns.

    ``error`` is the parser's ``error`` callable, so a bad module name
    exits with a usage message instead of a traceback.
    """
    for module in modules or []:
        try:
            importlib.import_module(module)
        except ImportError as exc:
            error(f"cannot import --register module {module!r}: {exc}")
        except ValueError as exc:
            # e.g. a plugin re-registering an existing name
            error(f"--register module {module!r} failed: {exc}")


def _parse_refs(values: list[str] | None, validate, flag: str,
                error) -> tuple[Ref, ...] | None:
    if not values:
        return None
    refs = []
    for value in values:
        try:
            refs.append(validate(value))
        except ValueError as exc:
            error(f"{flag} {value!r}: {exc}")
    return tuple(refs)


def _parse_workloads(values: list[str] | None,
                     error) -> tuple[Ref | None, ...]:
    """``--workload`` values as refs; ``"none"`` = plain traffic."""
    from ..workload import as_workload_ref

    if not values:
        return (None,)
    out: list[Ref | None] = []
    for value in values:
        if value == "none":
            out.append(None)
            continue
        try:
            out.append(as_workload_ref(value))
        except ValueError as exc:
            error(f"--workload {value!r}: {exc}")
    return tuple(out)


def list_scenarios_main(argv: list[str]) -> int:
    """``python -m repro.experiments list-scenarios``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments list-scenarios",
        description="List registered DVFS policies, traffic patterns "
                    "and workloads (the scenario building blocks; see "
                    "README 'Scenarios' and 'Workloads').")
    parser.add_argument("--register", action="append", metavar="MODULE",
                        help="import MODULE first (a plugin that "
                             "registers policies/patterns/workloads); "
                             "repeatable")
    args = parser.parse_args(argv)
    register_modules(args.register, parser.error)

    def fmt_params(params):
        if params is None:
            return "any"
        return ", ".join(params) if params else "-"

    print("Policies (repro.core.registry; spell parameters as "
          "NAME:key=value,key=value):")
    for name in POLICY_REGISTRY.names():
        cls = POLICY_REGISTRY.factory(name)
        params = POLICY_REGISTRY.accepted_params(name)
        if POLICY_REGISTRY.has_strategy(name):
            sweep = ("sweep params: "
                     f"{fmt_params(POLICY_REGISTRY.strategy_params(name))}")
            if not POLICY_REGISTRY.is_default(name):
                # Opt-in policies sweep when named (--policy NAME) but
                # stay out of the default figure comparison.
                sweep += "; opt-in (not in default sweeps)"
        else:
            sweep = "transient only (no sweep strategy)"
        print(f"  {name:12s} {cls.__name__:20s} "
              f"controller params: {fmt_params(params)}; {sweep}")
    print()
    print("Traffic patterns (repro.traffic.patterns):")
    for name in PATTERN_REGISTRY.names():
        cls = PATTERN_REGISTRY.factory(name)
        params = PATTERN_REGISTRY.accepted_params(name,
                                                  skip_positional=1)
        line = (f"  {name:12s} {cls.__name__:20s} "
                f"params: {fmt_params(params)}")
        # Shape-constrained patterns (satisfied or not, the note is
        # static): building an incompatible ScenarioSpec raises at
        # validation with the scenario named.
        if getattr(cls, "requires", None):
            line += f"; requires {cls.requires}"
        print(line)
    print()
    print("Workloads (repro.workload; shape offered load over time, "
          "--workload NAME[:k=v,...]):")
    from ..workload import WORKLOAD_REGISTRY
    for name in WORKLOAD_REGISTRY.names():
        cls = WORKLOAD_REGISTRY.factory(name)
        params = WORKLOAD_REGISTRY.accepted_params(name,
                                                   skip_positional=1)
        print(f"  {name:12s} {cls.__name__:24s} "
              f"params: {fmt_params(params)}")
    return 0


def worker_main(argv: list[str]) -> int:
    """``python -m repro.experiments worker``: drain a work queue."""
    from ..runner.distributed import (DEFAULT_LEASE_TTL_S,
                                      DEFAULT_MAX_ATTEMPTS, QueueError,
                                      Worker, WorkQueue)

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments worker",
        description="Claim and execute sweep shards from a shared "
                    "work-queue directory (see README 'Distributed "
                    "execution').")
    parser.add_argument("--queue", required=True, metavar="DIR",
                        help="work-queue directory shared with the "
                             "driver (created if missing)")
    parser.add_argument("--lease-ttl", type=float,
                        default=DEFAULT_LEASE_TTL_S, metavar="S",
                        help="lease time-to-live in seconds; a "
                             "heartbeat renews it every TTL/3 while a "
                             "task executes (default "
                             f"{DEFAULT_LEASE_TTL_S:g})")
    parser.add_argument("--poll", type=float, default=0.2, metavar="S",
                        help="idle poll interval in seconds "
                             "(default 0.2)")
    parser.add_argument("--max-tasks", type=int, default=None,
                        metavar="N",
                        help="exit after handling N tasks (default: "
                             "unbounded)")
    parser.add_argument("--max-idle", type=float, default=None,
                        metavar="S",
                        help="exit after S seconds without claimable "
                             "work (default: wait forever)")
    parser.add_argument("--max-attempts", type=int,
                        default=DEFAULT_MAX_ATTEMPTS, metavar="N",
                        help="per-task attempt budget before a task "
                             f"is marked failed (default "
                             f"{DEFAULT_MAX_ATTEMPTS})")
    parser.add_argument("--claim-batch", type=int, default=1,
                        metavar="N",
                        help="tasks to claim per queue round-trip "
                             "(default 1; higher cuts filesystem "
                             "chatter on shared/network queues — see "
                             "README 'Distributed execution')")
    args = parser.parse_args(argv)
    if args.lease_ttl <= 0:
        parser.error("--lease-ttl must be > 0")
    if args.max_attempts < 1:
        parser.error("--max-attempts must be >= 1")
    if args.claim_batch < 1:
        parser.error("--claim-batch must be >= 1")
    try:
        queue = WorkQueue(args.queue,
                          lease_ttl_s=args.lease_ttl).ensure()
    except QueueError as exc:
        parser.error(str(exc))
    worker = Worker(queue, max_attempts=args.max_attempts,
                    claim_batch=args.claim_batch)
    handled = worker.run(poll_s=args.poll, max_tasks=args.max_tasks,
                         max_idle_s=args.max_idle)
    print(f"[worker {worker.worker_id}: {handled} task(s) handled, "
          f"{worker.failed} failed]", file=sys.stderr)
    # Non-zero when this worker exhausted any task's retry budget, so
    # supervisors (CI steps, cluster schedulers) notice a worker that
    # can only burn attempts.
    return 1 if worker.failed else 0


def _parse_rates(text: str, error) -> tuple[float, ...]:
    try:
        rates = tuple(float(part) for part in text.split(",")
                      if part.strip())
    except ValueError:
        error(f"--rates {text!r}: not a comma-separated list of "
              f"numbers")
    if not rates:
        error("--rates needs at least one value")
    if any(rate <= 0 for rate in rates):
        error("--rates values must be positive injection rates")
    return rates


def _parse_budget(text: str, error):
    from ..noc.budget import DEFAULT, FAST, THOROUGH, SimBudget

    named = {"fast": FAST, "default": DEFAULT, "thorough": THOROUGH}
    if text in named:
        return named[text]
    parts = text.split(":")
    try:
        if len(parts) != 3:
            raise ValueError(text)
        return SimBudget(*(int(part) for part in parts))
    except ValueError:
        error(f"--budget {text!r}: use fast, default, thorough or "
              f"WARMUP:MEASURE:DRAIN (cycle counts)")


def _render_submission_status(status: dict) -> str:
    """One stable, grep-friendly line per submission."""
    state = status.get("state", "unknown")
    if "tasks" not in status:
        return f"{status['id']} {state}"
    line = (f"{status['id']} {state} units={status['units']} "
            f"tasks={status['tasks']} done={status['done']}/"
            f"{status['tasks']} cached={status['cached']} "
            f"running={status['running']} failed={status['failed']}")
    if status.get("error"):
        line += f" error={status['error']!r}"
    return line


def _print_failures(status: dict) -> None:
    for task_id, ticket in sorted(status.get("failures", {}).items()):
        errors = ticket.get("errors") or ["no error recorded"]
        print(f"    {task_id} ({ticket.get('attempts', '?')} "
              f"attempts): {errors[-1]}")


def serve_main(argv: list[str]) -> int:
    """``python -m repro.experiments serve``: the sweep daemon."""
    import signal
    import threading

    from ..runner.distributed import (DEFAULT_LEASE_TTL_S,
                                      DEFAULT_MAX_ATTEMPTS, QueueError,
                                      ServiceDaemon)

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description="Run the sweep-as-a-service daemon on a shared "
                    "queue directory: accept scenario-sweep "
                    "submissions from the submit subcommand, plan and "
                    "execute them (deduplicating overlapping work "
                    "against the shared result store), and report "
                    "per-submission status files (see README 'Sweep "
                    "as a service').")
    parser.add_argument("--queue", required=True, metavar="DIR",
                        help="queue directory to serve (created if "
                             "missing); clients submit to the same DIR")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="local worker subprocesses to keep warm "
                             "for the daemon's lifetime (default 0 = "
                             "execute in-process between polls, or "
                             "lean on externally started workers)")
    parser.add_argument("--pool", action="store_true",
                        help="accepted for symmetry with --backend "
                             "distributed: a daemon's self-spawned "
                             "workers are always a warm pool (needs "
                             "--workers >= 1)")
    parser.add_argument("--claim-batch", type=int, default=1,
                        metavar="N",
                        help="tasks each self-spawned worker claims "
                             "per queue round-trip (default 1)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="planner fan-out: shards per scenario "
                             "sweep (default: --workers, or 8 when "
                             "executing in-process).  Must match "
                             "across daemons sharing one queue for "
                             "cross-submission dedupe")
    parser.add_argument("--lease-ttl", type=float,
                        default=DEFAULT_LEASE_TTL_S, metavar="S",
                        help="task lease time-to-live in seconds "
                             f"(default {DEFAULT_LEASE_TTL_S:g})")
    parser.add_argument("--poll", type=float, default=0.05,
                        metavar="S",
                        help="service poll interval in seconds "
                             "(default 0.05)")
    parser.add_argument("--max-attempts", type=int,
                        default=DEFAULT_MAX_ATTEMPTS, metavar="N",
                        help="per-task attempt budget (default "
                             f"{DEFAULT_MAX_ATTEMPTS})")
    parser.add_argument("--max-idle", type=float, default=None,
                        metavar="S",
                        help="exit after S seconds with no active or "
                             "queued submission (default: serve "
                             "forever)")
    parser.add_argument("--register", action="append",
                        metavar="MODULE",
                        help="import MODULE first so submissions may "
                             "name its registered policies/patterns; "
                             "repeatable")
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    if args.pool and args.workers < 1:
        parser.error("--pool needs self-spawned workers "
                     "(--workers >= 1)")
    if args.claim_batch < 1:
        parser.error("--claim-batch must be >= 1")
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.lease_ttl <= 0:
        parser.error("--lease-ttl must be > 0")
    if args.poll <= 0:
        parser.error("--poll must be > 0")
    if args.max_attempts < 1:
        parser.error("--max-attempts must be >= 1")
    register_modules(args.register, parser.error)

    def log(message: str) -> None:
        print(f"[serve] {message}", file=sys.stderr, flush=True)

    try:
        daemon = ServiceDaemon(args.queue, workers=args.workers,
                               claim_batch=args.claim_batch,
                               lease_ttl_s=args.lease_ttl,
                               poll_s=args.poll,
                               max_attempts=args.max_attempts,
                               jobs=args.jobs, log=log)
    except (QueueError, ValueError) as exc:
        parser.error(str(exc))

    # First signal: drain in-flight submissions, then exit cleanly
    # (the pool is sentinel-retired, no worker outlives the daemon).
    # Second signal: exit immediately.
    stop = threading.Event()

    def handle_stop(signum, frame):
        if stop.is_set():
            raise SystemExit(130)
        stop.set()

    signal.signal(signal.SIGINT, handle_stop)
    signal.signal(signal.SIGTERM, handle_stop)
    log(f"serving queue {args.queue} (workers={args.workers}, "
        f"fanout={daemon.fanout}); submit with: python -m "
        f"repro.experiments submit --queue {args.queue} ...")
    stats = daemon.run(stop=stop, max_idle_s=args.max_idle)
    log(f"done: {stats.accepted} accepted, {stats.completed} "
        f"completed, {stats.failed} failed")
    return 1 if stats.failed else 0


def submit_main(argv: list[str]) -> int:
    """``python -m repro.experiments submit``: hand the daemon a sweep."""
    from ..runner.distributed import (QueueError, SweepSubmission,
                                      read_status, submit_sweep)
    from ..scenario import ScenarioSpec
    from ..traffic.patterns import as_pattern_ref

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments submit",
        description="Submit a scenario sweep (policies x patterns x "
                    "rates) to a sweep-service queue; prints the "
                    "submission id.  Work overlapping other "
                    "submissions (or earlier results) is shared, not "
                    "recomputed (see README 'Sweep as a service').")
    parser.add_argument("--queue", required=True, metavar="DIR",
                        help="queue directory a daemon serves (python "
                             "-m repro.experiments serve --queue DIR)")
    parser.add_argument("--policy", action="append", required=True,
                        metavar="NAME[:k=v,...]",
                        help="policy to sweep (repeatable; parameters "
                             "as key=value pairs, e.g. "
                             "rmsd:lambda_max=0.4)")
    parser.add_argument("--pattern", action="append",
                        metavar="NAME[:k=v,...]",
                        help="traffic pattern(s) to cross with the "
                             "policies (repeatable; default: uniform)")
    parser.add_argument("--workload", action="append",
                        metavar="NAME[:k=v,...]",
                        help="workload(s) to cross in as a third "
                             "dimension (repeatable; 'none' = plain "
                             "constant-rate traffic, the default — "
                             "see README 'Workloads')")
    parser.add_argument("--rates", required=True, metavar="R1,R2,...",
                        help="comma-separated injection rates "
                             "(flits/node-cycle), the sweep axis")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--engine", choices=engine_names(),
                        default=DEFAULT_ENGINE,
                        help=f"simulation engine (default: "
                             f"{DEFAULT_ENGINE})")
    parser.add_argument("--budget", default="default",
                        metavar="NAME|W:M:D",
                        help="simulation budget: fast, default, "
                             "thorough, or WARMUP:MEASURE:DRAIN cycle "
                             "counts (default: default)")
    parser.add_argument("--tiny", action="store_true",
                        help="sweep the tiny 3x3 smoke mesh instead "
                             "of the paper baseline")
    parser.add_argument("--register", action="append",
                        metavar="MODULE",
                        help="import MODULE first (plugin policies/"
                             "patterns); the daemon needs the same "
                             "--register to accept the submission")
    parser.add_argument("--wait", action="store_true",
                        help="block until the submission reaches a "
                             "terminal state; exit 1 on failure")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="S",
                        help="give up on --wait after S seconds")
    parser.add_argument("--poll", type=float, default=0.2, metavar="S",
                        help="status poll interval for --wait "
                             "(default 0.2)")
    args = parser.parse_args(argv)
    register_modules(args.register, parser.error)
    policy_refs = _parse_refs(args.policy,
                              POLICY_REGISTRY.validate_sweep_ref,
                              "--policy", parser.error)
    pattern_refs = _parse_refs(args.pattern or ["uniform"],
                               as_pattern_ref, "--pattern",
                               parser.error)
    workloads = _parse_workloads(args.workload, parser.error)
    rates = _parse_rates(args.rates, parser.error)
    budget = _parse_budget(args.budget, parser.error)
    config = TINY_CONFIG if args.tiny else PAPER_BASELINE
    try:
        scenarios = [ScenarioSpec.build(policy, pattern, config=config,
                                        workload=workload)
                     for policy in policy_refs
                     for pattern in pattern_refs
                     for workload in workloads]
    except ValueError as exc:
        parser.error(str(exc))
    try:
        submission = SweepSubmission.build(
            scenarios, rates, seed=args.seed, engine=args.engine,
            budget=budget)
        submission_id = submit_sweep(args.queue, submission)
    except (QueueError, ValueError) as exc:
        parser.error(str(exc))
    print(submission_id)
    if not args.wait:
        return 0
    deadline = (None if args.timeout is None
                else time.time() + args.timeout)
    while True:
        status = read_status(args.queue, submission_id) or {}
        if status.get("state") in ("done", "failed"):
            print(_render_submission_status(status), file=sys.stderr)
            _print_failures(status)
            return 0 if status["state"] == "done" else 1
        if deadline is not None and time.time() >= deadline:
            print(f"timed out after {args.timeout:g}s waiting on "
                  f"{submission_id} "
                  f"(state: {status.get('state', 'unknown')}; is a "
                  f"daemon serving {args.queue}?)", file=sys.stderr)
            return 1
        time.sleep(args.poll)


def status_main(argv: list[str]) -> int:
    """``python -m repro.experiments status``: submission progress."""
    from ..runner.distributed import (QueueError, WorkQueue,
                                      list_submissions, read_status,
                                      service_state)

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments status",
        description="Show sweep-service submission status (and the "
                    "daemon/queue state) for a queue directory.")
    parser.add_argument("--queue", required=True, metavar="DIR")
    parser.add_argument("ids", nargs="*", metavar="SUBMISSION",
                        help="submission ids to show (default: all "
                             "known)")
    parser.add_argument("--follow", action="store_true",
                        help="keep polling and stream status changes "
                             "until every shown submission is "
                             "terminal; exit 1 if any failed")
    parser.add_argument("--poll", type=float, default=0.2, metavar="S",
                        help="poll interval for --follow "
                             "(default 0.2)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="S",
                        help="give up on --follow after S seconds")
    args = parser.parse_args(argv)
    if args.poll <= 0:
        parser.error("--poll must be > 0")
    try:
        queue = WorkQueue(args.queue).ensure()
    except QueueError as exc:
        parser.error(str(exc))
    for submission_id in args.ids:
        if read_status(args.queue, submission_id) is None:
            parser.error(f"unknown submission {submission_id!r} in "
                         f"queue {args.queue}")

    def snapshot() -> list[dict]:
        if args.ids:
            return [status for status in
                    (read_status(args.queue, submission_id)
                     for submission_id in args.ids)
                    if status is not None]
        return list_submissions(args.queue)

    def failed(statuses: list[dict]) -> bool:
        return any(s.get("state") == "failed" for s in statuses)

    if not args.follow:
        daemon = service_state(args.queue)
        if daemon is not None:
            print(f"[daemon {daemon.get('state', '?')} "
                  f"pid={daemon.get('pid', '?')} "
                  f"workers={daemon.get('workers', '?')} "
                  f"active={daemon.get('active', '?')} "
                  f"accepted={daemon.get('accepted', '?')} "
                  f"completed={daemon.get('completed', '?')} "
                  f"failed={daemon.get('failed', '?')}]")
        else:
            print("[no daemon has served this queue]")
        print(f"[queue todo={len(queue.todo_ids())} "
              f"claimed={len(queue.claimed_ids())} "
              f"results={len(queue.result_ids())} "
              f"failed={len(queue.failed_tickets())}]")
        statuses = snapshot()
        for status in statuses:
            print(_render_submission_status(status))
            _print_failures(status)
        return 1 if failed(statuses) else 0

    deadline = (None if args.timeout is None
                else time.time() + args.timeout)
    last_lines: dict[str, str] = {}
    while True:
        statuses = snapshot()
        for status in statuses:
            line = _render_submission_status(status)
            if last_lines.get(status["id"]) != line:
                last_lines[status["id"]] = line
                print(line, flush=True)
                if status.get("state") == "failed":
                    _print_failures(status)
        if statuses and all(s.get("state") in ("done", "failed")
                            for s in statuses):
            return 1 if failed(statuses) else 0
        if deadline is not None and time.time() >= deadline:
            print(f"timed out after {args.timeout:g}s with "
                  f"non-terminal submissions", file=sys.stderr)
            return 1
        time.sleep(args.poll)


def gc_main(argv: list[str]) -> int:
    """``python -m repro.experiments gc``: result-store retention."""
    from ..runner.distributed import QueueError, gc_queue

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments gc",
        description="Evict sweep-service results, failed tickets and "
                    "terminal submission records older than a "
                    "retention window.  Results a live submission "
                    "still references are spared regardless of age; "
                    "gc against a serving daemon is safe.")
    parser.add_argument("--queue", required=True, metavar="DIR")
    parser.add_argument("--keep-days", type=float, required=True,
                        metavar="N",
                        help="retention window in days (fractions "
                             "allowed; 0 evicts everything not live)")
    parser.add_argument("--dry-run", action="store_true",
                        help="report what would be evicted without "
                             "deleting anything")
    args = parser.parse_args(argv)
    if args.keep_days < 0:
        parser.error("--keep-days must be >= 0")
    try:
        report = gc_queue(args.queue, args.keep_days,
                          dry_run=args.dry_run)
    except (QueueError, ValueError) as exc:
        parser.error(str(exc))
    verb = "would remove" if args.dry_run else "removed"
    print(f"[gc {verb} {report.render()}]")
    return 0


def matrix_main(argv: list[str]) -> int:
    """``python -m repro.experiments matrix``: scenario cross product."""
    import json

    from ..scenario import ScenarioSpec
    from ..traffic.patterns import as_pattern_ref

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments matrix",
        description="Sweep the cross product of policies x patterns x "
                    "workloads over one rate grid as a SINGLE planned "
                    "submission: units shared between cells (or "
                    "repeated rates) execute exactly once, any "
                    "execution backend sees the whole matrix at once, "
                    "and the result is a per-cell delay table (plus an "
                    "optional JSON artifact).  See README 'Workloads'.")
    parser.add_argument("--policy", action="append", required=True,
                        metavar="NAME[:k=v,...]",
                        help="policy row(s) of the matrix (repeatable)")
    parser.add_argument("--pattern", action="append",
                        metavar="NAME[:k=v,...]",
                        help="traffic pattern(s) to cross in "
                             "(repeatable; default: uniform)")
    parser.add_argument("--workload", action="append",
                        metavar="NAME[:k=v,...]",
                        help="workload(s) to cross in (repeatable; "
                             "'none' = plain constant-rate traffic, "
                             "the default)")
    parser.add_argument("--rates", required=True, metavar="R1,R2,...",
                        help="comma-separated injection rates "
                             "(flits/node-cycle), the sweep axis of "
                             "every cell")
    parser.add_argument("--profile", choices=("quick", "full"),
                        default="quick",
                        help="simulation effort (default: quick)")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--engine", choices=engine_names(),
                        default=DEFAULT_ENGINE,
                        help=f"simulation engine (default: "
                             f"{DEFAULT_ENGINE})")
    parser.add_argument("--backend", choices=backend_names() + ("auto",),
                        default="auto",
                        help="execution backend (default: auto)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes (default 1; 0 = all "
                             "cores); results are identical for any "
                             "value")
    parser.add_argument("--queue", metavar="DIR", default=None,
                        help="work-queue directory for --backend "
                             "distributed")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="self-spawned workers for --backend "
                             "distributed (default 0)")
    parser.add_argument("--pool", action="store_true",
                        help="keep self-spawned workers warm across "
                             "the whole matrix (needs --workers >= 1)")
    parser.add_argument("--claim-batch", type=int, default=1,
                        metavar="N",
                        help="tasks per worker claim round-trip "
                             "(default 1)")
    parser.add_argument("--register", action="append", metavar="MODULE",
                        help="import MODULE first (plugin policies/"
                             "patterns/workloads); repeatable")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the unit cache (cells then run "
                             "as independent sweeps; no cross-cell "
                             "dedupe proof)")
    parser.add_argument("--tiny", action="store_true",
                        help="run on the tiny 3x3 smoke mesh")
    parser.add_argument("--progress", action="store_true",
                        help="print per-unit progress to stderr")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="also write the matrix artifact (per-cell "
                             "points + run report) as JSON to FILE")
    args = parser.parse_args(argv)
    register_modules(args.register, parser.error)
    policy_refs = _parse_refs(args.policy,
                              POLICY_REGISTRY.validate_sweep_ref,
                              "--policy", parser.error)
    pattern_refs = _parse_refs(args.pattern or ["uniform"],
                               as_pattern_ref, "--pattern",
                               parser.error)
    workloads = _parse_workloads(args.workload, parser.error)
    rates = _parse_rates(args.rates, parser.error)
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    jobs = args.jobs if args.jobs > 0 else default_jobs()
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    if args.claim_batch < 1:
        parser.error("--claim-batch must be >= 1")
    if args.backend == "distributed":
        if not args.queue:
            parser.error("--backend distributed requires --queue DIR")
        if args.pool and args.workers < 1:
            parser.error("--pool needs self-spawned workers "
                         "(--workers >= 1)")
    elif args.queue or args.workers or args.pool or args.claim_batch != 1:
        parser.error("--queue/--workers/--pool/--claim-batch are only "
                     "meaningful with --backend distributed")
    config = TINY_CONFIG if args.tiny else PAPER_BASELINE
    try:
        scenarios = [ScenarioSpec.build(policy, pattern, config=config,
                                        workload=workload)
                     for policy in policy_refs
                     for pattern in pattern_refs
                     for workload in workloads]
    except ValueError as exc:
        parser.error(str(exc))
    context = ExecutionContext(
        backend=args.backend, jobs=jobs,
        cache=None if args.no_cache else UnitCache(),
        engine=args.engine,
        progress=print_progress if args.progress else None,
        queue=args.queue, workers=args.workers,
        pool=args.pool, claim_batch=args.claim_batch)
    bench = Workbench(profile=FULL if args.profile == "full" else QUICK,
                      seed=args.seed, context=context,
                      policies=policy_refs)
    try:
        result = bench.scenario_matrix(scenarios, rates)
    finally:
        context.close()
    print(result.render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result.to_payload(), handle, indent=2)
            handle.write("\n")
        print(f"[matrix artifact written to {args.out}]")
    return 0


def record_main(argv: list[str]) -> int:
    """``python -m repro.experiments record``: capture a trace."""
    from ..scenario import ScenarioSpec
    from ..workload import InjectionTrace

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments record",
        description="Record one scenario's injection stream (every "
                    "(cycle, src, dst) packet arrival) to a versioned "
                    "trace file that 'replay' — or any scenario with "
                    "--workload trace:path=FILE — re-drives "
                    "bit-exactly.  See README 'Workloads'.")
    parser.add_argument("--out", required=True, metavar="FILE",
                        help="trace file to write (conventionally "
                             "*.trace)")
    parser.add_argument("--pattern", default="uniform",
                        metavar="NAME[:k=v,...]",
                        help="spatial traffic pattern (default: "
                             "uniform)")
    parser.add_argument("--workload", default=None,
                        metavar="NAME[:k=v,...]",
                        help="shape the recorded stream with a "
                             "workload first (e.g. mmoo); default: "
                             "plain constant-rate traffic")
    parser.add_argument("--rate", type=float, required=True,
                        metavar="R",
                        help="mean injection rate in flits/node-cycle")
    parser.add_argument("--cycles", type=int, default=20_000,
                        metavar="N",
                        help="node cycles to record (default 20000); "
                             "replay offers nothing beyond them")
    parser.add_argument("--seed", type=int, default=1,
                        help="arrival RNG seed (default 1)")
    parser.add_argument("--tiny", action="store_true",
                        help="record on the tiny 3x3 smoke mesh "
                             "instead of the paper baseline")
    parser.add_argument("--register", action="append", metavar="MODULE",
                        help="import MODULE first (plugin patterns/"
                             "workloads); repeatable")
    args = parser.parse_args(argv)
    register_modules(args.register, parser.error)
    if args.rate <= 0:
        parser.error("--rate must be a positive injection rate")
    if args.cycles < 1:
        parser.error("--cycles must be >= 1")
    config = TINY_CONFIG if args.tiny else PAPER_BASELINE
    workload = (None if args.workload in (None, "none")
                else args.workload)
    try:
        spec = ScenarioSpec.build("no-dvfs", args.pattern,
                                  config=config, workload=workload)
        traffic = spec.traffic_factory()(args.rate)
    except ValueError as exc:
        parser.error(str(exc))
    trace = InjectionTrace.record(
        traffic, config.packet_length, args.cycles, args.seed,
        source=f"{spec.label} rate={args.rate:g} seed={args.seed}")
    path = trace.save(args.out)
    print(f"[recorded {len(trace.events)} arrivals over "
          f"{args.cycles} node cycles -> {path}]")
    print(f"[empirical mean rate "
          f"{trace.mean_node_rate():.4f} flits/node-cycle]")
    print(f"[digest {trace.digest()}]")
    return 0


def replay_main(argv: list[str]) -> int:
    """``python -m repro.experiments replay``: re-drive from a trace."""
    from ..noc.budget import run_fixed_point
    from ..workload import InjectionTrace, TraceError, TraceTraffic

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments replay",
        description="Replay a recorded trace through one pinned-"
                    "frequency simulation and print the measured "
                    "delay/throughput.  The injected stream is the "
                    "recorded one, bit for bit, on every engine and "
                    "backend.")
    parser.add_argument("--trace", required=True, metavar="FILE",
                        help="trace file written by the record "
                             "subcommand")
    parser.add_argument("--freq-rel", type=float, default=1.0,
                        metavar="F",
                        help="network frequency as a fraction of Fmax "
                             "(default 1.0)")
    parser.add_argument("--budget", default="default",
                        metavar="NAME|W:M:D",
                        help="simulation budget: fast, default, "
                             "thorough, or WARMUP:MEASURE:DRAIN "
                             "(default: default)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--engine", choices=engine_names(),
                        default=DEFAULT_ENGINE,
                        help=f"simulation engine (default: "
                             f"{DEFAULT_ENGINE})")
    parser.add_argument("--tiny", action="store_true",
                        help="replay on the tiny 3x3 smoke mesh "
                             "(the trace must match its shape)")
    args = parser.parse_args(argv)
    if args.freq_rel <= 0:
        parser.error("--freq-rel must be > 0")
    budget = _parse_budget(args.budget, parser.error)
    config = TINY_CONFIG if args.tiny else PAPER_BASELINE
    try:
        trace = InjectionTrace.load(args.trace)
    except TraceError as exc:
        parser.error(str(exc))
    if trace.num_nodes != config.num_nodes:
        parser.error(f"trace records {trace.num_nodes} nodes but the "
                     f"selected config has {config.num_nodes} "
                     f"({config.width}x{config.height}); re-record or "
                     f"drop/add --tiny")
    if trace.packet_length != config.packet_length:
        parser.error(f"trace records packet length "
                     f"{trace.packet_length} but the selected config "
                     f"uses {config.packet_length}")
    result = run_fixed_point(config, TraceTraffic(trace),
                             args.freq_rel * config.f_max_hz, budget,
                             args.seed, engine=args.engine)
    delay = ("n/a" if result.mean_delay_ns is None
             else f"{result.mean_delay_ns:.2f} ns")
    print(f"[replayed {len(trace.events)} arrivals "
          f"(source: {trace.source or 'unknown'})]")
    print(f"[delivered {result.measured_delivered}/"
          f"{result.measured_created} measured packets; mean delay "
          f"{delay}; accepted rate {result.accepted_node_rate:.4f} "
          f"flits/node-cycle; saturated={result.saturated}]")
    return 0


_SUBCOMMANDS = {
    "worker": worker_main,
    "list-scenarios": list_scenarios_main,
    "matrix": matrix_main,
    "record": record_main,
    "replay": replay_main,
    "serve": serve_main,
    "submit": submit_main,
    "status": status_main,
    "gc": gc_main,
}


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate figures of Casu & Giaccone, DATE 2015.")
    parser.add_argument("figures", nargs="+",
                        help=f"figures to regenerate: "
                             f"{', '.join(FIGURES)} or 'all'")
    parser.add_argument("--profile", choices=("quick", "full"),
                        default="quick",
                        help="simulation effort (default: quick)")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        metavar="N",
                        help="worker processes for sweep points "
                             "(default 1 = serial; 0 = all cores); "
                             "results are identical for any value")
    parser.add_argument("--engine", choices=engine_names(),
                        default=DEFAULT_ENGINE,
                        help="simulation backend: 'reference' is the "
                             "object-per-router model, 'fast' the "
                             "vectorized array engine (default: "
                             f"{DEFAULT_ENGINE})")
    parser.add_argument("--backend", choices=backend_names() + ("auto",),
                        default="auto",
                        help="execution backend for sweep points: "
                             "'serial' and 'pool' run one simulation "
                             "per unit, 'batched' runs whole groups in "
                             "one fast-engine invocation; 'auto' "
                             "(default) picks batched for the fast "
                             "engine — results are identical either "
                             "way")
    parser.add_argument("--queue", metavar="DIR", default=None,
                        help="shared work-queue directory for "
                             "--backend distributed (created if "
                             "missing; workers on any host sharing it "
                             "can execute sweep shards)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="local worker subprocesses to self-spawn "
                             "for --backend distributed (default 0 = "
                             "wait for externally started workers)")
    parser.add_argument("--pool", action="store_true",
                        help="keep the self-spawned workers warm "
                             "across all figures this run generates "
                             "instead of spawning a fresh fleet per "
                             "sweep (needs --workers >= 1)")
    parser.add_argument("--claim-batch", type=int, default=1,
                        metavar="N",
                        help="tasks each self-spawned worker claims "
                             "per queue round-trip (default 1; higher "
                             "cuts queue chatter on shared "
                             "filesystems)")
    parser.add_argument("--policy", action="append", metavar="NAME[:k=v,...]",
                        help="sweep this registered policy (repeatable; "
                             "parameters as key=value pairs, e.g. "
                             "dmsd:target_delay_ns=150); default: the "
                             "registry's default ordering — see the "
                             "list-scenarios subcommand")
    parser.add_argument("--pattern", action="append",
                        metavar="NAME[:k=v,...]",
                        help="traffic pattern for pattern-based figures "
                             "(repeatable; fig7 sweeps the whole list, "
                             "other figures use the first; default: "
                             "each figure's own)")
    parser.add_argument("--register", action="append", metavar="MODULE",
                        help="import MODULE before anything else (a "
                             "plugin registering custom policies or "
                             "patterns); repeatable.  With --backend "
                             "distributed the module must also be "
                             "importable on every worker")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the per-unit result cache (no "
                             "simulation reuse across different sweep "
                             "grids or batched submissions)")
    parser.add_argument("--tiny", action="store_true",
                        help="run on a tiny 3x3 mesh (smoke runs/CI, "
                             "not the paper's numbers)")
    parser.add_argument("--progress", action="store_true",
                        help="print per-unit progress to stderr")
    args = parser.parse_args(argv)

    register_modules(args.register, parser.error)
    from ..traffic.patterns import as_pattern_ref
    # --policy refs feed sweeps, so validate against the sweep-strategy
    # factories: `--policy fixed` (no strategy) or a controller-only
    # parameter is a usage error here, not a mid-run traceback.
    policy_refs = _parse_refs(args.policy,
                              POLICY_REGISTRY.validate_sweep_ref,
                              "--policy", parser.error)
    pattern_refs = _parse_refs(args.pattern, as_pattern_ref,
                               "--pattern", parser.error)
    patterns = (tuple(ref.label for ref in pattern_refs)
                if pattern_refs else None)

    names = list(args.figures)
    if names == ["all"]:
        names = list(FIGURES)
    for name in names:
        if name not in FIGURES:
            parser.error(f"unknown figure {name!r}; known: "
                         f"{', '.join(FIGURES)} or 'all'")
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    jobs = args.jobs if args.jobs > 0 else default_jobs()
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    if args.claim_batch < 1:
        parser.error("--claim-batch must be >= 1")
    if args.backend == "distributed":
        if not args.queue:
            parser.error("--backend distributed requires --queue DIR "
                         "(the shared work-queue directory)")
        if args.pool and args.workers < 1:
            parser.error("--pool needs self-spawned workers "
                         "(--workers >= 1)")
        from ..runner.distributed import QueueError, WorkQueue
        try:
            WorkQueue(args.queue).ensure()
        except QueueError as exc:
            parser.error(str(exc))
    elif args.queue or args.workers or args.pool or args.claim_batch != 1:
        parser.error("--queue/--workers/--pool/--claim-batch are only "
                     "meaningful with --backend distributed")

    profile = FULL if args.profile == "full" else QUICK
    context = ExecutionContext(
        backend=args.backend, jobs=jobs,
        cache=None if args.no_cache else UnitCache(),
        engine=args.engine,
        progress=print_progress if args.progress else None,
        queue=args.queue, workers=args.workers,
        pool=args.pool, claim_batch=args.claim_batch)
    bench = Workbench(profile=profile, seed=args.seed, context=context,
                      policies=policy_refs)
    config = TINY_CONFIG if args.tiny else PAPER_BASELINE
    try:
        for name in names:
            start = time.time()
            output = run_figure(name, bench, config, patterns)
            elapsed = time.time() - start
            print(output)
            print(f"[{name} regenerated in {elapsed:.1f}s]")
            print()
    finally:
        # Retire backend-held resources (the --pool warm worker
        # fleet) even when a figure fails mid-run.
        context.close()
    totals = bench.runner.totals
    if totals.total_units:
        print(f"[runner: {totals.render()}, jobs={jobs}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
