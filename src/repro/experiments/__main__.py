"""Command-line figure regeneration.

Usage::

    python -m repro.experiments fig5
    python -m repro.experiments fig2 fig4 fig6
    python -m repro.experiments --profile full --jobs 8 fig7
    python -m repro.experiments --tiny --jobs 2 fig2   # CI smoke run
    python -m repro.experiments all

Prints each regenerated figure as a text table.  Figures sharing
simulations (2/4/6) share one memoized workbench, so requesting them
together costs little more than the most expensive one.

``--jobs N`` evaluates sweep points on ``N`` worker processes through
the parallel sweep runner; results are bit-identical to ``--jobs 1``
because every work unit derives its own seed from the run seed and the
unit spec (see :mod:`repro.runner`).  ``--no-cache`` disables the
runner's per-unit result cache (the workbench still memoizes whole
sweeps, but nothing is reused across different sweep grids).
``--tiny`` swaps in a small 3x3 configuration — not the
paper's numbers, just a fast end-to-end smoke of the whole pipeline.
``--engine fast`` runs every simulation on the vectorized array engine
(see README "Simulation engines"); results agree with the reference
engine within the tolerances enforced by the equivalence test suite.
``--backend`` selects the execution backend (README "Execution
backends"): the default ``auto`` batches whole sweeps through the fast
engine's ``run_fixed_batch`` whenever ``--engine fast`` is active —
bit-identical to per-unit execution, several times faster.

``--backend distributed --queue DIR`` publishes sweep shards to a
shared-directory work queue instead of executing in process;
``--workers N`` self-spawns ``N`` local worker subprocesses, while
``--workers 0`` waits for externally started workers (one per host or
process, sharing ``DIR``)::

    python -m repro.experiments worker --queue DIR

runs such a worker until stopped (``--max-tasks`` / ``--max-idle``
bound it).  Results stay bit-identical to serial execution for any
worker count or crash schedule (README "Distributed execution").

``--policy NAME[:key=value,...]`` (repeatable) selects which
registered DVFS policies the figures sweep — the paper's three by
default — and ``--pattern NAME[:key=value,...]`` overrides the
traffic pattern of pattern-based figures.  ``--register MODULE``
imports a plugin module first, so user-defined policies and patterns
(see ``examples/scenario_plugin.py`` and README "Scenarios") flow
through any backend::

    python -m repro.experiments list-scenarios

prints every registered policy and pattern with its parameters.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

from ..core.registry import POLICY_REGISTRY, Ref
from ..noc.config import NocConfig, PAPER_BASELINE
from ..noc.engines import DEFAULT_ENGINE, engine_names
from ..runner import (ExecutionContext, UnitCache, backend_names,
                      default_jobs, print_progress)
from ..traffic.patterns import PATTERN_REGISTRY
from .common import FULL, QUICK, Workbench
from .fig2 import figure2
from .fig4 import figure4
from .fig5 import figure5
from .fig6 import figure6
from .fig7 import figure7
from .fig8 import figure8
from .fig10 import figure10
from .headline import headline_report
from .render import render_figures

FIGURES = ("fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig10",
           "headline")

#: The --tiny smoke configuration: small and fast, same code paths.
TINY_CONFIG = NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                        packet_length=3)


def run_figure(name: str, bench: Workbench,
               config: NocConfig = PAPER_BASELINE,
               patterns: tuple[str, ...] | None = None) -> str:
    """Regenerate one figure by name and return its rendering.

    ``patterns`` overrides the figure's default traffic: single-pattern
    figures (2, 4, 6, headline) use the first entry; Fig. 7 sweeps the
    whole list.  Figures whose workload is fixed by construction
    (5: analytic, 8: uniform sensitivity, 10: app matrices) ignore it.
    """
    pattern = patterns[0] if patterns else "uniform"
    if name == "fig2":
        return render_figures(figure2(bench, config, pattern))
    if name == "fig4":
        return render_figures(figure4(bench, config, pattern))
    if name == "fig5":
        return render_figures([figure5()])
    if name == "fig6":
        return render_figures([figure6(bench, config, pattern)])
    if name == "fig7":
        # Transpose/tornado need the full panel set only on square
        # meshes; the standard pattern set works for any config.
        if patterns:
            return render_figures(figure7(bench, config, patterns))
        return render_figures(figure7(bench, config))
    if name == "fig8":
        return render_figures(figure8(bench, config))
    if name == "fig10":
        return render_figures(figure10(bench, config))
    if name == "headline":
        return headline_report(bench, config, pattern).render()
    raise ValueError(f"unknown figure {name!r}; known: "
                     f"{', '.join(FIGURES)}")


def register_modules(modules: list[str] | None,
                     error) -> None:
    """Import plugin modules that register policies/patterns.

    ``error`` is the parser's ``error`` callable, so a bad module name
    exits with a usage message instead of a traceback.
    """
    for module in modules or []:
        try:
            importlib.import_module(module)
        except ImportError as exc:
            error(f"cannot import --register module {module!r}: {exc}")
        except ValueError as exc:
            # e.g. a plugin re-registering an existing name
            error(f"--register module {module!r} failed: {exc}")


def _parse_refs(values: list[str] | None, validate, flag: str,
                error) -> tuple[Ref, ...] | None:
    if not values:
        return None
    refs = []
    for value in values:
        try:
            refs.append(validate(value))
        except ValueError as exc:
            error(f"{flag} {value!r}: {exc}")
    return tuple(refs)


def list_scenarios_main(argv: list[str]) -> int:
    """``python -m repro.experiments list-scenarios``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments list-scenarios",
        description="List registered DVFS policies and traffic "
                    "patterns (the scenario building blocks; see "
                    "README 'Scenarios').")
    parser.add_argument("--register", action="append", metavar="MODULE",
                        help="import MODULE first (a plugin that "
                             "registers policies/patterns); repeatable")
    args = parser.parse_args(argv)
    register_modules(args.register, parser.error)

    def fmt_params(params):
        if params is None:
            return "any"
        return ", ".join(params) if params else "-"

    print("Policies (repro.core.registry; spell parameters as "
          "NAME:key=value,key=value):")
    for name in POLICY_REGISTRY.names():
        cls = POLICY_REGISTRY.factory(name)
        params = POLICY_REGISTRY.accepted_params(name)
        if POLICY_REGISTRY.has_strategy(name):
            sweep = ("sweep params: "
                     f"{fmt_params(POLICY_REGISTRY.strategy_params(name))}")
            if not POLICY_REGISTRY.is_default(name):
                # Opt-in policies sweep when named (--policy NAME) but
                # stay out of the default figure comparison.
                sweep += "; opt-in (not in default sweeps)"
        else:
            sweep = "transient only (no sweep strategy)"
        print(f"  {name:12s} {cls.__name__:20s} "
              f"controller params: {fmt_params(params)}; {sweep}")
    print()
    print("Traffic patterns (repro.traffic.patterns):")
    for name in PATTERN_REGISTRY.names():
        cls = PATTERN_REGISTRY.factory(name)
        params = PATTERN_REGISTRY.accepted_params(name,
                                                  skip_positional=1)
        print(f"  {name:12s} {cls.__name__:20s} "
              f"params: {fmt_params(params)}")
    return 0


def worker_main(argv: list[str]) -> int:
    """``python -m repro.experiments worker``: drain a work queue."""
    from ..runner.distributed import (DEFAULT_LEASE_TTL_S,
                                      DEFAULT_MAX_ATTEMPTS, QueueError,
                                      Worker, WorkQueue)

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments worker",
        description="Claim and execute sweep shards from a shared "
                    "work-queue directory (see README 'Distributed "
                    "execution').")
    parser.add_argument("--queue", required=True, metavar="DIR",
                        help="work-queue directory shared with the "
                             "driver (created if missing)")
    parser.add_argument("--lease-ttl", type=float,
                        default=DEFAULT_LEASE_TTL_S, metavar="S",
                        help="lease time-to-live in seconds; a "
                             "heartbeat renews it every TTL/3 while a "
                             "task executes (default "
                             f"{DEFAULT_LEASE_TTL_S:g})")
    parser.add_argument("--poll", type=float, default=0.2, metavar="S",
                        help="idle poll interval in seconds "
                             "(default 0.2)")
    parser.add_argument("--max-tasks", type=int, default=None,
                        metavar="N",
                        help="exit after handling N tasks (default: "
                             "unbounded)")
    parser.add_argument("--max-idle", type=float, default=None,
                        metavar="S",
                        help="exit after S seconds without claimable "
                             "work (default: wait forever)")
    parser.add_argument("--max-attempts", type=int,
                        default=DEFAULT_MAX_ATTEMPTS, metavar="N",
                        help="per-task attempt budget before a task "
                             f"is marked failed (default "
                             f"{DEFAULT_MAX_ATTEMPTS})")
    parser.add_argument("--claim-batch", type=int, default=1,
                        metavar="N",
                        help="tasks to claim per queue round-trip "
                             "(default 1; higher cuts filesystem "
                             "chatter on shared/network queues — see "
                             "README 'Distributed execution')")
    args = parser.parse_args(argv)
    if args.lease_ttl <= 0:
        parser.error("--lease-ttl must be > 0")
    if args.max_attempts < 1:
        parser.error("--max-attempts must be >= 1")
    if args.claim_batch < 1:
        parser.error("--claim-batch must be >= 1")
    try:
        queue = WorkQueue(args.queue,
                          lease_ttl_s=args.lease_ttl).ensure()
    except QueueError as exc:
        parser.error(str(exc))
    worker = Worker(queue, max_attempts=args.max_attempts,
                    claim_batch=args.claim_batch)
    handled = worker.run(poll_s=args.poll, max_tasks=args.max_tasks,
                         max_idle_s=args.max_idle)
    print(f"[worker {worker.worker_id}: {handled} task(s) handled, "
          f"{worker.failed} failed]", file=sys.stderr)
    # Non-zero when this worker exhausted any task's retry budget, so
    # supervisors (CI steps, cluster schedulers) notice a worker that
    # can only burn attempts.
    return 1 if worker.failed else 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "worker":
        return worker_main(argv[1:])
    if argv and argv[0] == "list-scenarios":
        return list_scenarios_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate figures of Casu & Giaccone, DATE 2015.")
    parser.add_argument("figures", nargs="+",
                        help=f"figures to regenerate: "
                             f"{', '.join(FIGURES)} or 'all'")
    parser.add_argument("--profile", choices=("quick", "full"),
                        default="quick",
                        help="simulation effort (default: quick)")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        metavar="N",
                        help="worker processes for sweep points "
                             "(default 1 = serial; 0 = all cores); "
                             "results are identical for any value")
    parser.add_argument("--engine", choices=engine_names(),
                        default=DEFAULT_ENGINE,
                        help="simulation backend: 'reference' is the "
                             "object-per-router model, 'fast' the "
                             "vectorized array engine (default: "
                             f"{DEFAULT_ENGINE})")
    parser.add_argument("--backend", choices=backend_names() + ("auto",),
                        default="auto",
                        help="execution backend for sweep points: "
                             "'serial' and 'pool' run one simulation "
                             "per unit, 'batched' runs whole groups in "
                             "one fast-engine invocation; 'auto' "
                             "(default) picks batched for the fast "
                             "engine — results are identical either "
                             "way")
    parser.add_argument("--queue", metavar="DIR", default=None,
                        help="shared work-queue directory for "
                             "--backend distributed (created if "
                             "missing; workers on any host sharing it "
                             "can execute sweep shards)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="local worker subprocesses to self-spawn "
                             "for --backend distributed (default 0 = "
                             "wait for externally started workers)")
    parser.add_argument("--pool", action="store_true",
                        help="keep the self-spawned workers warm "
                             "across all figures this run generates "
                             "instead of spawning a fresh fleet per "
                             "sweep (needs --workers >= 1)")
    parser.add_argument("--claim-batch", type=int, default=1,
                        metavar="N",
                        help="tasks each self-spawned worker claims "
                             "per queue round-trip (default 1; higher "
                             "cuts queue chatter on shared "
                             "filesystems)")
    parser.add_argument("--policy", action="append", metavar="NAME[:k=v,...]",
                        help="sweep this registered policy (repeatable; "
                             "parameters as key=value pairs, e.g. "
                             "dmsd:target_delay_ns=150); default: the "
                             "registry's default ordering — see the "
                             "list-scenarios subcommand")
    parser.add_argument("--pattern", action="append",
                        metavar="NAME[:k=v,...]",
                        help="traffic pattern for pattern-based figures "
                             "(repeatable; fig7 sweeps the whole list, "
                             "other figures use the first; default: "
                             "each figure's own)")
    parser.add_argument("--register", action="append", metavar="MODULE",
                        help="import MODULE before anything else (a "
                             "plugin registering custom policies or "
                             "patterns); repeatable.  With --backend "
                             "distributed the module must also be "
                             "importable on every worker")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the per-unit result cache (no "
                             "simulation reuse across different sweep "
                             "grids or batched submissions)")
    parser.add_argument("--tiny", action="store_true",
                        help="run on a tiny 3x3 mesh (smoke runs/CI, "
                             "not the paper's numbers)")
    parser.add_argument("--progress", action="store_true",
                        help="print per-unit progress to stderr")
    args = parser.parse_args(argv)

    register_modules(args.register, parser.error)
    from ..traffic.patterns import as_pattern_ref
    # --policy refs feed sweeps, so validate against the sweep-strategy
    # factories: `--policy fixed` (no strategy) or a controller-only
    # parameter is a usage error here, not a mid-run traceback.
    policy_refs = _parse_refs(args.policy,
                              POLICY_REGISTRY.validate_sweep_ref,
                              "--policy", parser.error)
    pattern_refs = _parse_refs(args.pattern, as_pattern_ref,
                               "--pattern", parser.error)
    patterns = (tuple(ref.label for ref in pattern_refs)
                if pattern_refs else None)

    names = list(args.figures)
    if names == ["all"]:
        names = list(FIGURES)
    for name in names:
        if name not in FIGURES:
            parser.error(f"unknown figure {name!r}; known: "
                         f"{', '.join(FIGURES)} or 'all'")
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    jobs = args.jobs if args.jobs > 0 else default_jobs()
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    if args.claim_batch < 1:
        parser.error("--claim-batch must be >= 1")
    if args.backend == "distributed":
        if not args.queue:
            parser.error("--backend distributed requires --queue DIR "
                         "(the shared work-queue directory)")
        if args.pool and args.workers < 1:
            parser.error("--pool needs self-spawned workers "
                         "(--workers >= 1)")
        from ..runner.distributed import QueueError, WorkQueue
        try:
            WorkQueue(args.queue).ensure()
        except QueueError as exc:
            parser.error(str(exc))
    elif args.queue or args.workers or args.pool or args.claim_batch != 1:
        parser.error("--queue/--workers/--pool/--claim-batch are only "
                     "meaningful with --backend distributed")

    profile = FULL if args.profile == "full" else QUICK
    context = ExecutionContext(
        backend=args.backend, jobs=jobs,
        cache=None if args.no_cache else UnitCache(),
        engine=args.engine,
        progress=print_progress if args.progress else None,
        queue=args.queue, workers=args.workers,
        pool=args.pool, claim_batch=args.claim_batch)
    bench = Workbench(profile=profile, seed=args.seed, context=context,
                      policies=policy_refs)
    config = TINY_CONFIG if args.tiny else PAPER_BASELINE
    try:
        for name in names:
            start = time.time()
            output = run_figure(name, bench, config, patterns)
            elapsed = time.time() - start
            print(output)
            print(f"[{name} regenerated in {elapsed:.1f}s]")
            print()
    finally:
        # Retire backend-held resources (the --pool warm worker
        # fleet) even when a figure fails mid-run.
        context.close()
    totals = bench.runner.totals
    if totals.total_units:
        print(f"[runner: {totals.render()}, jobs={jobs}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
