"""Command-line figure regeneration.

Usage::

    python -m repro.experiments fig5
    python -m repro.experiments fig2 fig4 fig6
    python -m repro.experiments --profile full fig7
    python -m repro.experiments all

Prints each regenerated figure as a text table.  Figures sharing
simulations (2/4/6) share one memoized workbench, so requesting them
together costs little more than the most expensive one.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..noc.config import PAPER_BASELINE
from .common import FULL, QUICK, Workbench
from .fig2 import figure2
from .fig4 import figure4
from .fig5 import figure5
from .fig6 import figure6
from .fig7 import figure7
from .fig8 import figure8
from .fig10 import figure10
from .headline import headline_report
from .render import render_figures

FIGURES = ("fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig10",
           "headline")


def run_figure(name: str, bench: Workbench) -> str:
    """Regenerate one figure by name and return its rendering."""
    if name == "fig2":
        return render_figures(figure2(bench))
    if name == "fig4":
        return render_figures(figure4(bench))
    if name == "fig5":
        return render_figures([figure5()])
    if name == "fig6":
        return render_figures([figure6(bench)])
    if name == "fig7":
        return render_figures(figure7(bench))
    if name == "fig8":
        return render_figures(figure8(bench))
    if name == "fig10":
        return render_figures(figure10(bench, PAPER_BASELINE))
    if name == "headline":
        return headline_report(bench).render()
    raise ValueError(f"unknown figure {name!r}; known: "
                     f"{', '.join(FIGURES)}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate figures of Casu & Giaccone, DATE 2015.")
    parser.add_argument("figures", nargs="+",
                        help=f"figures to regenerate: "
                             f"{', '.join(FIGURES)} or 'all'")
    parser.add_argument("--profile", choices=("quick", "full"),
                        default="quick",
                        help="simulation effort (default: quick)")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args(argv)

    names = list(args.figures)
    if names == ["all"]:
        names = list(FIGURES)
    for name in names:
        if name not in FIGURES:
            parser.error(f"unknown figure {name!r}; known: "
                         f"{', '.join(FIGURES)} or 'all'")

    profile = FULL if args.profile == "full" else QUICK
    bench = Workbench(profile=profile, seed=args.seed)
    for name in names:
        start = time.time()
        output = run_figure(name, bench)
        elapsed = time.time() - start
        print(output)
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
