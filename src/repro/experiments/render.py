"""Text rendering of figure data.

Each experiment driver returns a ``FigureResult``: named series over a
common x-axis plus the annotations the paper prints on the figure
(e.g. "2.2x").  ``render_figure`` formats it as the table of rows the
paper's plot would show, which is what the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Series:
    """One curve of a figure."""

    name: str
    xs: list[float]
    ys: list[float | None]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.name!r}: {len(self.xs)} xs vs "
                f"{len(self.ys)} ys")

    def y_at(self, x: float) -> float | None:
        """y of the sample closest to ``x``."""
        if not self.xs:
            raise ValueError(f"series {self.name!r} is empty")
        idx = min(range(len(self.xs)), key=lambda i: abs(self.xs[i] - x))
        return self.ys[idx]


@dataclass
class FigureResult:
    """All series of one reproduced figure plus its annotations."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series]
    annotations: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def series_named(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"figure {self.figure_id} has no series {name!r}")

    @property
    def xs(self) -> list[float]:
        return self.series[0].xs if self.series else []


def _fmt(value: float | None, width: int = 10) -> str:
    if value is None:
        return "-".rjust(width)
    if abs(value) >= 1000:
        return f"{value:{width}.0f}"
    return f"{value:{width}.2f}"


def render_figure(fig: FigureResult) -> str:
    """Format one figure's data as an aligned text table."""
    lines = [f"{fig.figure_id} — {fig.title}",
             f"  y: {fig.y_label}"]
    # Column width follows the longest series label (parameterized
    # scenario labels like "deadband:target_delay_ns=60" can exceed
    # the 12 characters the built-in policy names fit in).
    width = max([12] + [len(s.name) + 2 for s in fig.series])
    header = f"{fig.x_label:>12} |" + "".join(
        f"{s.name:>{width}}" for s in fig.series)
    lines.append(header)
    lines.append("-" * len(header))
    # Merge x grids: series may have distinct xs (sensitivity panels).
    all_xs: list[float] = []
    for s in fig.series:
        for x in s.xs:
            if not any(abs(x - seen) < 1e-9 for seen in all_xs):
                all_xs.append(x)
    for x in sorted(all_xs):
        row = [f"{x:12.3f} |"]
        for s in fig.series:
            if any(abs(x - sx) < 1e-9 for sx in s.xs):
                row.append(_fmt(s.y_at(x), width))
            else:
                row.append(" " * width)
        lines.append("".join(row))
    for key, value in fig.annotations.items():
        lines.append(f"  [{key}: {value:.2f}]")
    for note in fig.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def render_figures(figs: list[FigureResult]) -> str:
    return "\n\n".join(render_figure(f) for f in figs)


def ascii_chart(fig: FigureResult, width: int = 60,
                height: int = 16) -> str:
    """Render a figure's series as an ASCII scatter chart.

    A rough visual companion to the tables: each series gets a marker
    character, axes are linear, None samples are skipped.
    """
    points = [(x, y, idx)
              for idx, s in enumerate(fig.series)
              for x, y in zip(s.xs, s.ys) if y is not None]
    if not points:
        raise ValueError(f"figure {fig.figure_id} has no drawable data")
    markers = "ox+*#@"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, idx in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = markers[idx % len(markers)]

    legend = "  ".join(f"{markers[i % len(markers)]}={s.name}"
                       for i, s in enumerate(fig.series))
    lines = [f"{fig.figure_id} — {fig.title}", legend]
    for i, row in enumerate(grid):
        label = (f"{y_hi:9.1f} |" if i == 0
                 else f"{y_lo:9.1f} |" if i == height - 1
                 else " " * 10 + "|")
        lines.append(label + "".join(row))
    lines.append(" " * 10 + "-" * width)
    lines.append(f"{'':10}{x_lo:<10.3f}{fig.x_label:^{width - 20}}"
                 f"{x_hi:>10.3f}")
    return "\n".join(lines)
