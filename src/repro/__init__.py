"""repro — reproduction of "Rate-based vs Delay-based Control for DVFS
in NoC" (Casu & Giaccone, DATE 2015).

The library has five layers (see DESIGN.md):

* :mod:`repro.noc` — a cycle-level virtual-channel mesh NoC simulator
  with decoupled network/node clock domains (the Booksim substitute);
* :mod:`repro.traffic` — synthetic patterns, traffic matrices and the
  paper's two multimedia application graphs;
* :mod:`repro.power` — the 28-nm FDSOI V–F model and activity-based
  power estimation;
* :mod:`repro.core` — the paper's contribution: the RMSD and DMSD
  global DVFS controllers (plus No-DVFS and utilities);
* :mod:`repro.analysis` / :mod:`repro.experiments` — sweeps, trade-off
  metrics, and one driver per paper figure.

Quickstart::

    from repro import (PAPER_BASELINE, PatternTraffic, Simulation,
                       make_pattern)

    cfg = PAPER_BASELINE
    traffic = PatternTraffic(make_pattern("uniform", cfg.make_mesh()), 0.2)
    result = Simulation(cfg, traffic, seed=1).run()
    print(result.mean_delay_ns)
"""

from .analysis import (DmsdSteadyState, NoDvfsSteadyState, RmsdSteadyState,
                       SimBudget, SingleServerDvfs, StrategyResources,
                       SweepSeries, find_saturation_rate, run_sweep,
                       strategy_from_ref)
from .core import (DmsdController, DvfsPolicy, FixedFrequency, NoDvfs,
                   PiController, POLICY_REGISTRY, QuantizedPolicy, Ref,
                   RmsdController, default_policies, make_policy,
                   make_strategy, policy_names, register_policy,
                   register_strategy, rmsd_frequency)
from .noc import (ENGINES, FastNetwork, GHZ, MHZ, NocConfig,
                  PAPER_BASELINE, SMALL_TEST, SimResult, Simulation,
                  engine_names, make_engine)
from .power import (EnergyParameters, FDSOI_28NM, PowerBreakdown,
                    PowerModel, Technology)
from .runner import (ExecutionContext, ExecutionPlan, SweepRunner,
                     UnitCache, UnitResult, WorkUnit, backend_names,
                     default_jobs, make_backend)
from .scenario import ScenarioSpec, run_scenario_sweep
from .traffic import (ApplicationGraph, MatrixTraffic, PATTERN_REGISTRY,
                      PatternTraffic, TrafficMatrix, TrafficPattern,
                      h264_encoder, make_pattern, pattern_names,
                      register_pattern, vce_encoder)

__version__ = "1.0.0"

__all__ = [
    "ApplicationGraph",
    "DmsdController",
    "DmsdSteadyState",
    "DvfsPolicy",
    "ENGINES",
    "EnergyParameters",
    "ExecutionContext",
    "ExecutionPlan",
    "FDSOI_28NM",
    "FastNetwork",
    "FixedFrequency",
    "GHZ",
    "MHZ",
    "MatrixTraffic",
    "NoDvfs",
    "NoDvfsSteadyState",
    "NocConfig",
    "PAPER_BASELINE",
    "PATTERN_REGISTRY",
    "POLICY_REGISTRY",
    "PatternTraffic",
    "PiController",
    "PowerBreakdown",
    "PowerModel",
    "QuantizedPolicy",
    "Ref",
    "RmsdController",
    "RmsdSteadyState",
    "SMALL_TEST",
    "ScenarioSpec",
    "SimBudget",
    "SimResult",
    "Simulation",
    "SingleServerDvfs",
    "StrategyResources",
    "SweepRunner",
    "SweepSeries",
    "Technology",
    "TrafficMatrix",
    "TrafficPattern",
    "UnitCache",
    "UnitResult",
    "WorkUnit",
    "__version__",
    "backend_names",
    "default_jobs",
    "default_policies",
    "engine_names",
    "make_backend",
    "find_saturation_rate",
    "h264_encoder",
    "make_engine",
    "make_pattern",
    "make_policy",
    "make_strategy",
    "pattern_names",
    "policy_names",
    "register_pattern",
    "register_policy",
    "register_strategy",
    "rmsd_frequency",
    "run_scenario_sweep",
    "run_sweep",
    "strategy_from_ref",
    "vce_encoder",
]
