"""Workload families: how offered load behaves over time.

Three families, all registered in :data:`WORKLOAD_REGISTRY` and all
digest-stable:

- **trace replay** (:mod:`repro.workload.trace`) — record per-node
  injection traces and replay them bit-exactly on any backend;
- **bursty sources** (:mod:`repro.workload.bursty`) — Markov-modulated
  on-off (``mmoo``) and heavy-tailed Pareto bursts (``pareto``);
- **app-driven models** (:mod:`repro.workload.apps`) — video
  conference codec frames (``vconf``) and file-transfer backlog
  drains (``filexfer``).

See README "Workloads" for the trace format and the matrix runner.
"""

from .base import (Workload, WORKLOAD_REGISTRY, as_workload_ref,
                   derive_workload_seed, make_workload,
                   register_workload, workload_names)
from .bursty import (MmooWorkload, ParetoBurstWorkload,
                     SegmentedWorkload, normalize_segments)
from .apps import FileTransferWorkload, VideoConferenceWorkload
from .trace import (InjectionTrace, TraceError, TraceTraffic,
                    TraceWorkload, TRACE_MAGIC, list_traces)

__all__ = [
    "Workload",
    "WORKLOAD_REGISTRY",
    "as_workload_ref",
    "derive_workload_seed",
    "make_workload",
    "register_workload",
    "workload_names",
    "SegmentedWorkload",
    "normalize_segments",
    "MmooWorkload",
    "ParetoBurstWorkload",
    "VideoConferenceWorkload",
    "FileTransferWorkload",
    "InjectionTrace",
    "TraceError",
    "TraceTraffic",
    "TraceWorkload",
    "TRACE_MAGIC",
    "list_traces",
]
