"""Bursty workload sources: Markov-modulated on-off and Pareto bursts.

Both families emit a *segment schedule* — alternating high/low rate
phases over node-cycle time — and hand it to
:class:`~repro.traffic.injection.PiecewiseRateTraffic` layered over the
scenario's spatial base spec.  The schedule is normalized so its
time-average factor over the horizon is exactly 1.0: the sweep axis
keeps meaning "mean offered rate", bursts redistribute it in time.

Segment draws come from an RNG seeded via
:func:`~repro.workload.base.derive_workload_seed` (workload identity +
base spec key), so identical parameters over identical base traffic
produce byte-identical schedules — and therefore byte-identical unit
digests — on every process, host and backend.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Callable

import numpy as np

from ..noc.config import NocConfig
from ..traffic.injection import PiecewiseRateTraffic, TrafficSpec
from .base import Workload, derive_workload_seed, register_workload


def normalize_segments(segments: list[tuple[int, float]],
                       horizon: int) -> list[tuple[int, float]]:
    """Truncate a ``(length, factor)`` schedule to ``horizon`` cycles
    and rescale factors so the time-average over the horizon is 1.0.

    The returned schedule covers exactly ``horizon`` cycles; the spec
    holds its last factor beyond that (so budgets should stay inside
    the horizon — see README "Workloads").
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1 node cycle")
    clipped: list[tuple[int, float]] = []
    remaining = horizon
    for length, factor in segments:
        if length < 1:
            raise ValueError("segment lengths must be >= 1 cycle")
        if factor < 0:
            raise ValueError("segment factors must be non-negative")
        take = min(int(length), remaining)
        clipped.append((take, float(factor)))
        remaining -= take
        if remaining == 0:
            break
    if remaining > 0:
        raise ValueError(
            f"segment schedule covers {horizon - remaining} of "
            f"{horizon} horizon cycles")
    mean = sum(length * factor
               for length, factor in clipped) / horizon
    if mean <= 0:
        raise ValueError("segment schedule offers no traffic")
    steps: list[tuple[int, float]] = []
    cycle = 0
    for length, factor in clipped:
        steps.append((cycle, factor / mean))
        cycle += length
    return steps


class SegmentedWorkload(Workload):
    """Shared machinery for schedule-emitting workload sources."""

    def __init__(self, config: NocConfig, horizon: int = 100_000,
                 seed: int = 0) -> None:
        super().__init__(config)
        if horizon < 1:
            raise ValueError("horizon must be >= 1 node cycle")
        self.horizon = int(horizon)
        self.seed = int(seed)

    @abstractmethod
    def param_key(self) -> tuple:
        """Canonical parameter tuple (feeds the derived RNG seed)."""

    @abstractmethod
    def segments(self, rng: np.random.Generator
                 ) -> list[tuple[int, float]]:
        """Raw ``(length, factor)`` schedule covering the horizon."""

    def steps_for(self, spec: TrafficSpec) -> list[tuple[int, float]]:
        """The normalized step schedule for one base spec."""
        rng = np.random.default_rng(derive_workload_seed(
            self.name, self.param_key(), tuple(spec.spec_key()),
            self.seed))
        return normalize_segments(self.segments(rng), self.horizon)

    def traffic(self, base: Callable[[float], TrafficSpec],
                rate: float) -> TrafficSpec:
        spec = base(rate)
        return PiecewiseRateTraffic(spec, self.steps_for(spec))


@register_workload
class MmooWorkload(SegmentedWorkload):
    """Markov-modulated on-off source: geometric dwell times.

    The classic two-state MMOO process: offered load alternates
    between an on factor (``gain``) and an off factor (``low``), with
    dwell times drawn geometrically around ``on``/``off`` mean node
    cycles.  The schedule is normalized to mean factor 1.0, so the
    sweep rate stays the mean offered rate.
    """

    name = "mmoo"

    def __init__(self, config: NocConfig, on: int = 2_000,
                 off: int = 2_000, gain: float = 1.8,
                 low: float = 0.2, horizon: int = 100_000,
                 seed: int = 0) -> None:
        super().__init__(config, horizon=horizon, seed=seed)
        if on < 1 or off < 1:
            raise ValueError("mean dwell times must be >= 1 cycle")
        if gain <= 0:
            raise ValueError("on-phase gain must be positive")
        if low < 0:
            raise ValueError("off-phase factor must be non-negative")
        self.on = int(on)
        self.off = int(off)
        self.gain = float(gain)
        self.low = float(low)

    def param_key(self) -> tuple:
        return (("gain", repr(self.gain)), ("horizon", self.horizon),
                ("low", repr(self.low)), ("off", self.off),
                ("on", self.on))

    def segments(self, rng: np.random.Generator
                 ) -> list[tuple[int, float]]:
        out: list[tuple[int, float]] = []
        covered = 0
        while covered < self.horizon:
            on_len = int(rng.geometric(1.0 / self.on))
            out.append((on_len, self.gain))
            covered += on_len
            if covered >= self.horizon:
                break
            off_len = int(rng.geometric(1.0 / self.off))
            out.append((off_len, self.low))
            covered += off_len
        return out


@register_workload
class ParetoBurstWorkload(SegmentedWorkload):
    """Pareto-burst source: heavy-tailed on phases, geometric gaps.

    On-phase durations follow a truncated Pareto distribution
    (``shape``, minimum ``min_on`` cycles, capped at a quarter of the
    horizon so a single burst cannot swallow the schedule); gaps are
    geometric around ``off``.  Heavy-tailed bursts are the standard
    stress model for rate-based controllers: long overload phases at
    ``gain`` times the mean rate.
    """

    name = "pareto"

    def __init__(self, config: NocConfig, shape: float = 1.5,
                 min_on: int = 500, off: int = 2_000,
                 gain: float = 1.8, low: float = 0.1,
                 horizon: int = 100_000, seed: int = 0) -> None:
        super().__init__(config, horizon=horizon, seed=seed)
        if shape <= 0:
            raise ValueError("pareto shape must be positive")
        if min_on < 1 or off < 1:
            raise ValueError("burst/gap lengths must be >= 1 cycle")
        if gain <= 0:
            raise ValueError("burst gain must be positive")
        if low < 0:
            raise ValueError("gap factor must be non-negative")
        self.shape = float(shape)
        self.min_on = int(min_on)
        self.off = int(off)
        self.gain = float(gain)
        self.low = float(low)

    def param_key(self) -> tuple:
        return (("gain", repr(self.gain)), ("horizon", self.horizon),
                ("low", repr(self.low)), ("min_on", self.min_on),
                ("off", self.off), ("shape", repr(self.shape)))

    def segments(self, rng: np.random.Generator
                 ) -> list[tuple[int, float]]:
        cap = max(self.min_on, self.horizon // 4)
        out: list[tuple[int, float]] = []
        covered = 0
        while covered < self.horizon:
            on_len = min(cap,
                         int(self.min_on * (1.0 + rng.pareto(self.shape))))
            out.append((on_len, self.gain))
            covered += on_len
            if covered >= self.horizon:
                break
            off_len = int(rng.geometric(1.0 / self.off))
            out.append((off_len, self.low))
            covered += off_len
        return out
