"""App-driven workload models: codec frames and file-transfer drains.

Where :mod:`repro.traffic.apps` maps *static* task-graph traffic onto
the mesh, these workloads model what an application does over time: a
video-conference codec emits one frame per interval with strongly
size-dependent load (I frames several times a P frame, plus content
jitter), and a file transfer alternates backlog drains at full rate
with idle gaps.  Both emit rate segments consumed by
:class:`~repro.traffic.injection.PiecewiseRateTraffic` over whatever
spatial base the scenario selects — so ``vconf`` over the ``vce``
app matrix or over a synthetic pattern both work.

Like the bursty sources, schedules normalize to mean factor 1.0 and
draw jitter from a seed derived of the workload identity and base spec
key, keeping digests byte-stable everywhere.
"""

from __future__ import annotations

import numpy as np

from ..noc.config import NocConfig
from .base import register_workload
from .bursty import SegmentedWorkload


@register_workload
class VideoConferenceWorkload(SegmentedWorkload):
    """Video-conference codec: per-frame load with I/P size variation.

    One segment per frame interval (``frame_cycles`` node cycles).
    Every ``gop``-th frame is an I frame at ``i_gain`` times the P-frame
    load; every frame additionally varies by ±``jitter`` (uniform,
    multiplicative) to model content-dependent frame sizes — the
    D'Aronco-style delay-constrained source whose offered rate is the
    output of the codec loop, not a constant.
    """

    name = "vconf"

    def __init__(self, config: NocConfig, frame_cycles: int = 4_000,
                 gop: int = 12, i_gain: float = 3.0,
                 jitter: float = 0.3, horizon: int = 100_000,
                 seed: int = 0) -> None:
        super().__init__(config, horizon=horizon, seed=seed)
        if frame_cycles < 1:
            raise ValueError("frame interval must be >= 1 node cycle")
        if gop < 1:
            raise ValueError("GOP length must be >= 1 frame")
        if i_gain <= 0:
            raise ValueError("I-frame gain must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("frame-size jitter must be in [0, 1)")
        self.frame_cycles = int(frame_cycles)
        self.gop = int(gop)
        self.i_gain = float(i_gain)
        self.jitter = float(jitter)

    def param_key(self) -> tuple:
        return (("frame_cycles", self.frame_cycles),
                ("gop", self.gop), ("horizon", self.horizon),
                ("i_gain", repr(self.i_gain)),
                ("jitter", repr(self.jitter)))

    def segments(self, rng: np.random.Generator
                 ) -> list[tuple[int, float]]:
        frames = -(-self.horizon // self.frame_cycles)  # ceil div
        out: list[tuple[int, float]] = []
        for frame in range(frames):
            size = self.i_gain if frame % self.gop == 0 else 1.0
            size *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            out.append((self.frame_cycles, size))
        return out


@register_workload
class FileTransferWorkload(SegmentedWorkload):
    """File transfer: periodic backlog drains at full rate, then idle.

    Each ``period`` starts with a backlog whose size varies by
    ±``jitter``; the transfer drains it at ``gain`` times the mean rate
    for a ``duty`` fraction of the period, then drops to an ``idle``
    trickle until the next batch arrives.
    """

    name = "filexfer"

    def __init__(self, config: NocConfig, period: int = 16_000,
                 duty: float = 0.4, gain: float = 2.0,
                 idle: float = 0.05, jitter: float = 0.5,
                 horizon: int = 100_000, seed: int = 0) -> None:
        super().__init__(config, horizon=horizon, seed=seed)
        if period < 2:
            raise ValueError("drain period must be >= 2 node cycles")
        if not 0.0 < duty < 1.0:
            raise ValueError("drain duty must be in (0, 1)")
        if gain <= 0:
            raise ValueError("drain gain must be positive")
        if idle < 0:
            raise ValueError("idle factor must be non-negative")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("backlog jitter must be in [0, 1)")
        self.period = int(period)
        self.duty = float(duty)
        self.gain = float(gain)
        self.idle = float(idle)
        self.jitter = float(jitter)

    def param_key(self) -> tuple:
        return (("duty", repr(self.duty)), ("gain", repr(self.gain)),
                ("horizon", self.horizon), ("idle", repr(self.idle)),
                ("jitter", repr(self.jitter)), ("period", self.period))

    def segments(self, rng: np.random.Generator
                 ) -> list[tuple[int, float]]:
        periods = -(-self.horizon // self.period)  # ceil div
        out: list[tuple[int, float]] = []
        for _ in range(periods):
            backlog = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            drain = int(round(self.period * self.duty * backlog))
            drain = min(max(drain, 1), self.period - 1)
            out.append((drain, self.gain))
            out.append((self.period - drain, self.idle))
        return out
