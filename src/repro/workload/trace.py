"""Injection-trace recording and bit-exact replay.

An :class:`InjectionTrace` is the full arrival record of one traffic
spec over a node-cycle window: every ``(cycle, src, dst)`` packet
injection, plus the header needed to re-drive a mesh with it.  Traces
have a versioned, compressed on-disk format and a content digest, and
replay through :class:`TraceTraffic` — a ``TrafficSpec`` whose
arrivals *are* the recorded events.  Replay consumes no randomness,
so it is bit-identical across the serial, batched and distributed
backends by construction, and the trace digest keys the replaying
unit's spec (cache entries, derived seeds and distributed task ids)
exactly like any other traffic identity.

On-disk format (``*.trace``)::

    repro-trace v1\\n
    {json header}\\n
    zlib(little-endian int64 events, shape E x 3)

The header carries ``num_nodes``, ``packet_length``, ``node_cycles``,
the event count, the content digest and a free-form ``source`` label.
The digest covers the arrival data and the replay-relevant header
fields — ``source`` is provenance metadata, excluded like the scenario
metadata on work units.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from pathlib import Path
from typing import Callable

import numpy as np

from ..noc.config import NocConfig
from ..traffic.injection import InjectionProcess, TrafficSpec
from .base import Workload, register_workload

#: First line of every trace file; bump the version for layout changes.
TRACE_MAGIC = b"repro-trace v1\n"


class TraceError(ValueError):
    """A trace file is missing, malformed, or fails its digest."""


class InjectionTrace:
    """A recorded arrival stream: header plus ``(cycle, src, dst)``."""

    def __init__(self, num_nodes: int, packet_length: int,
                 node_cycles: int, events: np.ndarray,
                 source: str = "") -> None:
        if num_nodes < 1:
            raise ValueError("a trace needs at least one node")
        if packet_length < 1:
            raise ValueError("packet length must be >= 1")
        if node_cycles < 1:
            raise ValueError("a trace must cover >= 1 node cycle")
        events = np.ascontiguousarray(events, dtype=np.int64)
        if events.size == 0:
            events = events.reshape(0, 3)
        if events.ndim != 2 or events.shape[1] != 3:
            raise ValueError(
                f"events must be (cycle, src, dst) rows, got shape "
                f"{events.shape}")
        if len(events):
            cycles, srcs, dsts = events.T
            if (np.diff(cycles) < 0).any():
                raise ValueError("events must be sorted by cycle")
            if cycles[0] < 0 or cycles[-1] >= node_cycles:
                raise ValueError(
                    f"event cycles must lie in [0, {node_cycles})")
            for name, col in (("src", srcs), ("dst", dsts)):
                if col.min() < 0 or col.max() >= num_nodes:
                    raise ValueError(
                        f"{name} node outside [0, {num_nodes})")
        self.num_nodes = int(num_nodes)
        self.packet_length = int(packet_length)
        self.node_cycles = int(node_cycles)
        self.events = events
        self.source = str(source)
        self._digest: str | None = None

    # --- identity -------------------------------------------------------
    def digest(self) -> str:
        """Stable content hash (the replaying spec's identity)."""
        if self._digest is None:
            payload = hashlib.sha256(self.events.astype("<i8").tobytes())
            self._digest = hashlib.sha256(repr(
                ("trace-v1", self.num_nodes, self.packet_length,
                 self.node_cycles, len(self.events),
                 payload.hexdigest())).encode()).hexdigest()
        return self._digest

    # --- derived quantities ---------------------------------------------
    def node_rates(self) -> np.ndarray:
        """Empirical per-node offered rate, flits per node cycle."""
        packets = np.bincount(self.events[:, 1],
                              minlength=self.num_nodes)
        return packets * self.packet_length / self.node_cycles

    def mean_node_rate(self) -> float:
        return float(self.node_rates().mean())

    # --- recording ------------------------------------------------------
    @classmethod
    def record(cls, spec: TrafficSpec, packet_length: int,
               node_cycles: int, seed: int,
               source: str = "") -> "InjectionTrace":
        """Record ``spec``'s arrivals over ``node_cycles`` node cycles.

        Draws one node cycle at a time — the same per-node-cycle
        alignment of arrival and destination draws a simulation uses —
        so a trace recorded with a run's seed contains exactly the
        arrivals that run injects (for homogeneous node clocks).
        """
        process = InjectionProcess(spec, packet_length,
                                   np.random.default_rng(seed))
        rows: list[tuple[int, int, int]] = []
        for cycle in range(node_cycles):
            for offset, src, dst in process.arrivals(1):
                rows.append((cycle + offset, src, dst))
        events = np.array(rows, dtype=np.int64).reshape(len(rows), 3)
        return cls(process.num_nodes, packet_length, node_cycles,
                   events, source=source)

    # --- on-disk format -------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the versioned, compressed trace file."""
        path = Path(path)
        header = {
            "num_nodes": self.num_nodes,
            "packet_length": self.packet_length,
            "node_cycles": self.node_cycles,
            "events": len(self.events),
            "digest": self.digest(),
            "source": self.source,
        }
        blob = zlib.compress(self.events.astype("<i8").tobytes(),
                             level=6)
        path.write_bytes(TRACE_MAGIC
                         + json.dumps(header, sort_keys=True).encode()
                         + b"\n" + blob)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "InjectionTrace":
        """Read and fully validate a trace file (digest included)."""
        path = Path(path)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise TraceError(f"cannot read trace {path}: {exc}") from exc
        if not raw.startswith(TRACE_MAGIC):
            raise TraceError(
                f"{path} is not a repro trace (expected it to start "
                f"with {TRACE_MAGIC!r})")
        body = raw[len(TRACE_MAGIC):]
        header_line, sep, blob = body.partition(b"\n")
        if not sep:
            raise TraceError(f"{path}: truncated trace header")
        try:
            header = json.loads(header_line)
            events = np.frombuffer(zlib.decompress(blob),
                                   dtype="<i8").astype(np.int64)
            trace = cls(header["num_nodes"], header["packet_length"],
                        header["node_cycles"],
                        events.reshape(header["events"], 3),
                        source=header.get("source", ""))
            recorded_digest = header["digest"]
        except (KeyError, TypeError, ValueError, zlib.error) as exc:
            raise TraceError(f"{path}: malformed trace: {exc}") from exc
        if trace.digest() != recorded_digest:
            raise TraceError(
                f"{path}: digest mismatch — file corrupted or edited "
                f"(recorded {recorded_digest[:12]}..., recomputed "
                f"{trace.digest()[:12]}...)")
        return trace


def list_traces(directory: str | Path) -> list[Path]:
    """Trace files under ``directory``, in sorted (stable) order."""
    return sorted(Path(directory).glob("*.trace"))


class TraceTraffic(TrafficSpec):
    """Replays an :class:`InjectionTrace` bit-exactly.

    Arrivals come from :meth:`TrafficSpec.replay_events` — the
    injection process emits the recorded events and draws nothing, so
    the replayed run is independent of backend, chunking and DVFS
    trajectory.  ``node_rates`` reports the trace's empirical rates
    (what the sweep axis and saturation checks see).  Beyond the
    recorded horizon the trace offers nothing.
    """

    def __init__(self, trace: InjectionTrace) -> None:
        self.trace = trace
        self._cycles = np.ascontiguousarray(trace.events[:, 0])

    def node_rates(self) -> np.ndarray:
        return self.trace.node_rates()

    @property
    def is_time_varying(self) -> bool:
        return True

    def replay_events(self, start_cycle: int, count: int
                      ) -> list[tuple[int, int, int]]:
        lo = np.searchsorted(self._cycles, start_cycle, side="left")
        hi = np.searchsorted(self._cycles, start_cycle + count,
                             side="left")
        window = self.trace.events[lo:hi]
        return [(int(c) - start_cycle, int(s), int(d))
                for c, s, d in window.tolist()]

    def draw_dest(self, src: int, rng: np.random.Generator) -> int | None:
        raise NotImplementedError(
            "trace replay emits recorded arrivals; destinations are "
            "never drawn")

    def scaled(self, factor: float) -> "TraceTraffic":
        if factor == 1.0:
            return self
        raise ValueError(
            f"a recorded trace replays at its recorded rate "
            f"({self.trace.mean_node_rate():.4g} flits/node-cycle "
            f"mean); re-record at the desired rate instead of scaling "
            f"by {factor!r}")

    def spec_key(self) -> tuple:
        return ("trace", self.trace.digest())


@register_workload
class TraceWorkload(Workload):
    """Replay a recorded injection trace (``trace:path=FILE``).

    The trace file must match the scenario's mesh size and packet
    length.  The sweep rate is label/coordinate only: offered load is
    exactly the recorded stream, whatever rates the sweep names (the
    trace's empirical mean rate is printed by the ``record`` verb).
    """

    name = "trace"

    def __init__(self, config: NocConfig, path: str) -> None:
        super().__init__(config)
        self.path = str(path)
        self._trace = InjectionTrace.load(self.path)
        if self._trace.num_nodes != config.num_nodes:
            raise ValueError(
                f"trace {self.path} records {self._trace.num_nodes} "
                f"nodes; config has {config.num_nodes}")
        if self._trace.packet_length != config.packet_length:
            raise ValueError(
                f"trace {self.path} records packet length "
                f"{self._trace.packet_length}; config uses "
                f"{config.packet_length}")

    def traffic(self, base: Callable[[float], TrafficSpec],
                rate: float) -> TrafficSpec:
        return TraceTraffic(self._trace)
