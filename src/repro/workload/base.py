"""The workload registry: what *drives* the mesh, as data.

A :class:`Workload` transforms a scenario's ``rate -> TrafficSpec``
mapping: the spatial distribution still comes from the traffic pattern
(or app matrix), the workload decides how offered load behaves over
node-cycle *time* — bursty on/off phases, application frame cadences,
or the bit-exact replay of a recorded trace.  Workloads are the third
scenario dimension next to policies and patterns, registered in
:data:`WORKLOAD_REGISTRY` (built on the same
:class:`~repro.core.registry.Registry`), so a
``Ref`` like ``mmoo:gain=1.8`` flows through ``ScenarioSpec``, the
sweep planner, the batched kernel and the distributed queue without
any of those layers knowing it exists.

Determinism contract: everything a workload generates must be a pure
function of its parameters and the base traffic spec.  Stochastic
workloads derive their RNG seed from the canonical workload/spec key
via :func:`derive_workload_seed` — the same construction the runner
uses for unit seeds — so the emitted rate segments (and therefore the
resulting traffic digests) are byte-stable across processes, hosts and
backends.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Callable

from ..core.registry import Ref, Registry
from ..noc.config import NocConfig
from ..traffic.injection import TrafficSpec

#: The process-wide workload registry — the third scenario dimension
#: next to ``POLICY_REGISTRY`` and ``PATTERN_REGISTRY``.  Factories
#: take the scenario's config first, then the workload's parameters.
WORKLOAD_REGISTRY = Registry("workload")


def register_workload(cls=None, *, name: str | None = None,
                      replace: bool = False):
    """Class decorator registering a ``Workload`` under its name.

    Usable bare (``@register_workload``) or parameterized
    (``@register_workload(name="mine")``).  Registered workloads are
    reachable everywhere a workload name is accepted: ``ScenarioSpec``,
    the ``matrix`` subcommand's ``--workload`` flag, and sweep-service
    submissions.
    """
    return WORKLOAD_REGISTRY.registering(cls, name=name, replace=replace)


def workload_names() -> tuple[str, ...]:
    """All registered workload names, in registration order."""
    return WORKLOAD_REGISTRY.names()


def as_workload_ref(workload: "Ref | str") -> Ref:
    """Coerce and fully validate a workload reference (name + params)."""
    return WORKLOAD_REGISTRY.validate_ref(workload, skip_positional=1)


def make_workload(workload: "Ref | str", config: NocConfig,
                  **kwargs) -> "Workload":
    """Instantiate a **fresh** registered workload for this config."""
    return WORKLOAD_REGISTRY.create(workload, config, **kwargs)


def derive_workload_seed(name: str, param_key: tuple,
                         base_key: tuple, seed: int) -> int:
    """The RNG seed for one workload applied to one base spec.

    Hashes the canonical workload identity together with the base
    traffic's spec key, exactly the way unit seeds derive from unit
    digests: two processes (or two backends) that build the same
    workload over the same base spec draw the same segments, and any
    change to either side changes the stream.
    """
    material = repr(("workload-v1", name, tuple(param_key),
                     tuple(base_key), int(seed)))
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class Workload(ABC):
    """Shapes a scenario's offered load over node-cycle time.

    Subclasses implement :meth:`traffic`, mapping the scenario's base
    factory (rate -> spatial ``TrafficSpec``) and one sweep rate to the
    spec the simulation actually injects — typically the base spec
    wrapped in a :class:`~repro.traffic.injection.PiecewiseRateTraffic`
    whose segments the workload generates.
    """

    #: registry name, set by subclasses
    name: str = "abstract"

    def __init__(self, config: NocConfig) -> None:
        self.config = config

    @abstractmethod
    def traffic(self, base: Callable[[float], TrafficSpec],
                rate: float) -> TrafficSpec:
        """The injected spec for one sweep rate."""

    def describe(self) -> str:
        """One-line summary for ``list-scenarios``."""
        doc = type(self).__doc__ or ""
        return doc.strip().splitlines()[0] if doc.strip() else self.name
