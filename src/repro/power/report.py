"""Human-readable power reports.

Small formatting helpers shared by examples and experiment renderers:
component breakdown tables and policy-vs-policy comparison rows in the
style of the paper's Fig. 6 annotations ("2.2x", "1.3x").
"""

from __future__ import annotations

from .model import PowerBreakdown

_COMPONENT_LABELS = (
    ("buffer_mw", "input buffers"),
    ("xbar_mw", "crossbar"),
    ("link_mw", "links"),
    ("allocator_mw", "allocators"),
    ("clock_mw", "clock tree"),
    ("leakage_mw", "leakage"),
)


def breakdown_table(breakdown: PowerBreakdown, title: str = "NoC power") -> str:
    """Render a component-by-component power table."""
    lines = [f"{title}:"]
    total = breakdown.total_mw
    for attr, label in _COMPONENT_LABELS:
        value = getattr(breakdown, attr)
        share = 100.0 * value / total if total > 0 else 0.0
        lines.append(f"  {label:<14} {value:8.2f} mW  ({share:5.1f}%)")
    lines.append(f"  {'total':<14} {total:8.2f} mW")
    return "\n".join(lines)


def comparison_row(label: str, base_mw: float, other_mw: float) -> str:
    """One 'A is Nx of B' comparison line (Fig. 6 style annotation)."""
    if other_mw <= 0:
        raise ValueError("reference power must be positive")
    factor = base_mw / other_mw
    return (f"{label}: {base_mw:7.2f} mW vs {other_mw:7.2f} mW  "
            f"({factor:.2f}x)")


def ratio(a: float, b: float) -> float:
    """Safe ratio helper used across reports."""
    if b == 0:
        raise ZeroDivisionError("reference value is zero")
    return a / b


def power_heatmap(per_router_mw: list[float], width: int,
                  height: int) -> str:
    """Render a per-router power map as a mesh-shaped text grid.

    ``per_router_mw`` comes from
    :meth:`repro.power.PowerModel.router_power_map`; values are laid
    out row-major like node ids, with a shade marker scaled to the
    hottest router.
    """
    if len(per_router_mw) != width * height:
        raise ValueError(f"expected {width * height} values, got "
                         f"{len(per_router_mw)}")
    peak = max(per_router_mw)
    shades = " .:-=+*#%@"
    lines = [f"per-router power (mW), peak {peak:.2f}:"]
    for y in range(height):
        row = []
        for x in range(width):
            value = per_router_mw[x + y * width]
            shade = shades[min(len(shades) - 1,
                               int(value / peak * (len(shades) - 1))
                               if peak > 0 else 0)]
            row.append(f"{value:6.2f}{shade}")
        lines.append(" ".join(row))
    return "\n".join(lines)
