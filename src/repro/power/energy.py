"""Per-event energy and static power parameters.

The paper imports switching-activity traces from Booksim into the
Synopsys power-estimation flow against a synthesized 28-nm FDSOI
router.  Without the EDA tools we use the identical *structure* —
energy per microarchitectural event, clock-tree power proportional to
``V^2 * f``, leakage growing with voltage — with constants calibrated
so the absolute magnitude and the paper's headline ratios land in band
(see DESIGN.md: No-DVFS 5x5 at 1 GHz spans roughly 45 mW near zero
load to ~250 mW near saturation, Fig. 6).

All event energies are given at the nominal voltage (0.9 V) and scale
with ``(V / Vnom)^2``; leakage scales with ``(V / Vnom)^leak_exponent``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class EnergyParameters:
    """Calibration constants of the activity-based power model."""

    #: energy per flit written into a VC buffer (pJ at Vnom)
    e_buffer_write_pj: float = 1.2
    #: energy per flit read out of a VC buffer (pJ at Vnom)
    e_buffer_read_pj: float = 0.8
    #: energy per flit crossing the switch (pJ at Vnom)
    e_xbar_pj: float = 1.5
    #: energy per flit traversing an inter-router link (pJ at Vnom)
    e_link_pj: float = 1.8
    #: energy per successful VC allocation (pJ at Vnom)
    e_vc_alloc_pj: float = 0.6
    #: energy per switch-allocator grant (pJ at Vnom)
    e_sa_grant_pj: float = 0.25
    #: clock tree + idle pipeline power per router at (Fmax, Vnom), mW
    p_clock_router_mw: float = 1.9
    #: leakage power per router at Vnom, mW
    p_leak_router_mw: float = 0.35
    #: voltage exponent of the leakage model (DIBL-dominated)
    leak_exponent: float = 3.0
    #: nominal voltage the event energies are characterized at
    v_nom: float = 0.9
    #: frequency the clock power is characterized at (Hz)
    f_ref_hz: float = 1.0e9

    def __post_init__(self) -> None:
        numeric = (self.e_buffer_write_pj, self.e_buffer_read_pj,
                   self.e_xbar_pj, self.e_link_pj, self.e_vc_alloc_pj,
                   self.e_sa_grant_pj, self.p_clock_router_mw,
                   self.p_leak_router_mw)
        if any(v < 0 for v in numeric):
            raise ValueError("energies and powers must be non-negative")
        if self.v_nom <= 0 or self.f_ref_hz <= 0:
            raise ValueError("nominal voltage and frequency must be positive")
        if self.leak_exponent < 1.0:
            raise ValueError("leakage exponent below 1 is unphysical")

    def with_(self, **changes) -> "EnergyParameters":
        """Copy with selected constants replaced (for ablations)."""
        return replace(self, **changes)


#: Default calibration targeting the paper's 5x5 power magnitudes.
DEFAULT_28NM = EnergyParameters()
