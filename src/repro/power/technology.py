"""28-nm FDSOI voltage–frequency characteristic (paper Fig. 5).

The paper extracts the router's maximum clock frequency versus supply
voltage from transistor-level (Eldo) simulation of the synthesized
netlist, and reports two anchor operating points in the text:
``333 MHz @ 0.56 V`` and ``1 GHz @ 0.90 V``.  We model the curve with
the standard alpha-power delay law

    f_max(V) = K * (V - Vt)^alpha / V

whose two free parameters (``K``, ``alpha``) are fitted exactly
through the published anchors for a fixed threshold ``Vt``.  Any
smooth monotone curve through the anchors reproduces the paper's
power *ratios*, which is all the evaluation consumes (DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class VfAnchor:
    """One published (voltage, max frequency) operating point."""

    voltage_v: float
    freq_hz: float


#: Anchors given in the paper's Sec. IV-A.
PAPER_ANCHORS = (VfAnchor(0.56, 333e6), VfAnchor(0.90, 1.0e9))


class Technology:
    """Alpha-power-law V–F model with exact fit through two anchors."""

    def __init__(self, anchors: tuple[VfAnchor, VfAnchor] = PAPER_ANCHORS,
                 threshold_v: float = 0.35) -> None:
        lo, hi = sorted(anchors, key=lambda a: a.voltage_v)
        if lo.voltage_v <= threshold_v:
            raise ValueError("anchor voltage must exceed the threshold")
        if lo.freq_hz >= hi.freq_hz:
            raise ValueError("frequency must increase with voltage")
        self.threshold_v = threshold_v
        self.v_min = lo.voltage_v
        self.v_max = hi.voltage_v
        self.f_min_hz = lo.freq_hz
        self.f_max_hz = hi.freq_hz
        # Solve f = K (V - Vt)^alpha / V exactly through both anchors.
        ratio_f = (hi.freq_hz * hi.voltage_v) / (lo.freq_hz * lo.voltage_v)
        ratio_v = (hi.voltage_v - threshold_v) / (lo.voltage_v - threshold_v)
        self.alpha = math.log(ratio_f) / math.log(ratio_v)
        self.k = (hi.freq_hz * hi.voltage_v
                  / (hi.voltage_v - threshold_v) ** self.alpha)

    # ------------------------------------------------------------------
    def frequency_at(self, voltage_v: float) -> float:
        """Maximum clock frequency (Hz) at supply ``voltage_v``."""
        if voltage_v <= self.threshold_v:
            return 0.0
        return (self.k * (voltage_v - self.threshold_v) ** self.alpha
                / voltage_v)

    def voltage_for(self, freq_hz: float) -> float:
        """Minimum supply (V) that sustains ``freq_hz``.

        Inverts the alpha-power law by bisection.  Frequencies below
        the published minimum clip to the minimum anchor voltage (the
        regulator does not go lower); frequencies above the maximum
        anchor raise, because the paper's DVFS range ends at 1 GHz.
        """
        if freq_hz <= 0:
            raise ValueError("frequency must be positive")
        if freq_hz <= self.frequency_at(self.v_min):
            return self.v_min
        f_at_vmax = self.frequency_at(self.v_max)
        if freq_hz > f_at_vmax * (1 + 1e-9):
            raise ValueError(
                f"{freq_hz/1e6:.0f} MHz exceeds the technology maximum "
                f"{f_at_vmax/1e6:.0f} MHz at {self.v_max} V")
        lo, hi = self.v_min, self.v_max
        for _ in range(64):
            mid = 0.5 * (lo + hi)
            if self.frequency_at(mid) < freq_hz:
                lo = mid
            else:
                hi = mid
        return hi

    # ------------------------------------------------------------------
    def vf_table(self, points: int = 15) -> list[tuple[float, float]]:
        """(voltage, frequency) samples across the DVFS range — Fig. 5."""
        if points < 2:
            raise ValueError("need at least two points")
        step = (self.v_max - self.v_min) / (points - 1)
        return [(self.v_min + i * step,
                 self.frequency_at(self.v_min + i * step))
                for i in range(points)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Technology(alpha={self.alpha:.3f}, "
                f"Vt={self.threshold_v} V, "
                f"{self.f_min_hz/1e6:.0f} MHz@{self.v_min} V .. "
                f"{self.f_max_hz/1e6:.0f} MHz@{self.v_max} V)")


#: Default instance used throughout the library.
FDSOI_28NM = Technology()
