"""Activity-based NoC power estimation (paper Sec. IV-A).

``PowerModel.evaluate`` turns the per-frequency-interval activity
records produced by a simulation (``PowerWindow``) into the total NoC
power that paper Fig. 6 plots: dynamic energy per microarchitectural
event scaled by ``(V/Vnom)^2`` at the voltage the DVFS controller
selected, clock-tree power scaling with ``V^2 f``, and leakage scaling
with a voltage power law.  Because windows are recorded per interval
of *constant* frequency, DVFS trajectories integrate exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..noc.config import NocConfig
from ..noc.stats import PowerWindow
from .energy import DEFAULT_28NM, EnergyParameters
from .technology import FDSOI_28NM, Technology


@dataclass(frozen=True)
class PowerBreakdown:
    """NoC power split by mechanism, all in milliwatts."""

    buffer_mw: float
    xbar_mw: float
    link_mw: float
    allocator_mw: float
    clock_mw: float
    leakage_mw: float

    @property
    def dynamic_mw(self) -> float:
        return (self.buffer_mw + self.xbar_mw + self.link_mw
                + self.allocator_mw + self.clock_mw)

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw

    def scaled(self, factor: float) -> "PowerBreakdown":
        return PowerBreakdown(*(getattr(self, f) * factor
                                for f in self.__dataclass_fields__))

    def __add__(self, other: "PowerBreakdown") -> "PowerBreakdown":
        return PowerBreakdown(*(getattr(self, f) + getattr(other, f)
                                for f in self.__dataclass_fields__))

    @classmethod
    def zero(cls) -> "PowerBreakdown":
        return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


class PowerModel:
    """Maps activity windows to power for a given NoC configuration."""

    def __init__(self, config: NocConfig,
                 params: EnergyParameters = DEFAULT_28NM,
                 technology: Technology = FDSOI_28NM) -> None:
        self.config = config
        self.params = params
        self.technology = technology

    # ------------------------------------------------------------------
    def window_power(self, window: PowerWindow) -> PowerBreakdown:
        """Average power over one constant-frequency interval."""
        if window.duration_ns <= 0:
            raise ValueError("power window must have positive duration")
        p = self.params
        voltage = self.technology.voltage_for(window.freq_hz)
        v_scale = (voltage / p.v_nom) ** 2
        act = window.activity

        # Dynamic switching energy: events * pJ -> mW over duration_ns
        # (1 pJ / 1 ns = 1 mW).
        def event_mw(count: int, pj: float) -> float:
            return count * pj * v_scale / window.duration_ns

        buffer_mw = (event_mw(act.buffer_writes, p.e_buffer_write_pj)
                     + event_mw(act.buffer_reads, p.e_buffer_read_pj))
        xbar_mw = event_mw(act.xbar_traversals, p.e_xbar_pj)
        link_mw = event_mw(act.link_flits, p.e_link_pj)
        alloc_mw = (event_mw(act.vc_allocs, p.e_vc_alloc_pj)
                    + event_mw(act.sa_grants, p.e_sa_grant_pj))

        routers = self.config.num_nodes
        clock_mw = (p.p_clock_router_mw * routers * v_scale
                    * window.freq_hz / p.f_ref_hz)
        leak_mw = (p.p_leak_router_mw * routers
                   * (voltage / p.v_nom) ** p.leak_exponent)
        return PowerBreakdown(buffer_mw, xbar_mw, link_mw, alloc_mw,
                              clock_mw, leak_mw)

    def evaluate(self, windows: list[PowerWindow]) -> PowerBreakdown:
        """Time-weighted mean power across a run's windows."""
        usable = [w for w in windows if w.duration_ns > 0]
        if not usable:
            raise ValueError("no non-empty power windows to evaluate")
        total_ns = sum(w.duration_ns for w in usable)
        acc = PowerBreakdown.zero()
        for w in usable:
            acc = acc + self.window_power(w).scaled(w.duration_ns / total_ns)
        return acc

    # ------------------------------------------------------------------
    def router_power_map(self, router_activities, freq_hz: float,
                         duration_ns: float) -> list[float]:
        """Per-router total power (mW) from per-router activity.

        ``router_activities`` is what
        :meth:`repro.noc.Network.router_activity_map` returns; the
        clock and leakage floor is attributed uniformly per router.
        This is the paper's "accurate power estimation ... for any
        router in the NoC" view, useful for spatial hot-spot analysis.
        """
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        if len(router_activities) != self.config.num_nodes:
            raise ValueError(
                f"expected {self.config.num_nodes} routers, got "
                f"{len(router_activities)}")
        p = self.params
        voltage = self.technology.voltage_for(freq_hz)
        v_scale = (voltage / p.v_nom) ** 2
        floor = (p.p_clock_router_mw * v_scale * freq_hz / p.f_ref_hz
                 + p.p_leak_router_mw
                 * (voltage / p.v_nom) ** p.leak_exponent)
        out = []
        for act in router_activities:
            dynamic_pj = (act.buffer_writes * p.e_buffer_write_pj
                          + act.buffer_reads * p.e_buffer_read_pj
                          + act.xbar_traversals * p.e_xbar_pj
                          + act.link_flits * p.e_link_pj
                          + act.vc_allocs * p.e_vc_alloc_pj
                          + act.sa_grants * p.e_sa_grant_pj)
            out.append(floor + dynamic_pj * v_scale / duration_ns)
        return out

    # ------------------------------------------------------------------
    def idle_power_mw(self, freq_hz: float) -> float:
        """Clock + leakage floor at a frequency (zero traffic)."""
        voltage = self.technology.voltage_for(freq_hz)
        p = self.params
        routers = self.config.num_nodes
        v_scale = (voltage / p.v_nom) ** 2
        return (p.p_clock_router_mw * routers * v_scale
                * freq_hz / p.f_ref_hz
                + p.p_leak_router_mw * routers
                * (voltage / p.v_nom) ** p.leak_exponent)
