"""Power estimation: 28-nm FDSOI technology model + activity energy."""

from .energy import DEFAULT_28NM, EnergyParameters
from .model import PowerBreakdown, PowerModel
from .report import (breakdown_table, comparison_row, power_heatmap,
                     ratio)
from .technology import FDSOI_28NM, PAPER_ANCHORS, Technology, VfAnchor

__all__ = [
    "DEFAULT_28NM",
    "EnergyParameters",
    "FDSOI_28NM",
    "PAPER_ANCHORS",
    "PowerBreakdown",
    "PowerModel",
    "Technology",
    "VfAnchor",
    "breakdown_table",
    "comparison_row",
    "power_heatmap",
    "ratio",
]
