"""Sensitivity-analysis cases (paper Sec. V, Fig. 8).

The paper re-runs the uniform-traffic comparison while varying one
parameter at a time from the 5x5 baseline: virtual channels {2, 4, 8},
buffers per VC {4, 8, 16}, packet size {10, 15, 20} flits and mesh
size {4x4, 5x5, 8x8}.  Each case changes the saturation rate, so
``lambda_max`` and the DMSD target are re-derived per case exactly as
the paper does (the per-panel ``lambda_max`` markers of Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..noc.config import NocConfig


@dataclass(frozen=True)
class SensitivityCase:
    """One varied configuration of the Fig. 8 study."""

    parameter: str
    label: str
    config: NocConfig


#: Parameter values studied by the paper.
VC_VALUES = (2, 4, 8)
BUFFER_VALUES = (4, 8, 16)
PACKET_VALUES = (10, 15, 20)
MESH_VALUES = ((4, 4), (5, 5), (8, 8))


def sensitivity_cases(base: NocConfig) -> dict[str, list[SensitivityCase]]:
    """All Fig. 8 cases keyed by the varied parameter name."""
    cases: dict[str, list[SensitivityCase]] = {
        "virtual_channels": [
            SensitivityCase("virtual_channels", f"{v} VCs",
                            base.with_(num_vcs=v))
            for v in VC_VALUES
        ],
        "vc_buffers": [
            SensitivityCase("vc_buffers", f"{b} buffers",
                            base.with_(vc_buf_depth=b))
            for b in BUFFER_VALUES
        ],
        "packet_size": [
            SensitivityCase("packet_size", f"{p} flits",
                            base.with_(packet_length=p))
            for p in PACKET_VALUES
        ],
        "mesh_size": [
            SensitivityCase("mesh_size", f"{w}x{h}",
                            base.with_(width=w, height=h))
            for w, h in MESH_VALUES
        ],
    }
    return cases
