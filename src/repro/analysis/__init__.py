"""Analysis: sweeps, saturation, queueing theory, trade-off metrics."""

from .queueing import SingleServerDvfs, mm1_sojourn
from .saturation import (SaturationEstimate, find_saturation_rate,
                         is_saturated_at)
from .sensitivity import (BUFFER_VALUES, MESH_VALUES, PACKET_VALUES,
                          SensitivityCase, VC_VALUES, sensitivity_cases)
from .sweep import (DEFAULT, DmsdSteadyState, FAST, NoDvfsSteadyState,
                    RmsdSteadyState, SimBudget, SteadyStateStrategy,
                    StrategyResources, SweepPoint, SweepSeries, THOROUGH,
                    point_from_unit, run_fixed_point, run_sweep,
                    strategy_from_ref, sweep_units)
from .trace import (DelayDistribution, delay_distribution,
                    packet_records, per_flow_mean_delay, read_trace_csv,
                    write_trace_csv)
from .tradeoff import (HeadlineClaims, TradeoffAt, compare_at,
                       energy_delay_product, headline_claims)

__all__ = [
    "BUFFER_VALUES",
    "DEFAULT",
    "DelayDistribution",
    "DmsdSteadyState",
    "FAST",
    "HeadlineClaims",
    "MESH_VALUES",
    "NoDvfsSteadyState",
    "PACKET_VALUES",
    "RmsdSteadyState",
    "SaturationEstimate",
    "SensitivityCase",
    "SimBudget",
    "SingleServerDvfs",
    "SteadyStateStrategy",
    "StrategyResources",
    "SweepPoint",
    "SweepSeries",
    "THOROUGH",
    "TradeoffAt",
    "VC_VALUES",
    "compare_at",
    "delay_distribution",
    "energy_delay_product",
    "find_saturation_rate",
    "headline_claims",
    "is_saturated_at",
    "mm1_sojourn",
    "packet_records",
    "per_flow_mean_delay",
    "point_from_unit",
    "read_trace_csv",
    "run_fixed_point",
    "run_sweep",
    "sensitivity_cases",
    "strategy_from_ref",
    "sweep_units",
    "write_trace_csv",
]
