"""Power–delay trade-off metrics and the paper's headline claims.

The paper's conclusion is quantitative: RMSD consumes 20–50% less
power than DMSD, but DMSD delivers up to ~3x lower delay, and either
saves >= 2.2x power versus No-DVFS at 0.2 flits/cycle.  This module
computes those ratios from sweep results so experiments (and the
EXPERIMENTS.md table) can compare paper-vs-measured mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass

from .sweep import SweepSeries


@dataclass(frozen=True)
class TradeoffAt:
    """Policy comparison at one sweep position."""

    x: float
    power_mw: dict[str, float]
    delay_ns: dict[str, float]

    def power_ratio(self, a: str, b: str) -> float:
        """Power of policy ``a`` divided by policy ``b``."""
        return self.power_mw[a] / self.power_mw[b]

    def delay_ratio(self, a: str, b: str) -> float:
        return self.delay_ns[a] / self.delay_ns[b]

    @property
    def dmsd_power_overhead_pct(self) -> float:
        """How much more power DMSD burns than RMSD (paper: 20–50%)."""
        return 100.0 * (self.power_ratio("dmsd", "rmsd") - 1.0)

    @property
    def rmsd_delay_penalty(self) -> float:
        """RMSD delay over DMSD delay (paper: up to ~3x)."""
        return self.delay_ratio("rmsd", "dmsd")

    @property
    def dvfs_power_saving(self) -> float:
        """No-DVFS power over DMSD power (paper: >= 2.2x at 0.2)."""
        return self.power_ratio("no-dvfs", "dmsd")


def compare_at(series: dict[str, SweepSeries], x: float) -> TradeoffAt:
    """Align three policy sweeps at the sweep position nearest ``x``."""
    power: dict[str, float] = {}
    delay: dict[str, float] = {}
    for policy, swp in series.items():
        point = swp.point_at(x)
        if point.power_mw is None or point.delay_ns is None:
            raise ValueError(
                f"sweep point for {policy!r} at x={point.x} has no "
                "power/delay data")
        power[policy] = point.power_mw
        delay[policy] = point.delay_ns
    return TradeoffAt(x=x, power_mw=power, delay_ns=delay)


def energy_delay_product(series: SweepSeries) -> list[tuple[float, float]]:
    """EDP (mW * ns) across a sweep — lower is better on both axes."""
    out = []
    for p in series.points:
        if p.power_mw is not None and p.delay_ns is not None:
            out.append((p.x, p.power_mw * p.delay_ns))
    return out


@dataclass(frozen=True)
class HeadlineClaims:
    """Measured values for the abstract's quantitative claims."""

    #: DMSD power over RMSD power, per sweep position (paper: 1.2–1.5x)
    dmsd_over_rmsd_power: dict[float, float]
    #: RMSD delay over DMSD delay, per sweep position (paper: up to 3x)
    rmsd_over_dmsd_delay: dict[float, float]
    #: No-DVFS power over DMSD power at the reference rate (paper: 2.2x)
    nodvfs_over_dmsd_power_at_ref: float
    reference_x: float

    @property
    def max_delay_penalty(self) -> float:
        return max(self.rmsd_over_dmsd_delay.values())

    @property
    def power_overhead_range_pct(self) -> tuple[float, float]:
        ratios = list(self.dmsd_over_rmsd_power.values())
        return (100.0 * (min(ratios) - 1.0), 100.0 * (max(ratios) - 1.0))


def headline_claims(series: dict[str, SweepSeries],
                    xs: list[float],
                    reference_x: float) -> HeadlineClaims:
    """Evaluate the abstract's claims over a set of sweep positions.

    Positions where any policy saturated or lacks data are skipped
    (the paper's claims are about the operating region, not beyond
    saturation).
    """
    power_ratio: dict[float, float] = {}
    delay_ratio: dict[float, float] = {}
    for x in xs:
        try:
            cmp_at = compare_at(series, x)
        except ValueError:
            continue
        power_ratio[x] = cmp_at.power_ratio("dmsd", "rmsd")
        delay_ratio[x] = cmp_at.delay_ratio("rmsd", "dmsd")
    if not power_ratio:
        raise ValueError("no usable sweep positions for headline claims")
    ref = compare_at(series, reference_x)
    return HeadlineClaims(
        dmsd_over_rmsd_power=power_ratio,
        rmsd_over_dmsd_delay=delay_ratio,
        nodvfs_over_dmsd_power_at_ref=ref.dvfs_power_saving,
        reference_x=ref.x,
    )
