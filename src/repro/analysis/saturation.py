"""Saturation-rate estimation.

RMSD needs a target rate ``lambda_max`` set "10% lower than the
saturation rate" (paper Sec. III; 0.42 for the 5x5 baseline, giving
``lambda_max ~ 0.378``).  This module estimates the saturation rate of
a configuration/pattern pair by bisection on the full-speed simulator:
a rate counts as *saturated* when the sources' backlog diverges, the
run fails to drain, the accepted throughput falls measurably short of
the offered load, or the latency explodes past a multiple of the
zero-load latency (the standard operational definitions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..noc.budget import DEFAULT, SimBudget, run_fixed_point
from ..noc.config import NocConfig
from ..noc.engines import DEFAULT_ENGINE
from ..traffic.injection import TrafficSpec


@dataclass(frozen=True)
class SaturationEstimate:
    """Result of a saturation search."""

    saturation_rate: float
    lambda_max: float
    zero_load_latency_cycles: float


def is_saturated_at(config: NocConfig, traffic: TrafficSpec,
                    budget: SimBudget, seed: int,
                    zero_load_latency: float,
                    latency_factor: float = 8.0,
                    accept_tolerance: float = 0.93,
                    engine: str = DEFAULT_ENGINE) -> bool:
    """Operational saturation test at one offered load."""
    result = run_fixed_point(config, traffic, config.f_max_hz, budget,
                             seed, engine=engine)
    if result.saturated:
        return True
    offered = result.offered_node_rate
    if offered > 0 and result.accepted_node_rate < accept_tolerance * offered:
        return True
    if result.mean_latency_cycles is None:
        return False
    return result.mean_latency_cycles > latency_factor * zero_load_latency


def find_saturation_rate(
        config: NocConfig,
        traffic_factory: Callable[[float], TrafficSpec],
        budget: SimBudget = DEFAULT,
        seed: int = 1,
        lo: float = 0.02,
        hi: float = 1.0,
        iterations: int = 7,
        margin: float = 0.9,
        engine: str = DEFAULT_ENGINE) -> SaturationEstimate:
    """Bisection for the saturation rate; returns it with ``lambda_max``.

    ``margin`` is the paper's 10% safety factor:
    ``lambda_max = margin * saturation_rate``.
    """
    if not 0 < lo < hi:
        raise ValueError("need 0 < lo < hi")
    zero_load = config.zero_load_latency_cycles()

    def saturated(rate: float) -> bool:
        return is_saturated_at(config, traffic_factory(rate), budget,
                               seed, zero_load, engine=engine)

    # Grow the bracket if even `hi` is unsaturated (tiny meshes), or
    # shrink if `lo` already saturates (pathological configs).
    if not saturated(hi):
        return SaturationEstimate(hi, margin * hi, zero_load)
    while saturated(lo):
        lo /= 2.0
        if lo < 1e-3:
            raise RuntimeError(
                "network saturates at negligible load; "
                "check the configuration")

    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        if saturated(mid):
            hi = mid
        else:
            lo = mid
    saturation = 0.5 * (lo + hi)
    return SaturationEstimate(saturation, margin * saturation, zero_load)
