"""Steady-state sweeps: delay and power vs injection rate per policy.

Every evaluation figure of the paper is a sweep of the injection rate
(or app speed) under three policies.  For stationary traffic the
controllers converge to fixed operating points, so sweeps evaluate
each policy at its *steady-state frequency*:

* **No-DVFS** — ``Fmax`` by definition;
* **RMSD** — the open-loop law of eq. (2) applied to the offered rate
  (what the measurement loop of Fig. 1 converges to);
* **DMSD** — the fixed point ``delay(F*) = target`` of the PI loop of
  Fig. 3, found by bisection (delay in ns is strictly decreasing in
  ``F``: a faster clock both shortens the cycle and moves the network
  away from saturation).  The transient PI loop itself is validated in
  tests and the ``dvfs_transient`` example.

Each point runs the cycle-level simulator at the chosen frequency and
reports latency, delay, accepted throughput and the power-model
breakdown.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable

from ..control.adaptive import GCC_ALPHA
from ..core.registry import Ref, make_strategy, register_strategy
from ..core.rmsd import rmsd_frequency
from ..noc.budget import (DEFAULT, FAST, SimBudget, THOROUGH,
                          run_fixed_point)
from ..noc.config import NocConfig
from ..noc.engines import DEFAULT_ENGINE
from ..noc.simulator import SimResult
from ..power.model import PowerBreakdown, PowerModel
from ..runner.context import ExecutionContext
from ..runner.executor import SweepRunner
from ..runner.units import UnitResult, WorkUnit
from ..traffic.injection import TrafficSpec

__all__ = [
    "DEFAULT", "DmsdSteadyState", "FAST", "GccSteadyState",
    "NoDvfsSteadyState", "RmsdSteadyState", "SimBudget",
    "SteadyStateStrategy", "StrategyResources", "SweepPoint",
    "SweepSeries", "THOROUGH", "UtilitySteadyState", "point_from_unit",
    "run_fixed_point", "run_sweep", "strategy_from_ref",
]


@dataclass
class SweepPoint:
    """One (policy, rate) operating point of a sweep."""

    policy: str
    x: float
    freq_hz: float
    voltage_v: float
    latency_cycles: float | None
    delay_ns: float | None
    power: PowerBreakdown | None
    accepted_rate: float
    saturated: bool
    result: SimResult

    @property
    def power_mw(self) -> float | None:
        return None if self.power is None else self.power.total_mw

    @property
    def freq_rel(self) -> float:
        return self.freq_hz / self.result.config.f_max_hz


@dataclass
class SweepSeries:
    """All points of one policy across the sweep axis."""

    policy: str
    points: list[SweepPoint]

    @property
    def xs(self) -> list[float]:
        return [p.x for p in self.points]

    def delays_ns(self) -> list[float | None]:
        return [p.delay_ns for p in self.points]

    def powers_mw(self) -> list[float | None]:
        return [p.power_mw for p in self.points]

    def point_at(self, x: float) -> SweepPoint:
        """The sweep point closest to ``x`` on the sweep axis."""
        if not self.points:
            raise ValueError("empty sweep series")
        return min(self.points, key=lambda p: abs(p.x - x))


class SteadyStateStrategy(ABC):
    """How a policy's steady-state frequency is found for one point."""

    name: str = "abstract"

    @abstractmethod
    def frequency_for(self, config: NocConfig, traffic: TrafficSpec,
                      budget: SimBudget, seed: int,
                      engine: str = DEFAULT_ENGINE) -> float:
        """Steady-state network frequency (Hz) for this traffic.

        ``engine`` selects the simulation backend for any search
        simulations the strategy runs; closed-form strategies ignore
        it.  It never enters the strategy's ``spec_key`` — the work
        unit already carries the engine in its own spec.
        """

    def spec_key(self) -> tuple:
        """Canonical identity tuple (sweep-runner cache/seed key).

        Subclasses with parameters that influence the chosen frequency
        must extend the tuple with them.
        """
        return (self.name,)


class NoDvfsSteadyState(SteadyStateStrategy):
    name = "no-dvfs"

    def frequency_for(self, config: NocConfig, traffic: TrafficSpec,
                      budget: SimBudget, seed: int,
                      engine: str = DEFAULT_ENGINE) -> float:
        return config.f_max_hz


class RmsdSteadyState(SteadyStateStrategy):
    """Eq. (2) applied to the mean offered node rate."""

    name = "rmsd"

    def __init__(self, lambda_max: float) -> None:
        if lambda_max <= 0:
            raise ValueError("lambda_max must be positive")
        self.lambda_max = lambda_max

    def frequency_for(self, config: NocConfig, traffic: TrafficSpec,
                      budget: SimBudget, seed: int,
                      engine: str = DEFAULT_ENGINE) -> float:
        return rmsd_frequency(config, traffic.mean_node_rate(),
                              self.lambda_max)

    def spec_key(self) -> tuple:
        return (self.name, repr(self.lambda_max))


class DmsdSteadyState(SteadyStateStrategy):
    """Bisection for the PI loop's fixed point ``delay(F*) = target``."""

    name = "dmsd"

    def __init__(self, target_delay_ns: float, iterations: int = 6,
                 search_budget: SimBudget | None = None) -> None:
        if target_delay_ns <= 0:
            raise ValueError("target delay must be positive")
        if iterations < 1:
            raise ValueError("need at least one bisection iteration")
        self.target_delay_ns = target_delay_ns
        self.iterations = iterations
        self.search_budget = search_budget

    def spec_key(self) -> tuple:
        search = self.search_budget
        return (self.name, repr(self.target_delay_ns), self.iterations,
                None if search is None else
                (search.warmup_cycles, search.measure_cycles,
                 search.drain_cycles))

    def _delay_at(self, config: NocConfig, traffic: TrafficSpec,
                  freq_hz: float, budget: SimBudget, seed: int,
                  engine: str) -> float:
        result = run_fixed_point(config, traffic, freq_hz, budget, seed,
                                 engine=engine)
        if result.mean_delay_ns is None:
            # No deliveries at all: treat as zero delay so the search
            # keeps the frequency low (only happens at ~zero load).
            return 0.0
        if result.saturated:
            # Saturated runs under-report delay (only delivered packets
            # count); force the search upward.
            return float("inf")
        return result.mean_delay_ns

    def frequency_for(self, config: NocConfig, traffic: TrafficSpec,
                      budget: SimBudget, seed: int,
                      engine: str = DEFAULT_ENGINE) -> float:
        search = self.search_budget or budget.scaled(0.6)
        target = self.target_delay_ns
        lo, hi = config.f_min_hz, config.f_max_hz
        if self._delay_at(config, traffic, lo, search, seed,
                          engine) <= target:
            return lo
        if self._delay_at(config, traffic, hi, search, seed,
                          engine) > target:
            return hi
        for _ in range(self.iterations):
            mid = 0.5 * (lo + hi)
            if self._delay_at(config, traffic, mid, search, seed,
                              engine) > target:
                lo = mid
            else:
                hi = mid
        return hi


class GccSteadyState(SteadyStateStrategy):
    """Steady state of the GCC delay-gradient controller.

    Under stationary traffic the INC/DEC/HOLD machine settles into a
    limit cycle: the utilization target probes up (INC) until the
    delay gradient trips the overuse detector, then snaps to
    ``alpha`` x the measured utilization (DEC) and holds.  The cycle
    averages out at ``alpha`` times the saturation-margin utilization
    — i.e. the controller *discovers online* the operating point RMSD
    is given offline, backed off by the GCC decrease factor.  The
    sweep therefore evaluates eq. (2) at an effective
    ``lambda_max' = alpha * lambda_max``, which keeps the strategy
    closed-form (and digest-stable) like RMSD's.
    """

    name = "gcc"

    def __init__(self, lambda_max: float,
                 alpha: float = GCC_ALPHA) -> None:
        if lambda_max <= 0:
            raise ValueError("lambda_max must be positive")
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.lambda_max = lambda_max
        self.alpha = alpha

    def frequency_for(self, config: NocConfig, traffic: TrafficSpec,
                      budget: SimBudget, seed: int,
                      engine: str = DEFAULT_ENGINE) -> float:
        return rmsd_frequency(config, traffic.mean_node_rate(),
                              self.alpha * self.lambda_max)

    def spec_key(self) -> tuple:
        return (self.name, repr(self.lambda_max), repr(self.alpha))


class UtilitySteadyState(DmsdSteadyState):
    """Steady state of the utility-based delay-constrained controller.

    Dual ascent drives the delay price until the constraint is tight
    (or the price hits zero), so the steady-state operating point is
    ``delay(F*) = delay_budget_ns`` — exactly DMSD's fixed-point shape
    with the budget as the target, so the bisection search is reused
    wholesale under the ``utility`` name/spec key.
    """

    name = "utility"

    def __init__(self, delay_budget_ns: float, iterations: int = 6,
                 search_budget: SimBudget | None = None) -> None:
        super().__init__(delay_budget_ns, iterations=iterations,
                         search_budget=search_budget)
        self.delay_budget_ns = delay_budget_ns


@dataclass
class StrategyResources:
    """Scenario-derived quantities sweep-strategy factories may need.

    The expensive ones are **lazy callables** — a saturation search or
    a DMSD target derivation only runs when the strategy being built
    actually needs it (``no-dvfs`` never triggers either).  The
    ``Workbench`` supplies memoized thunks; explicit policy parameters
    (``Ref.of("rmsd", lambda_max=0.5)``) always win over resources.
    """

    lambda_max: Callable[[], float] | None = None
    target_delay_ns: Callable[[], float] | None = None
    dmsd_iterations: int | None = None


def _resolved(explicit, resources: StrategyResources | None,
              attr: str, policy: str, param: str):
    if explicit is not None:
        return explicit
    thunk = getattr(resources, attr, None) if resources else None
    if thunk is None:
        raise ValueError(
            f"policy {policy!r} needs a {param}= parameter (or scenario "
            f"resources that derive it, e.g. a Workbench sweep)")
    return thunk()


def _no_dvfs_strategy(resources: StrategyResources | None = None):
    return NoDvfsSteadyState()


def _rmsd_strategy(resources: StrategyResources | None = None,
                   lambda_max: float | None = None):
    return RmsdSteadyState(_resolved(lambda_max, resources, "lambda_max",
                                     "rmsd", "lambda_max"))


def _dmsd_strategy(resources: StrategyResources | None = None,
                   target_delay_ns: float | None = None,
                   iterations: int | None = None,
                   search_budget: SimBudget | None = None,
                   ki: float | None = None, kp: float | None = None):
    # ki/kp tune the transient PI loop only; the steady-state fixed
    # point delay(F*) = target is independent of them, so the sweep
    # strategy accepts and ignores them — one ref can drive both the
    # transient controller and the sweep.
    target = _resolved(target_delay_ns, resources, "target_delay_ns",
                       "dmsd", "target_delay_ns")
    if iterations is None:
        iterations = (resources.dmsd_iterations
                      if resources is not None
                      and resources.dmsd_iterations is not None else 6)
    return DmsdSteadyState(target, iterations=iterations,
                           search_budget=search_budget)


def _gcc_strategy(resources: StrategyResources | None = None,
                  lambda_max: float | None = None,
                  alpha: float | None = None,
                  k_up: float | None = None, k_down: float | None = None,
                  gamma_init: float | None = None,
                  gamma_min: float | None = None,
                  gamma_max: float | None = None,
                  overuse_windows: int | None = None,
                  eta: float | None = None,
                  u_init: float | None = None):
    # Only lambda_max (saturation margin) and alpha (GCC decrease
    # factor) shape the steady state; the detector/filter knobs
    # (k_up, eta, ...) tune the transient only, so — like dmsd's
    # ki/kp — the sweep strategy accepts and ignores them, letting one
    # ref drive both the transient controller and the sweep.
    return GccSteadyState(
        _resolved(lambda_max, resources, "lambda_max", "gcc",
                  "lambda_max"),
        alpha=alpha if alpha is not None else GCC_ALPHA)


def _utility_strategy(resources: StrategyResources | None = None,
                      delay_budget_ns: float | None = None,
                      budget_slack: float = 1.25,
                      iterations: int | None = None,
                      search_budget: SimBudget | None = None,
                      price_step: float | None = None,
                      power_weight: float | None = None):
    # price_step/power_weight shape the dual-ascent transient only;
    # the steady state is pinned by the (tight) delay constraint, so
    # they are accepted and ignored here (the dmsd ki/kp pattern).
    # Without an explicit budget, allow budget_slack x the scenario's
    # DMSD target: the utility controller tolerates more delay in
    # exchange for power, giving the figures a visibly distinct curve.
    if delay_budget_ns is None:
        delay_budget_ns = budget_slack * _resolved(
            None, resources, "target_delay_ns", "utility",
            "delay_budget_ns")
    if iterations is None:
        iterations = (resources.dmsd_iterations
                      if resources is not None
                      and resources.dmsd_iterations is not None else 6)
    return UtilitySteadyState(delay_budget_ns, iterations=iterations,
                              search_budget=search_budget)


register_strategy("no-dvfs", _no_dvfs_strategy)
register_strategy("rmsd", _rmsd_strategy)
register_strategy("dmsd", _dmsd_strategy)
# The adaptive family is opt-in (default=False): resolvable by name in
# every sweep consumer, but the paper figures keep their three-policy
# default comparison unless a caller asks for more.
register_strategy("gcc", _gcc_strategy, default=False)
register_strategy("utility", _utility_strategy, default=False)


def strategy_from_ref(policy: Ref | str,
                      resources: StrategyResources | None = None,
                      **extra) -> SteadyStateStrategy:
    """Build a steady-state strategy from the policy registry.

    This replaces the old if/elif dispatch on policy string literals:
    any policy registered with a strategy factory — the paper's three
    or a user plugin's — resolves here, with unknown names and
    parameters raising ``ValueError``s that list the alternatives.
    """
    return make_strategy(policy, resources, **extra)


def sweep_units(config: NocConfig,
                traffic_factory: Callable[[float], TrafficSpec],
                xs: list[float],
                strategy: SteadyStateStrategy,
                budget: SimBudget = DEFAULT,
                seed: int = 1,
                engine: str = DEFAULT_ENGINE,
                scenario: Any = None) -> list[WorkUnit]:
    """The work units of one policy's sweep, one per sweep position.

    ``scenario`` (a :class:`repro.scenario.ScenarioSpec`) rides along
    as unit metadata — it never enters the unit digest, which is
    already a function of the fields the scenario expands to.
    """
    return [WorkUnit(policy=strategy.name, x=x, config=config,
                     traffic=traffic_factory(x), strategy=strategy,
                     budget=budget, run_seed=seed, engine=engine,
                     scenario=scenario)
            for x in xs]


def point_from_unit(unit_result: UnitResult,
                    power_model: PowerModel) -> SweepPoint:
    """Fold one executed unit into a sweep point (adds power figures)."""
    result = unit_result.result
    power = (power_model.evaluate(result.power_windows)
             if result.power_windows else None)
    return SweepPoint(
        policy=unit_result.policy,
        x=unit_result.x,
        freq_hz=unit_result.freq_hz,
        voltage_v=power_model.technology.voltage_for(unit_result.freq_hz),
        latency_cycles=result.mean_latency_cycles,
        delay_ns=result.mean_delay_ns,
        power=power,
        accepted_rate=result.accepted_node_rate,
        saturated=result.saturated,
        result=result,
    )


def run_sweep(config: NocConfig,
              traffic_factory: Callable[[float], TrafficSpec],
              xs: list[float],
              strategy: SteadyStateStrategy | Ref | str,
              budget: SimBudget = DEFAULT,
              seed: int = 1,
              power_model: PowerModel | None = None,
              runner: SweepRunner | None = None,
              engine: str | None = None,
              context: ExecutionContext | None = None,
              scenario: Any = None) -> SweepSeries:
    """Evaluate one policy at every sweep position.

    ``traffic_factory`` maps the sweep coordinate (injection rate or
    app speed) to a traffic spec; ``strategy`` picks each point's
    steady-state frequency; the simulator then measures that operating
    point and, when a ``power_model`` is given, its power breakdown.
    ``strategy`` may also be a policy-registry name or
    :class:`~repro.core.registry.Ref` whose parameters pin everything
    the strategy needs (e.g. ``Ref.of("rmsd", lambda_max=0.5)``); it
    is resolved through :func:`strategy_from_ref`.

    ``context`` carries the whole execution configuration — backend,
    worker count, unit cache, simulation engine, progress — in one
    object (see :class:`repro.runner.ExecutionContext`); by default a
    serial, uncached context on the reference engine.  Results are
    identical for any backend and worker count: every unit's random
    stream derives from ``seed`` and the unit's own spec, never from
    the execution schedule.  The engine is part of each unit's spec,
    so cached results never cross engines.

    ``runner=`` and ``engine=`` are the pre-context spellings; they
    keep working (mapped onto an equivalent context) but emit a
    ``DeprecationWarning``.
    """
    if runner is not None or engine is not None:
        if context is not None:
            raise TypeError("pass either context= or the deprecated "
                            "runner=/engine= keywords, not both")
        warnings.warn(
            "run_sweep(runner=..., engine=...) is deprecated; build an "
            "ExecutionContext once and pass context=... instead",
            DeprecationWarning, stacklevel=2)
    if context is None:
        if runner is not None:
            # The deprecated spelling: keep using the caller's runner
            # (its cache/jobs/backend), only the unit engine comes
            # from the engine= keyword.
            context = runner.context
        else:
            context = ExecutionContext(
                backend="serial", jobs=1, cache=None,
                engine=engine if engine is not None else DEFAULT_ENGINE)
    unit_engine = engine if engine is not None else context.engine
    if power_model is None:
        power_model = PowerModel(config)
    if not hasattr(strategy, "frequency_for"):
        strategy = strategy_from_ref(strategy)
    exec_runner = runner if runner is not None else context.runner
    units = sweep_units(config, traffic_factory, xs, strategy, budget,
                        seed, unit_engine, scenario=scenario)
    points = [point_from_unit(out, power_model)
              for out in exec_runner.run(units)]
    return SweepSeries(policy=strategy.name, points=points)
