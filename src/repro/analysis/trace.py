"""Per-packet trace export and analysis.

The paper reports means; downstream users usually want the full
distribution (tail latency matters for request-reply traffic, which is
exactly the workload the paper says RMSD mistreats).  This module
turns a finished simulation's delivered packets into records, computes
distribution summaries, and round-trips them through CSV for external
tooling.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..noc.network import Network

#: CSV column order (stable, part of the public format).
TRACE_FIELDS = ("pid", "src", "dst", "length", "hops", "created_cycle",
                "ejected_cycle", "latency_cycles", "created_ns",
                "ejected_ns", "delay_ns", "measured")


@dataclass(frozen=True)
class DelayDistribution:
    """Distribution summary of packet delays (ns)."""

    count: int
    mean_ns: float
    p50_ns: float
    p95_ns: float
    p99_ns: float
    max_ns: float

    @classmethod
    def from_delays(cls, delays_ns) -> "DelayDistribution":
        data = np.asarray(list(delays_ns), dtype=float)
        if data.size == 0:
            raise ValueError("no delays to summarize")
        return cls(
            count=int(data.size),
            mean_ns=float(data.mean()),
            p50_ns=float(np.percentile(data, 50)),
            p95_ns=float(np.percentile(data, 95)),
            p99_ns=float(np.percentile(data, 99)),
            max_ns=float(data.max()),
        )

    def render(self) -> str:
        return (f"n={self.count}  mean={self.mean_ns:.1f}  "
                f"p50={self.p50_ns:.1f}  p95={self.p95_ns:.1f}  "
                f"p99={self.p99_ns:.1f}  max={self.max_ns:.1f}  (ns)")


def packet_records(network: Network,
                   measured_only: bool = True) -> list[dict]:
    """Delivered packets of a finished run as plain dict records."""
    records = []
    for packet in network.delivered:
        if measured_only and not packet.measured:
            continue
        records.append({
            "pid": packet.pid,
            "src": packet.src,
            "dst": packet.dst,
            "length": packet.length,
            "hops": packet.hops,
            "created_cycle": packet.created_cycle,
            "ejected_cycle": packet.ejected_cycle,
            "latency_cycles": packet.latency_cycles,
            "created_ns": packet.created_ns,
            "ejected_ns": packet.ejected_ns,
            "delay_ns": packet.delay_ns,
            "measured": int(packet.measured),
        })
    return records


def write_trace_csv(records: list[dict], path: str | Path) -> None:
    """Write packet records to CSV in the stable column order."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=TRACE_FIELDS)
        writer.writeheader()
        for record in records:
            writer.writerow(record)


def read_trace_csv(path: str | Path) -> list[dict]:
    """Read packet records back, restoring numeric types."""
    int_fields = {"pid", "src", "dst", "length", "hops", "created_cycle",
                  "ejected_cycle", "latency_cycles", "measured"}
    records = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            record = {}
            for key, value in row.items():
                record[key] = (int(value) if key in int_fields
                               else float(value))
            records.append(record)
    return records


def delay_distribution(records: list[dict]) -> DelayDistribution:
    """Distribution summary over trace records."""
    return DelayDistribution.from_delays(r["delay_ns"] for r in records)


def per_flow_mean_delay(records: list[dict]) -> dict[tuple[int, int],
                                                     float]:
    """Mean delay per (src, dst) flow — spots unfair/victim flows."""
    sums: dict[tuple[int, int], list[float]] = {}
    for record in records:
        sums.setdefault((record["src"], record["dst"]),
                        []).append(record["delay_ns"])
    return {flow: sum(ds) / len(ds) for flow, ds in sums.items()}
