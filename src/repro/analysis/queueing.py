"""Single-server queueing model of DVFS (paper ref. [12]).

The paper notes that RMSD's non-monotonic delay-vs-rate curve "was
observed for the first time in a context of DVFS policies for ...
queue-based systems with a single server model" (Bianco, Casu,
Giaccone & Ricca, GreenCom 2013) and reports it for the first time in
an NoC.  This module reproduces the anomaly analytically with an
M/M/1 server whose service rate scales with the clock:

* normalize the service rate at ``Fmax`` to 1, so the arrival rate
  ``lam`` is utilization at full speed and the frequency fraction
  ``phi`` in ``[phi_min, 1]`` gives service rate ``phi``;
* sojourn time ``T(lam, phi) = 1 / (phi - lam)`` for ``phi > lam``;
* **rate-based** control mirrors RMSD eq. (2):
  ``phi = clip(lam / rho_max, phi_min, 1)`` for a target utilization
  ``rho_max < 1``;
* **delay-based** control mirrors DMSD: the smallest ``phi`` with
  ``T <= T_target``, i.e. ``phi = clip(lam + 1/T_target, phi_min, 1)``.

Under rate-based control the delay rises on ``[0, lam_min)`` (fixed
``phi_min``, growing load), then *falls* on ``[lam_min, rho_max]``
(utilization pinned at ``rho_max`` while the clock speeds up) — the
same non-monotonic shape as paper Fig. 2(b).
"""

from __future__ import annotations

import numpy as np


def mm1_sojourn(lam: float, phi: float) -> float:
    """M/M/1 sojourn time (normalized units) at service rate ``phi``."""
    if lam < 0:
        raise ValueError("arrival rate must be non-negative")
    if phi <= lam:
        return float("inf")
    return 1.0 / (phi - lam)


class SingleServerDvfs:
    """Analytical single-server DVFS model (paper ref. [12])."""

    def __init__(self, phi_min: float = 1.0 / 3.0,
                 rho_max: float = 0.9) -> None:
        if not 0 < phi_min <= 1:
            raise ValueError("phi_min must be in (0, 1]")
        if not 0 < rho_max < 1:
            raise ValueError("rho_max must be in (0, 1)")
        self.phi_min = phi_min
        self.rho_max = rho_max

    # --- rate-based (RMSD analogue) ------------------------------------
    @property
    def lam_min(self) -> float:
        """Arrival rate below which the clock clips at ``phi_min``."""
        return self.rho_max * self.phi_min

    def rate_based_phi(self, lam: float) -> float:
        """Frequency fraction chosen by rate-based control."""
        if lam < 0:
            raise ValueError("arrival rate must be non-negative")
        return min(1.0, max(self.phi_min, lam / self.rho_max))

    def rate_based_delay(self, lam: float) -> float:
        return mm1_sojourn(lam, self.rate_based_phi(lam))

    # --- delay-based (DMSD analogue) -------------------------------------
    def delay_based_phi(self, lam: float, target: float) -> float:
        """Smallest frequency fraction meeting the delay target."""
        if target <= 0:
            raise ValueError("target delay must be positive")
        return min(1.0, max(self.phi_min, lam + 1.0 / target))

    def delay_based_delay(self, lam: float, target: float) -> float:
        return mm1_sojourn(lam, self.delay_based_phi(lam, target))

    # --- baseline ----------------------------------------------------------
    def no_dvfs_delay(self, lam: float) -> float:
        return mm1_sojourn(lam, 1.0)

    # --- curve helpers -------------------------------------------------------
    def delay_curves(self, lams: np.ndarray,
                     target: float) -> dict[str, np.ndarray]:
        """Delay under all three controls over an array of rates."""
        lams = np.asarray(lams, dtype=float)
        return {
            "no-dvfs": np.array([self.no_dvfs_delay(x) for x in lams]),
            "rate-based": np.array([self.rate_based_delay(x) for x in lams]),
            "delay-based": np.array(
                [self.delay_based_delay(x, target) for x in lams]),
        }

    def rate_based_peak(self) -> tuple[float, float]:
        """(rate, delay) of the rate-based delay maximum.

        The delay is increasing on ``[0, lam_min)`` and decreasing on
        ``(lam_min, rho_max]``, so the peak sits exactly at the clip
        boundary ``lam_min`` — this is the anomaly's signature.
        """
        lam = self.lam_min
        return lam, self.rate_based_delay(lam)

    def power_proxy(self, phi: float) -> float:
        """Cubic frequency-power proxy used in ref. [12] (~ V^2 f)."""
        if not 0 < phi <= 1:
            raise ValueError("phi must be in (0, 1]")
        return phi ** 3
