"""Adaptive DVFS controllers: GCC-style delay-gradient and utility-based.

Two controllers that close the loop on *measured delay trends* rather
than a fixed setpoint:

``gcc``
    A Google-Congestion-Control-style controller transplanted from
    congestion control to DVFS.  GCC's three pieces survive intact —
    a Kalman filter estimating the one-way delay gradient, an overuse
    detector with an adaptive threshold, and the INC/DEC/HOLD rate
    state machine with its canonical laws (multiplicative increase by
    ``eta``, decrease to ``alpha`` x the received rate, everything
    capped at 1.5x the received rate).  The transplant: GCC's "sending
    rate" becomes the controller's *network-utilization target* (flits
    per network cycle per node — the same quantity RMSD's
    ``lambda_max`` pins offline), and the paper's eq. (2)
    ``F = f_node * lambda / u_target`` turns the target into a clock.
    Directions compose correctly without touching the GCC table:
    OVERUSE (delay rising) -> DEC the utilization target -> eq. (2)
    raises the frequency; NORMAL -> INC the target (probe) -> the
    frequency creeps down to save power; UNDERUSE (delay draining)
    -> HOLD while the queues empty.

``utility``
    The utility-maximizing delay-constrained controller of D'Aronco,
    Toni & Frossard (2015), reduced to its dual-ascent core:
    minimize a quadratic power proxy subject to mean delay <= budget.
    The only state is the Lagrange multiplier ("delay price") ``mu``,
    walked by subgradient steps on the normalized constraint
    violation; the primal update is the closed-form argmin of the
    Lagrangian.

Both are plain :class:`~repro.core.policy.DvfsPolicy` subclasses
registered with :func:`~repro.core.registry.register_policy`, so they
resolve by name everywhere a paper policy does.  Their steady-state
sweep strategies live in :mod:`repro.analysis.sweep`.
"""

from __future__ import annotations

import enum
import math
from typing import Optional

from ..core.policy import DvfsPolicy
from ..core.registry import register_policy
from ..noc.config import NocConfig
from ..noc.stats import MeasurementSample

__all__ = [
    "BandwidthSignal",
    "RateControlState",
    "DelayGradientFilter",
    "OveruseDetector",
    "RateController",
    "GccController",
    "UtilityController",
    "GCC_ALPHA",
    "GCC_ETA",
]

# Canonical GCC constants (Carlucci et al., "Analysis and design of the
# google congestion control for web real-time communication").
GCC_ALPHA = 0.85   # DEC: new rate = alpha * received rate
GCC_ETA = 1.05     # INC: new rate = eta * old rate
RATE_CAP_FACTOR = 1.5  # every law is capped at 1.5x the received rate


class BandwidthSignal(enum.Enum):
    """Overuse-detector verdict for one measurement window."""

    NORMAL = "normal"
    OVERUSE = "overuse"
    UNDERUSE = "underuse"


class RateControlState(enum.Enum):
    """GCC rate-controller finite states."""

    INCREASE = "increase"
    DECREASE = "decrease"
    HOLD = "hold"


class DelayGradientFilter:
    """Scalar Kalman filter tracking the delay gradient.

    State is the gradient estimate ``m_hat``; the measurement is the
    raw per-window gradient.  The innovation is soft-clamped at three
    measurement standard deviations so a single wild window cannot
    yank the estimate, and the measurement-noise variance itself is
    tracked by an exponential average of the squared innovation.
    """

    def __init__(self, *, process_noise: float = 1e-3,
                 initial_error: float = 0.1,
                 noise_alpha: float = 0.95) -> None:
        if process_noise <= 0.0:
            raise ValueError("process_noise must be positive")
        if not 0.0 < noise_alpha < 1.0:
            raise ValueError("noise_alpha must be in (0, 1)")
        self._q = process_noise
        self._alpha = noise_alpha
        self._initial_error = initial_error
        self.reset()

    def reset(self) -> None:
        self.m_hat = 0.0
        self._e = self._initial_error
        self._var_v = 0.1

    def update(self, gradient: float) -> float:
        """Fold one raw gradient measurement; return the new estimate."""
        z = gradient - self.m_hat
        self._var_v = max(
            self._alpha * self._var_v + (1.0 - self._alpha) * z * z,
            1e-9,
        )
        bound = 3.0 * math.sqrt(self._var_v)
        z = min(max(z, -bound), bound)
        k = (self._e + self._q) / (self._var_v + self._e + self._q)
        self.m_hat += k * z
        self._e = (1.0 - k) * (self._e + self._q)
        return self.m_hat


class OveruseDetector:
    """Classify windows as OVERUSE / UNDERUSE / NORMAL.

    Compares the filtered delay gradient against an *adaptive*
    threshold ``gamma`` that chases ``|m_hat|`` — fast when the
    estimate is outside the band (``k_up``), slowly when inside
    (``k_down``) — so the detector stays sensitive near equilibrium
    without chattering under load.  An OVERUSE verdict additionally
    requires ``overuse_windows`` *consecutive* raw overuse windows,
    GCC's "sustained for at least 10 ms" rule in window units.
    """

    def __init__(self, *, k_up: float = 0.01, k_down: float = 0.00018,
                 gamma_init: float = 0.05, gamma_min: float = 0.01,
                 gamma_max: float = 0.6, overuse_windows: int = 2) -> None:
        if k_up <= 0.0 or k_down <= 0.0:
            raise ValueError("k_up and k_down must be positive")
        if not 0.0 < gamma_min <= gamma_init <= gamma_max:
            raise ValueError(
                "need 0 < gamma_min <= gamma_init <= gamma_max")
        if overuse_windows < 1:
            raise ValueError("overuse_windows must be >= 1")
        self._k_up = k_up
        self._k_down = k_down
        self._gamma_init = gamma_init
        self._gamma_min = gamma_min
        self._gamma_max = gamma_max
        self._required = overuse_windows
        self.reset()

    def reset(self) -> None:
        self.gamma = self._gamma_init
        self._overuse_run = 0

    def update(self, m_hat: float) -> BandwidthSignal:
        """Classify the filtered gradient, then adapt the threshold."""
        if m_hat > self.gamma:
            self._overuse_run += 1
            signal = (BandwidthSignal.OVERUSE
                      if self._overuse_run >= self._required
                      else BandwidthSignal.NORMAL)
        elif m_hat < -self.gamma:
            self._overuse_run = 0
            signal = BandwidthSignal.UNDERUSE
        else:
            self._overuse_run = 0
            signal = BandwidthSignal.NORMAL

        k = self._k_up if abs(m_hat) > self.gamma else self._k_down
        self.gamma += k * (abs(m_hat) - self.gamma)
        self.gamma = min(max(self.gamma, self._gamma_min), self._gamma_max)
        return signal


class RateController:
    """GCC's INC/DEC/HOLD finite-state machine and rate laws.

    Dimensionless: "rate" here is whatever quantity the caller steers
    (for :class:`GccController`, the utilization target).  The
    transition table and the three update laws are the canonical GCC
    ones; the 1.5x received-rate cap applies in every state.
    """

    #: state transition table: (state, signal) -> next state.  Pairs
    #: not listed keep the current state.
    _TRANSITIONS = {
        (RateControlState.DECREASE, BandwidthSignal.NORMAL):
            RateControlState.HOLD,
        (RateControlState.DECREASE, BandwidthSignal.UNDERUSE):
            RateControlState.HOLD,
        (RateControlState.HOLD, BandwidthSignal.OVERUSE):
            RateControlState.DECREASE,
        (RateControlState.HOLD, BandwidthSignal.NORMAL):
            RateControlState.INCREASE,
        (RateControlState.INCREASE, BandwidthSignal.OVERUSE):
            RateControlState.DECREASE,
        (RateControlState.INCREASE, BandwidthSignal.UNDERUSE):
            RateControlState.HOLD,
    }

    def __init__(self, initial_rate: float, *, eta: float = GCC_ETA,
                 alpha: float = GCC_ALPHA,
                 min_rate: float = 1e-6) -> None:
        if eta <= 1.0:
            raise ValueError("eta must be > 1 (multiplicative increase)")
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if initial_rate <= 0.0:
            raise ValueError("initial_rate must be positive")
        self._eta = eta
        self._alpha = alpha
        self._min_rate = min_rate
        self._initial_rate = initial_rate
        self.reset()

    def reset(self) -> None:
        self.state = RateControlState.HOLD
        self.rate = self._initial_rate

    def update(self, signal: BandwidthSignal, received_rate: float) -> float:
        """Advance the state machine and apply the matching rate law."""
        self.state = self._TRANSITIONS.get((self.state, signal), self.state)
        cap = RATE_CAP_FACTOR * received_rate
        if self.state is RateControlState.INCREASE:
            rate = min(self._eta * self.rate, cap)
        elif self.state is RateControlState.DECREASE:
            rate = min(self._alpha * received_rate, cap)
        else:
            rate = min(self.rate, cap)
        self.rate = max(rate, self._min_rate)
        return self.rate


@register_policy
class GccController(DvfsPolicy):
    """GCC-style delay-gradient DVFS controller.

    Per window: (1) compute the relative delay gradient
    ``(delay - prev_delay) / prev_delay`` (dimensionless, so the
    detector thresholds are mesh- and clock-independent); (2) filter
    it; (3) classify OVERUSE/UNDERUSE/NORMAL; (4) run the GCC rate
    machine on the *utilization target*, with the measured utilization
    ``generated_flits / (window_cycles * num_nodes)`` playing the
    received-rate role; (5) map the target through eq. (2),
    ``F = f_node * node_lambda / u_target``, clipped to the DVFS range.

    Parameters
    ----------
    k_up, k_down, gamma_init, gamma_min, gamma_max, overuse_windows:
        Overuse-detector knobs (see :class:`OveruseDetector`).
    eta, alpha:
        GCC rate laws (see :class:`RateController`).
    u_init:
        Initial utilization target; also the target's ceiling (a mesh
        cannot usefully run above its saturation utilization).
    """

    name = "gcc"

    def __init__(self, *, k_up: float = 0.01, k_down: float = 0.00018,
                 gamma_init: float = 0.05, gamma_min: float = 0.01,
                 gamma_max: float = 0.6, overuse_windows: int = 2,
                 eta: float = GCC_ETA, alpha: float = GCC_ALPHA,
                 u_init: float = 0.7) -> None:
        if not 0.0 < u_init <= 1.0:
            raise ValueError("u_init must be in (0, 1]")
        self._filter = DelayGradientFilter()
        self._detector = OveruseDetector(
            k_up=k_up, k_down=k_down, gamma_init=gamma_init,
            gamma_min=gamma_min, gamma_max=gamma_max,
            overuse_windows=overuse_windows)
        self._rate = RateController(u_init, eta=eta, alpha=alpha)
        self._u_max = u_init
        self._prev_delay: Optional[float] = None
        self._last_freq: Optional[float] = None

    def reset(self, config: NocConfig) -> float:
        freq = super().reset(config)
        self._filter.reset()
        self._detector.reset()
        self._rate.reset()
        self._prev_delay = None
        self._last_freq = freq
        return freq

    def update(self, sample: MeasurementSample) -> float:
        config = self._require_config()
        delay = sample.mean_delay_ns
        if delay is None or delay <= 0.0:
            # No deliveries this window: nothing to learn, hold the
            # clock (matches DMSD's treatment of empty windows).
            self._prev_delay = None
            freq = self._last_freq if self._last_freq is not None \
                else sample.freq_hz
            self._last_freq = freq
            return freq

        if self._prev_delay is not None and self._prev_delay > 0.0:
            gradient = (delay - self._prev_delay) / self._prev_delay
        else:
            gradient = 0.0
        self._prev_delay = delay

        m_hat = self._filter.update(gradient)
        signal = self._detector.update(m_hat)

        # Measured utilization: flits injected per network cycle per
        # node — the received-rate analogue for the GCC laws.
        if sample.window_cycles > 0 and sample.num_nodes > 0:
            u_meas = sample.generated_flits / (
                sample.window_cycles * sample.num_nodes)
        else:
            u_meas = 0.0
        if u_meas <= 0.0:
            # Idle network: delay gradient already folded; leave the
            # target alone and run at the current clock.
            freq = self._last_freq if self._last_freq is not None \
                else sample.freq_hz
            self._last_freq = freq
            return freq

        u_target = self._rate.update(signal, u_meas)
        u_target = min(u_target, self._u_max)

        # Eq. (2): the node clock that serves node_lambda at u_target.
        freq = config.f_node_hz * sample.node_lambda / u_target
        freq = min(max(freq, config.f_min_hz), config.f_max_hz)
        self._last_freq = freq
        return freq


@register_policy
class UtilityController(DvfsPolicy):
    """Utility-based delay-constrained controller (D'Aronco et al. 2015).

    Solves ``min_u power(u) s.t. delay <= budget`` online by dual
    ascent.  With the quadratic power proxy
    ``power(u) = power_weight * u^2`` (dynamic power rises roughly
    quadratically with the clock via the voltage scaling that
    accompanies it), the Lagrangian argmin is closed-form:
    ``u* = clamp(mu / (2 * power_weight), 0, 1)``, mapped affinely to
    ``[f_min, f_max]``.  The price update is a subgradient step on the
    normalized constraint violation::

        mu <- max(0, mu + price_step * (delay - budget) / budget)

    Delay above budget raises the price and with it the clock; delay
    under budget lets the price decay and the clock sink toward
    ``f_min``.  ``mu`` starts at ``2 * power_weight`` so the first
    window runs at ``f_max``, matching every other policy's reset
    contract.

    Parameters
    ----------
    delay_budget_ns:
        The delay constraint (required — there is no universal
        default; the sweep strategy derives one from the scenario's
        target delay when not given explicitly).
    price_step:
        Dual-ascent step size on the normalized violation.
    power_weight:
        Curvature of the power proxy; sets how expensive high clocks
        are relative to delay violations.
    """

    name = "utility"

    def __init__(self, *, delay_budget_ns: float,
                 price_step: float = 0.5,
                 power_weight: float = 1.0) -> None:
        if delay_budget_ns <= 0.0:
            raise ValueError("delay_budget_ns must be positive")
        if price_step <= 0.0:
            raise ValueError("price_step must be positive")
        if power_weight <= 0.0:
            raise ValueError("power_weight must be positive")
        self.delay_budget_ns = delay_budget_ns
        self._step = price_step
        self._weight = power_weight
        self._mu = 2.0 * power_weight
        self._last_freq: Optional[float] = None

    def reset(self, config: NocConfig) -> float:
        freq = super().reset(config)
        self._mu = 2.0 * self._weight
        self._last_freq = freq
        return freq

    def update(self, sample: MeasurementSample) -> float:
        config = self._require_config()
        delay = sample.mean_delay_ns
        if delay is None:
            freq = self._last_freq if self._last_freq is not None \
                else sample.freq_hz
            self._last_freq = freq
            return freq

        violation = (delay - self.delay_budget_ns) / self.delay_budget_ns
        self._mu = max(0.0, self._mu + self._step * violation)
        u = min(max(self._mu / (2.0 * self._weight), 0.0), 1.0)
        freq = config.f_min_hz + u * (config.f_max_hz - config.f_min_hz)
        self._last_freq = freq
        return freq
