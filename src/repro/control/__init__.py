"""Adaptive DVFS controller family (beyond the paper's static laws).

The paper's RMSD and DMSD are *static* feedback laws: their operating
target (``lambda_max``, the delay setpoint) is chosen offline and held
for the whole run.  This package adds controllers that adapt the
target online from the measurements themselves:

* :class:`~repro.control.adaptive.GccController` (``"gcc"``) — a
  delay-*gradient* controller in the style of Google Congestion
  Control: a Kalman filter estimates the per-window delay gradient, an
  overuse detector with an adaptive threshold classifies the window,
  and an INC/DEC/HOLD state machine steers the network-utilization
  target that eq. (2) turns into a frequency.
* :class:`~repro.control.adaptive.UtilityController` (``"utility"``)
  — a utility-maximizing delay-constrained controller after D'Aronco
  et al. 2015: dual ascent on the Lagrangian of "minimize power
  subject to delay <= budget", with the delay price as the only state.

Importing this package registers both with the policy registry
(:mod:`repro.core.registry`), so they resolve by name through every
consumer — ``Simulation(controller="gcc")``, ``ScenarioSpec``,
``run_sweep``, the CLI's ``--policy gcc:k_up=0.04`` and
``list-scenarios``.  Their steady-state sweep strategies live in
:mod:`repro.analysis.sweep` next to the paper policies' and are
registered as **opt-in** (``default=False``): the adaptive family
never silently changes the paper's three-policy default figures, but
joins any sweep that names it (``Workbench(policies=[...])``,
``--policy gcc``).
"""

from .adaptive import (BandwidthSignal, DelayGradientFilter,
                       GccController, OveruseDetector, RateControlState,
                       RateController, UtilityController)

__all__ = [
    "BandwidthSignal",
    "DelayGradientFilter",
    "GccController",
    "OveruseDetector",
    "RateControlState",
    "RateController",
    "UtilityController",
]
