"""DVFS policy interface and trivial policies.

A policy is the "DVFS-Ctrl" block of paper Figs. 1 and 3: once per
control period it receives the aggregated measurement of the window
(a ``MeasurementSample``) and returns the network clock frequency to
apply next.  The simulation kernel clips the returned frequency into
``[Fmin, Fmax]`` exactly as the PLL's tuning range would.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..noc.config import NocConfig
from ..noc.stats import MeasurementSample
from .registry import register_policy


class DvfsPolicy(ABC):
    """Base class for global NoC DVFS controllers."""

    #: registry/display name, set by subclasses
    name: str = "abstract"

    def __init__(self) -> None:
        self.config: NocConfig | None = None

    def reset(self, config: NocConfig) -> float:
        """Bind to a configuration; return the initial frequency (Hz).

        Policies start at ``Fmax`` — the safe operating point before
        any measurement exists.
        """
        self.config = config
        return config.f_max_hz

    @abstractmethod
    def update(self, sample: MeasurementSample) -> float:
        """Return the frequency (Hz) for the next control period."""

    def _require_config(self) -> NocConfig:
        if self.config is None:
            raise RuntimeError(
                f"{type(self).__name__}.update() called before reset()")
        return self.config


@register_policy
class NoDvfs(DvfsPolicy):
    """The paper's baseline: the NoC always runs at ``Fmax``."""

    name = "no-dvfs"

    def update(self, sample: MeasurementSample) -> float:
        return self._require_config().f_max_hz


@register_policy
class FixedFrequency(DvfsPolicy):
    """Pin the network clock to one frequency (sweeps, debugging)."""

    name = "fixed"

    def __init__(self, freq_hz: float) -> None:
        super().__init__()
        if freq_hz <= 0:
            raise ValueError("frequency must be positive")
        self.freq_hz = freq_hz

    def reset(self, config: NocConfig) -> float:
        super().reset(config)
        return self.freq_hz

    def update(self, sample: MeasurementSample) -> float:
        return self.freq_hz
