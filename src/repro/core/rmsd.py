"""RMSD — Rate-based Max Slow Down (paper Sec. III, Fig. 1).

The aggressive, power-first policy: slow the network clock down to the
minimum frequency that still sustains the measured injection rate.
Setting the network-domain rate to the target ``lambda_max`` (a safety
margin below saturation) in eq. (1) gives the open-loop law, eq. (2):

    Fnoc = Fnode * lambda_node / lambda_max

clipped to the PLL range ``[Fmin, Fmax]``.  Inside the corresponding
node-rate range ``[lambda_min, lambda_max]`` the network always
operates at ``lambda_max`` — constant latency in cycles, minimum
power, and the anomalous non-monotonic *delay in nanoseconds* the
paper reports (Fig. 2(b)).
"""

from __future__ import annotations

from ..noc.config import NocConfig
from ..noc.stats import MeasurementSample
from .policy import DvfsPolicy
from .registry import register_policy


def rmsd_frequency(config: NocConfig, node_lambda: float,
                   lambda_max: float) -> float:
    """The open-loop frequency law of eq. (2), with clipping.

    This closed form is what the measurement-driven controller
    converges to under stationary traffic; the analysis layer uses it
    directly for steady-state sweeps.
    """
    if lambda_max <= 0:
        raise ValueError("lambda_max must be positive")
    if node_lambda < 0:
        raise ValueError("injection rate must be non-negative")
    f = config.f_node_hz * node_lambda / lambda_max
    return min(config.f_max_hz, max(config.f_min_hz, f))


def lambda_min_for(config: NocConfig, lambda_max: float) -> float:
    """Node rate below which the clock clips at ``Fmin`` (Sec. III).

    From eq. (2): ``Fnoc = Fmin`` when ``lambda_node =
    lambda_max * Fmin / Fnode``.
    """
    if lambda_max <= 0:
        raise ValueError("lambda_max must be positive")
    return lambda_max * config.f_min_hz / config.f_node_hz


@register_policy
class RmsdController(DvfsPolicy):
    """Measurement-driven RMSD (the architecture of paper Fig. 1).

    Transmitting nodes report flits injected per elapsed window; the
    controller averages them into ``lambda_node`` and applies eq. (2).
    An optional exponentially-weighted moving average smooths bursty
    measurements (``smoothing = 0`` reproduces the paper's memoryless
    controller).
    """

    name = "rmsd"

    def __init__(self, lambda_max: float, smoothing: float = 0.0) -> None:
        super().__init__()
        if lambda_max <= 0:
            raise ValueError("lambda_max must be positive")
        if not 0.0 <= smoothing < 1.0:
            raise ValueError("smoothing must be in [0, 1)")
        self.lambda_max = lambda_max
        self.smoothing = smoothing
        self._lambda_est: float | None = None

    def reset(self, config: NocConfig) -> float:
        self._lambda_est = None
        return super().reset(config)

    def update(self, sample: MeasurementSample) -> float:
        config = self._require_config()
        measured = sample.node_lambda
        if self._lambda_est is None or self.smoothing == 0.0:
            self._lambda_est = measured
        else:
            a = self.smoothing
            self._lambda_est = a * self._lambda_est + (1.0 - a) * measured
        return rmsd_frequency(config, self._lambda_est, self.lambda_max)
