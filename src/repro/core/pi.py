"""The proportional–integral controller used by DMSD (paper Fig. 3).

The paper's update law, in its exact incremental ("velocity") form:

    U_n = U_{n-1} + KI * E_n + KP * (E_n - E_{n-1})

with the control variable ``U`` clamped to ``[u_min, u_max]``.
Clamping the state itself (rather than only the output) provides
anti-windup: when the NoC pegs at ``Fmin``/``Fmax`` the integrator
does not keep accumulating, so recovery from saturation is immediate —
necessary for the stability the paper asserts for its gain choice
``KI = 0.025``, ``KP = 0.0125``.
"""

from __future__ import annotations


class PiController:
    """Incremental-form PI controller with output clamping."""

    def __init__(self, ki: float, kp: float,
                 u_min: float = 0.0, u_max: float = 1.0,
                 u_init: float | None = None) -> None:
        if u_min >= u_max:
            raise ValueError("need u_min < u_max")
        if ki < 0 or kp < 0:
            raise ValueError("gains must be non-negative")
        self.ki = ki
        self.kp = kp
        self.u_min = u_min
        self.u_max = u_max
        self.u = u_max if u_init is None else self._clamp(u_init)
        self._prev_error: float | None = None

    def _clamp(self, u: float) -> float:
        return min(self.u_max, max(self.u_min, u))

    def step(self, error: float) -> float:
        """Consume one error sample, return the new control value."""
        prev = error if self._prev_error is None else self._prev_error
        self.u = self._clamp(self.u + self.ki * error
                             + self.kp * (error - prev))
        self._prev_error = error
        return self.u

    def reset(self, u_init: float | None = None) -> None:
        """Forget history; optionally restart from a given state."""
        self.u = self.u_max if u_init is None else self._clamp(u_init)
        self._prev_error = None

    @property
    def saturated_low(self) -> bool:
        return self.u <= self.u_min

    @property
    def saturated_high(self) -> bool:
        return self.u >= self.u_max

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"PiController(ki={self.ki}, kp={self.kp}, "
                f"u={self.u:.4f})")
