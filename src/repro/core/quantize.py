"""Discrete frequency levels (paper Sec. IV-A, footnote 2).

The paper lets the controller pick any frequency in the PLL range and
notes that "the results remain valid in case of discrete values".
``QuantizedPolicy`` wraps any policy and snaps its output to a finite
level set, rounding *up* to the next available level so a delay/rate
guarantee is never violated by quantization.  The ablation benchmark
``test_ablation_quantization`` checks the paper's footnote claim.
"""

from __future__ import annotations

from ..noc.config import NocConfig
from ..noc.stats import MeasurementSample
from .policy import DvfsPolicy


def uniform_levels(config: NocConfig, count: int) -> list[float]:
    """``count`` evenly spaced frequency levels over [Fmin, Fmax]."""
    if count < 2:
        raise ValueError("need at least two frequency levels")
    step = (config.f_max_hz - config.f_min_hz) / (count - 1)
    return [config.f_min_hz + i * step for i in range(count)]


class QuantizedPolicy(DvfsPolicy):
    """Wrap a policy; snap requested frequencies up to discrete levels."""

    def __init__(self, inner: DvfsPolicy, levels: list[float] | None = None,
                 num_levels: int = 8) -> None:
        super().__init__()
        self.inner = inner
        self._explicit_levels = sorted(levels) if levels else None
        self.num_levels = num_levels
        self.levels: list[float] = []
        self.name = f"{inner.name}-q"

    def reset(self, config: NocConfig) -> float:
        super().reset(config)
        if self._explicit_levels is not None:
            self.levels = self._explicit_levels
            if (self.levels[0] > config.f_min_hz * (1 + 1e-12)
                    or self.levels[-1] < config.f_max_hz * (1 - 1e-12)):
                raise ValueError(
                    "explicit levels must span [f_min, f_max]")
        else:
            self.levels = uniform_levels(config, self.num_levels)
        return self.snap(self.inner.reset(config))

    def snap(self, freq_hz: float) -> float:
        """Smallest level >= requested frequency (clipped to the top)."""
        for level in self.levels:
            if level >= freq_hz - 1e-6:
                return level
        return self.levels[-1]

    def update(self, sample: MeasurementSample) -> float:
        return self.snap(self.inner.update(sample))
