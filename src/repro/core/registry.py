"""Name -> factory registries for scenario building blocks.

The paper evaluates exactly three controllers, and before this module
existed that triple was hardwired as string literals across the
analysis and experiment layers — nothing user-defined could reach the
sweep planner, the batched kernel or the distributed queue.  The
registries turn "which controller / which workload" into *data*:

* :data:`POLICY_REGISTRY` maps policy names to
  :class:`~repro.core.policy.DvfsPolicy` subclasses (the transient
  controllers of paper Figs. 1 and 3) and, via
  :func:`register_strategy`, to steady-state sweep-strategy factories
  (what ``run_sweep`` evaluates per rate point);
* a mirror registry for traffic patterns lives in
  :mod:`repro.traffic.patterns` (built on the same :class:`Registry`).

A :class:`Ref` is a frozen ``(name, params)`` pair — the canonical
spelling of "this policy with these parameters".  Parameters are
structured data, never strings at call sites; :meth:`Ref.parse` is the
*one* place the CLI's ``"dmsd:target_delay_ns=500,ki=0.05"`` surface
syntax is decoded.

Factories always construct **fresh instances**: controllers carry PI
state and ``reset()`` mutates them in place, so a shared instance
reused across sweep units would leak state between points (the
regression tests pin this).  Look names up, never cache the objects.
"""

from __future__ import annotations

import ast
import inspect
import re
from dataclasses import dataclass
from types import MappingProxyType
from typing import Any, Callable, Mapping

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


@dataclass(frozen=True)
class Ref:
    """A registry name plus structured parameters, frozen and digestable.

    ``params`` is kept canonically sorted by key, so two refs built
    from the same keyword arguments in any order compare (and hash,
    and digest) equal.  Parameter values should be hashable — numbers,
    strings, tuples, frozen dataclasses such as ``SimBudget``.
    """

    name: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not _NAME_RE.match(self.name):
            raise ValueError(
                f"invalid registry name {self.name!r} (letters, digits, "
                f"'_', '-', '.' only, must not be empty)")
        pairs = tuple(self.params)
        for pair in pairs:
            if (not isinstance(pair, tuple) or len(pair) != 2
                    or not isinstance(pair[0], str)):
                raise ValueError(
                    f"params must be (key, value) pairs, got {pair!r}")
        object.__setattr__(self, "params", tuple(sorted(pairs)))

    # --- construction --------------------------------------------------
    @classmethod
    def of(cls, name: str, **params) -> "Ref":
        """Structured spelling: ``Ref.of("dmsd", target_delay_ns=500)``."""
        return cls(name, tuple(params.items()))

    @classmethod
    def parse(cls, text: str) -> "Ref":
        """Decode the CLI surface syntax ``name[:key=value,...]``.

        Values are Python literals when they parse as one (``0.05``,
        ``500``, ``True``, ``'x'``) and plain strings otherwise.  This
        is the only place that syntax is interpreted — code should
        build refs with :meth:`of` instead of assembling strings.
        """
        if not isinstance(text, str):
            raise ValueError(f"expected a string, got {text!r}")
        name, sep, rest = text.partition(":")
        params: dict[str, Any] = {}
        if sep:
            if not rest.strip():
                raise ValueError(
                    f"empty parameter list in {text!r} (drop the ':' or "
                    f"spell name:key=value)")
            for item in rest.split(","):
                key, eq, raw = item.partition("=")
                key = key.strip()
                if not eq or not key:
                    raise ValueError(
                        f"malformed parameter {item!r} in {text!r} "
                        f"(expected key=value)")
                try:
                    value = ast.literal_eval(raw.strip())
                except (ValueError, SyntaxError):
                    value = raw.strip()
                params[key] = value
        return cls.of(name.strip(), **params)

    @classmethod
    def coerce(cls, value: "Ref | str") -> "Ref":
        """A ref from either spelling (ref objects pass through)."""
        if isinstance(value, Ref):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        raise ValueError(
            f"cannot interpret {value!r} as a registry reference "
            f"(expected a name string or a Ref)")

    # --- views ---------------------------------------------------------
    @property
    def label(self) -> str:
        """Display/series label: the name, plus params when present."""
        if not self.params:
            return self.name
        inner = ",".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.name}:{inner}"

    def kwargs(self) -> dict[str, Any]:
        """The parameters as keyword arguments for the factory."""
        return dict(self.params)

    def spec_key(self) -> tuple:
        """Canonical identity tuple (digest/cache-key input)."""
        return (self.name,) + tuple((k, repr(v)) for k, v in self.params)


def _accepted_params(factory: Callable, skip: tuple[str, ...]) -> \
        tuple[str, ...] | None:
    """Keyword parameters ``factory`` accepts; None = accepts anything."""
    try:
        sig = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins without introspection
        return None
    names = []
    for name, param in sig.parameters.items():
        if param.kind == inspect.Parameter.VAR_KEYWORD:
            return None
        if param.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                          inspect.Parameter.KEYWORD_ONLY):
            if name not in skip:
                names.append(name)
    return tuple(names)


def _positional_names(factory: Callable, count: int) -> tuple[str, ...]:
    """Names of the first ``count`` positional parameters (to skip)."""
    if count == 0:
        return ()
    try:
        sig = inspect.signature(factory)
    except (TypeError, ValueError):
        return ()
    pos = [name for name, param in sig.parameters.items()
           if param.kind in (inspect.Parameter.POSITIONAL_ONLY,
                             inspect.Parameter.POSITIONAL_OR_KEYWORD)]
    return tuple(pos[:count])


class Registry:
    """An insertion-ordered name -> factory map with clean errors.

    Unknown names and unknown/invalid parameters raise ``ValueError``
    with the accepted alternatives spelled out, at both the API and
    (via the CLI's use of these calls) the command-line layer.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, Callable] = {}

    # --- registration --------------------------------------------------
    def add(self, name: str, factory: Callable, *,
            replace: bool = False) -> Callable:
        """Register ``factory`` under ``name``; returns the factory."""
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ValueError(f"invalid {self.kind} name {name!r}")
        if name in self._factories and not replace:
            raise ValueError(
                f"{self.kind} {name!r} is already registered "
                f"(pass replace=True to override)")
        self._factories[name] = factory
        return factory

    def remove(self, name: str) -> None:
        """Drop a registration (tests and plugin teardown)."""
        if name not in self._factories:
            raise ValueError(f"{self.kind} {name!r} is not registered")
        del self._factories[name]

    def registering(self, cls=None, *, name: str | None = None,
                    replace: bool = False):
        """The class-decorator form of :meth:`add`.

        Backs ``@register_policy`` and ``@register_pattern``: usable
        bare (``@REG.registering``) or parameterized
        (``@REG.registering(name="mine", replace=True)``); the name
        defaults to the class's ``name`` attribute.
        """
        def wrap(klass):
            self.add(name or klass.name, klass, replace=replace)
            return klass
        return wrap(cls) if cls is not None else wrap

    # --- lookup --------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def names(self) -> tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._factories)

    @property
    def mapping(self) -> Mapping[str, Callable]:
        """Live read-only name -> factory view (compatibility dict)."""
        return MappingProxyType(self._factories)

    def factory(self, name: str) -> Callable:
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories)) or "none"
            raise ValueError(f"unknown {self.kind} {name!r}; "
                             f"known: {known}") from None

    def accepted_params(self, name: str,
                        skip_positional: int = 0) -> tuple[str, ...] | None:
        """Parameter names ``create`` accepts for this entry.

        ``None`` means the factory takes arbitrary keywords.
        ``skip_positional`` hides leading positional arguments the
        caller supplies itself (e.g. the mesh for traffic patterns).
        """
        factory = self.factory(name)
        skip = _positional_names(factory, skip_positional)
        return _accepted_params(factory, skip)

    # --- instantiation -------------------------------------------------
    def create(self, ref: "Ref | str", *args, **extra) -> Any:
        """A **fresh** instance of ``ref`` with its parameters applied.

        Never hand out shared instances: controllers are stateful and
        ``reset()`` mutates them, so every unit of work gets its own.
        """
        ref = Ref.coerce(ref)
        factory = self.factory(ref.name)
        params = {**ref.kwargs(), **extra}
        self._check_params(ref.name, factory, params,
                           skip=_positional_names(factory, len(args)))
        try:
            return factory(*args, **params)
        except TypeError as exc:
            raise ValueError(
                f"cannot instantiate {self.kind} {ref.name!r} with "
                f"parameters {sorted(params) or 'none'}: {exc}") from exc

    def _check_params(self, name: str, factory: Callable,
                      params: Mapping[str, Any],
                      skip: tuple[str, ...]) -> None:
        accepted = _accepted_params(factory, skip)
        if accepted is None:
            return
        unknown = sorted(set(params) - set(accepted))
        if unknown:
            raise ValueError(
                f"{self.kind} {name!r} does not accept parameter(s) "
                f"{', '.join(map(repr, unknown))}; accepted: "
                f"{', '.join(accepted) or 'none'}")

    def validate_ref(self, ref: "Ref | str",
                     skip_positional: int = 0) -> "Ref":
        """Coerce and fully validate a ref (name *and* parameters).

        The eager form of the checks ``create`` performs — the CLI and
        spec constructors call it so misspellings fail at parse time,
        not deep inside a sweep or a worker process.
        """
        ref = Ref.coerce(ref)
        factory = self.factory(ref.name)
        self._check_params(ref.name, factory, ref.kwargs(),
                           skip=_positional_names(factory,
                                                  skip_positional))
        return ref


class PolicyRegistry(Registry):
    """The policy registry: controllers plus sweep-strategy factories.

    A policy participates in two execution modes:

    * **transient** — its :class:`~repro.core.policy.DvfsPolicy`
      subclass drives ``Simulation`` cycle by cycle;
    * **steady-state sweeps** — a *strategy factory* builds the
      :class:`~repro.analysis.sweep.SteadyStateStrategy` that
      ``run_sweep`` evaluates per rate point.  Factories take a
      :class:`~repro.analysis.sweep.StrategyResources` first (scenario
      -derived quantities like ``lambda_max``; may be ``None``) plus
      the ref's parameters.

    One ref drives both sides: when instantiating either side, a
    parameter the *other* side accepts is silently set aside for it
    (``dmsd:target_delay_ns=150,iterations=8`` builds a controller —
    ``iterations`` is sweep-side — and a strategy alike), while a
    parameter unknown to both raises the usual ``ValueError``.

    Only policies with a strategy factory appear in
    :func:`default_policies` — the ordering every figure sweeps by
    default.
    """

    def __init__(self) -> None:
        super().__init__("policy")
        self._strategies: dict[str, Callable] = {}
        self._default: dict[str, bool] = {}

    def remove(self, name: str) -> None:
        super().remove(name)
        self._strategies.pop(name, None)
        self._default.pop(name, None)

    def add_strategy(self, name: str, factory: Callable, *,
                     replace: bool = False,
                     default: bool = True) -> Callable:
        if name not in self:
            known = ", ".join(sorted(self.names())) or "none"
            raise ValueError(
                f"cannot attach a sweep strategy to unregistered "
                f"policy {name!r}; register the policy first "
                f"(known: {known})")
        if name in self._strategies and not replace:
            raise ValueError(
                f"policy {name!r} already has a sweep strategy "
                f"(pass replace=True to override)")
        self._strategies[name] = factory
        self._default[name] = default
        return factory

    def has_strategy(self, name: str) -> bool:
        return name in self._strategies

    def strategy_factory(self, name: str) -> Callable:
        self.factory(name)  # unknown-policy error takes precedence
        try:
            return self._strategies[name]
        except KeyError:
            raise ValueError(
                f"policy {name!r} has no steady-state sweep strategy; "
                f"register one with register_strategy({name!r}, ...) "
                f"to use it in sweeps") from None

    def sweepable(self) -> tuple[str, ...]:
        """Names usable in sweeps, in registration order."""
        return tuple(n for n in self.names() if n in self._strategies)

    def default_sweep(self) -> tuple[str, ...]:
        """Sweepable names that joined the default set.

        A strategy registered with ``default=False`` is *opt-in*: it
        resolves by name anywhere but never silently widens the
        figures' default policy comparison.
        """
        return tuple(n for n in self.sweepable() if self._default[n])

    def is_default(self, name: str) -> bool:
        """Whether ``name`` is in the default sweep set."""
        return self._default.get(name, False)

    def strategy_params(self, name: str) -> tuple[str, ...] | None:
        """Parameters the sweep-strategy factory accepts (for help)."""
        factory = self.strategy_factory(name)
        return _accepted_params(factory, _positional_names(factory, 1))

    def _side_params(self, name: str, params: dict,
                     factory: Callable, skip: tuple[str, ...],
                     other: tuple[Callable, tuple[str, ...]] | None
                     ) -> dict:
        """Filter a dual-side ref's params down to one side's share.

        Keeps what ``factory`` accepts; params the other side accepts
        are dropped here (they are that side's business); params
        unknown to both raise listing the union.
        """
        accepted = _accepted_params(factory, skip)
        if accepted is None:
            return params
        keep = {k: v for k, v in params.items() if k in accepted}
        leftover = set(params) - set(keep)
        if not leftover:
            return keep
        union = set(accepted)
        if other is not None:
            other_accepted = _accepted_params(other[0], other[1])
            if other_accepted is None:
                return keep
            union |= set(other_accepted)
            leftover -= set(other_accepted)
        if leftover:
            raise ValueError(
                f"{self.kind} {name!r} does not accept parameter(s) "
                f"{', '.join(map(repr, sorted(leftover)))}; accepted: "
                f"{', '.join(sorted(union)) or 'none'}")
        return keep

    def _strategy_side(self, name: str
                       ) -> tuple[Callable, tuple[str, ...]] | None:
        if not self.has_strategy(name):
            return None
        factory = self._strategies[name]
        return factory, _positional_names(factory, 1)

    def create(self, ref: "Ref | str", *args, **extra) -> Any:
        """A fresh controller; sweep-side params are set aside."""
        ref = Ref.coerce(ref)
        factory = self.factory(ref.name)
        params = self._side_params(
            ref.name, {**ref.kwargs(), **extra}, factory,
            _positional_names(factory, len(args)),
            self._strategy_side(ref.name))
        try:
            return factory(*args, **params)
        except TypeError as exc:
            raise ValueError(
                f"cannot instantiate {self.kind} {ref.name!r} with "
                f"parameters {sorted(params) or 'none'}: {exc}") from exc

    def validate_sweep_ref(self, policy: "Ref | str") -> Ref:
        """Coerce and validate a ref destined for steady-state sweeps.

        Stricter than :func:`as_policy_ref`: the policy must have a
        sweep strategy, and the parameters must be ones the *strategy*
        factory accepts — ``Workbench(policies=...)`` and the CLI
        ``--policy`` flag use this so a sweep-incapable policy or a
        controller-only parameter fails at parse time with the usual
        clean message, not mid-run.
        """
        ref = Ref.coerce(policy)
        factory = self.strategy_factory(ref.name)  # unknown/no-strategy
        self._check_params(ref.name, factory, ref.kwargs(),
                           skip=_positional_names(factory, 1))
        return ref

    def create_strategy(self, ref: "Ref | str", resources=None,
                        **extra) -> Any:
        """A fresh steady-state strategy; controller-side params are
        set aside (they shape the transient loop only)."""
        ref = Ref.coerce(ref)
        factory = self.strategy_factory(ref.name)
        controller = self.factory(ref.name)
        params = self._side_params(
            ref.name, {**ref.kwargs(), **extra}, factory,
            _positional_names(factory, 1), (controller, ()))
        try:
            return factory(resources, **params)
        except TypeError as exc:
            raise ValueError(
                f"cannot build a sweep strategy for policy "
                f"{ref.name!r} with parameters "
                f"{sorted(params) or 'none'}: {exc}") from exc


#: The process-wide policy registry.
POLICY_REGISTRY = PolicyRegistry()


def register_policy(cls=None, *, name: str | None = None,
                    replace: bool = False):
    """Class decorator registering a ``DvfsPolicy`` under ``cls.name``.

    Usable bare (``@register_policy``) or parameterized
    (``@register_policy(name="mine", replace=True)``).
    """
    return POLICY_REGISTRY.registering(cls, name=name, replace=replace)


def register_strategy(name: str, factory: Callable | None = None, *,
                      replace: bool = False, default: bool = True):
    """Attach a sweep-strategy factory to a registered policy.

    ``factory(resources, **params)`` must return a
    ``SteadyStateStrategy``; ``resources`` may be ``None`` when the
    caller supplies every parameter explicitly.  Usable as a decorator
    (``@register_strategy("mine")``) or called directly.  Pass
    ``default=False`` for an opt-in policy: resolvable by name
    everywhere, but excluded from :func:`default_policies` so the
    standard figures keep the paper's comparison set.
    """
    def wrap(fn):
        return POLICY_REGISTRY.add_strategy(
            name, fn, replace=replace, default=default)
    return wrap(factory) if factory is not None else wrap


def make_policy(policy: "Ref | str", **extra):
    """A fresh controller instance for a policy ref or name."""
    return POLICY_REGISTRY.create(policy, **extra)


def make_strategy(policy: "Ref | str", resources=None, **extra):
    """A fresh steady-state sweep strategy for a policy ref or name."""
    return POLICY_REGISTRY.create_strategy(policy, resources, **extra)


def policy_names() -> tuple[str, ...]:
    """All registered policy names, in registration order."""
    return POLICY_REGISTRY.names()


def default_policies() -> tuple[str, ...]:
    """The registry's default sweep ordering.

    With only the built-ins loaded this is exactly the paper's triple
    ``("no-dvfs", "rmsd", "dmsd")``; plugin policies registered with a
    sweep strategy extend it in registration order, which is how a
    custom controller shows up in every figure without touching them.
    Strategies registered with ``default=False`` (the adaptive
    ``gcc``/``utility`` built-ins) are opt-in and excluded here.
    """
    return POLICY_REGISTRY.default_sweep()


def as_policy_ref(policy: "Ref | str") -> Ref:
    """Coerce and validate a policy reference against the registry.

    A parameter is valid when *either* the controller constructor or
    the sweep-strategy factory accepts it — one ref drives both (e.g.
    ``dmsd``'s ``ki`` is controller-side, ``iterations`` sweep-side).
    """
    ref = Ref.coerce(policy)
    factory = POLICY_REGISTRY.factory(ref.name)  # clean unknown error
    sides = [_accepted_params(factory, ())]
    if POLICY_REGISTRY.has_strategy(ref.name):
        strategy = POLICY_REGISTRY.strategy_factory(ref.name)
        sides.append(_accepted_params(strategy,
                                      _positional_names(strategy, 1)))
    if any(side is None for side in sides):  # a side takes **kwargs
        return ref
    accepted = {name for side in sides for name in side}
    unknown = sorted(set(ref.kwargs()) - accepted)
    if unknown:
        raise ValueError(
            f"policy {ref.name!r} does not accept parameter(s) "
            f"{', '.join(map(repr, unknown))}; accepted: "
            f"{', '.join(sorted(accepted)) or 'none'}")
    return ref
