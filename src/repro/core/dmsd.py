"""DMSD — Delay-based Max Slow Down (paper Sec. IV, Fig. 3).

The paper's proposed policy: receiving nodes timestamp packets and
report end-to-end delays; the controller node averages them, subtracts
a *target delay*, and drives a PI loop whose output sets the network
frequency.  Power is minimized **under a delay constraint** instead of
unconditionally, which is what wins the power–delay trade-off.

Controller mapping (Fig. 3): the PI state ``U`` lives in ``[0, 1]``
and maps affinely onto ``[Fmin, Fmax]``.  The error fed to the loop is
normalized by the target delay so the paper's gains (``KI = 0.025``,
``KP = 0.0125``) are meaningful regardless of the absolute target:
delay above target -> positive error -> higher frequency.
"""

from __future__ import annotations

from ..noc.config import NocConfig
from ..noc.stats import MeasurementSample
from .pi import PiController
from .policy import DvfsPolicy
from .registry import register_policy

#: The paper's PI gains ("a good compromise between stability and
#: reactivity", Sec. IV).
PAPER_KI = 0.025
PAPER_KP = 0.0125


@register_policy
class DmsdController(DvfsPolicy):
    """Closed-loop delay-tracking DVFS controller."""

    name = "dmsd"

    def __init__(self, target_delay_ns: float, ki: float = PAPER_KI,
                 kp: float = PAPER_KP) -> None:
        super().__init__()
        if target_delay_ns <= 0:
            raise ValueError("target delay must be positive")
        self.target_delay_ns = target_delay_ns
        self.pi = PiController(ki=ki, kp=kp, u_min=0.0, u_max=1.0,
                               u_init=1.0)

    # ------------------------------------------------------------------
    def _frequency_of(self, u: float) -> float:
        config = self._require_config()
        return config.f_min_hz + u * (config.f_max_hz - config.f_min_hz)

    def reset(self, config: NocConfig) -> float:
        # Start from Fmax: delay begins below target, the integrator
        # then walks the frequency down — the safe direction.
        self.pi.reset(u_init=1.0)
        return super().reset(config)

    def update(self, sample: MeasurementSample) -> float:
        self._require_config()
        if sample.mean_delay_ns is None:
            # No packet delivered this window (very low load): no
            # information, hold the operating point.
            return self._frequency_of(self.pi.u)
        error = ((sample.mean_delay_ns - self.target_delay_ns)
                 / self.target_delay_ns)
        u = self.pi.step(error)
        return self._frequency_of(u)


def dmsd_target_from_rmsd(rmsd_delay_at_lambda_max_ns: float) -> float:
    """The paper's choice of target delay (Sec. IV).

    The target is set to the RMSD delay at ``lambda_max`` — the point
    where RMSD runs at full frequency — so both policies deliver the
    same delay at the top of the rate range and differ only below it.
    """
    if rmsd_delay_at_lambda_max_ns <= 0:
        raise ValueError("delay must be positive")
    return rmsd_delay_at_lambda_max_ns
