"""The paper's contribution: global DVFS policies for the NoC."""

# Policies register themselves (@register_policy at class definition,
# which repro-lint rule D006 enforces), so *import order here is
# registration order*: policy (no-dvfs, fixed), then rmsd, then dmsd
# keeps the paper's evaluation order — every figure sweeps no-dvfs,
# rmsd, dmsd unless told otherwise (``fixed`` has no steady-state
# strategy and never enters a default sweep).  Sweep-strategy
# factories for the paper triple are attached by
# ``repro.analysis.sweep`` at import time.
from .policy import DvfsPolicy, FixedFrequency, NoDvfs
from .rmsd import RmsdController, lambda_min_for, rmsd_frequency
from .dmsd import DmsdController, PAPER_KI, PAPER_KP, dmsd_target_from_rmsd
from .pi import PiController
from .quantize import QuantizedPolicy, uniform_levels
from .registry import (POLICY_REGISTRY, Ref, as_policy_ref,
                       default_policies, make_policy, make_strategy,
                       policy_names, register_policy, register_strategy)

__all__ = [
    "DmsdController",
    "DvfsPolicy",
    "FixedFrequency",
    "NoDvfs",
    "PAPER_KI",
    "PAPER_KP",
    "PiController",
    "POLICY_REGISTRY",
    "QuantizedPolicy",
    "Ref",
    "RmsdController",
    "as_policy_ref",
    "default_policies",
    "dmsd_target_from_rmsd",
    "lambda_min_for",
    "make_policy",
    "make_strategy",
    "policy_names",
    "register_policy",
    "register_strategy",
    "rmsd_frequency",
    "uniform_levels",
]
