"""The paper's contribution: global DVFS policies for the NoC."""

from .dmsd import DmsdController, PAPER_KI, PAPER_KP, dmsd_target_from_rmsd
from .pi import PiController
from .policy import DvfsPolicy, FixedFrequency, NoDvfs
from .quantize import QuantizedPolicy, uniform_levels
from .registry import (POLICY_REGISTRY, Ref, as_policy_ref,
                       default_policies, make_policy, make_strategy,
                       policy_names, register_policy, register_strategy)
from .rmsd import RmsdController, lambda_min_for, rmsd_frequency

# The paper's evaluation order is the registry's default ordering:
# every figure sweeps no-dvfs, rmsd, dmsd (in that order) unless told
# otherwise.  ``fixed`` pins one frequency for debugging/sweep
# scaffolding and has no steady-state strategy, so it never enters a
# default sweep.  Sweep-strategy factories for the first three are
# attached by ``repro.analysis.sweep`` at import time.
register_policy(NoDvfs)
register_policy(RmsdController)
register_policy(DmsdController)
register_policy(FixedFrequency)

__all__ = [
    "DmsdController",
    "DvfsPolicy",
    "FixedFrequency",
    "NoDvfs",
    "PAPER_KI",
    "PAPER_KP",
    "PiController",
    "POLICY_REGISTRY",
    "QuantizedPolicy",
    "Ref",
    "RmsdController",
    "as_policy_ref",
    "default_policies",
    "dmsd_target_from_rmsd",
    "lambda_min_for",
    "make_policy",
    "make_strategy",
    "policy_names",
    "register_policy",
    "register_strategy",
    "rmsd_frequency",
    "uniform_levels",
]
