"""The paper's contribution: global DVFS policies for the NoC."""

from .dmsd import DmsdController, PAPER_KI, PAPER_KP, dmsd_target_from_rmsd
from .pi import PiController
from .policy import DvfsPolicy, FixedFrequency, NoDvfs
from .quantize import QuantizedPolicy, uniform_levels
from .rmsd import RmsdController, lambda_min_for, rmsd_frequency

__all__ = [
    "DmsdController",
    "DvfsPolicy",
    "FixedFrequency",
    "NoDvfs",
    "PAPER_KI",
    "PAPER_KP",
    "PiController",
    "QuantizedPolicy",
    "RmsdController",
    "dmsd_target_from_rmsd",
    "lambda_min_for",
    "rmsd_frequency",
    "uniform_levels",
]
