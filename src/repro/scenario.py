"""Declarative scenario specification: policy x traffic x mesh.

A :class:`ScenarioSpec` is the answer to "what are we simulating?" as
*data*: a policy reference, a traffic-pattern reference (both
:class:`~repro.core.registry.Ref`s — name plus structured parameters)
and a :class:`~repro.noc.config.NocConfig`.  It is frozen, hashable
and digestable, and everything the execution stack needs can be
derived from it fresh on demand:

* :meth:`ScenarioSpec.make_controller` — a new transient DVFS
  controller (never shared: controllers carry PI state);
* :meth:`ScenarioSpec.traffic_factory` — rate -> ``TrafficSpec``;
* :meth:`ScenarioSpec.strategy` — the steady-state sweep strategy;
* :meth:`ScenarioSpec.units` — the sweep's :class:`WorkUnit`s, with
  the spec embedded as metadata;
* :meth:`ScenarioSpec.simulation` — a ready-to-run ``Simulation``.

Because the spec only *names* registry entries, any policy or pattern
registered by a plugin module flows through every layer built on work
units — the planner, the batched fast-engine kernel and the
distributed work queue — without those layers knowing it exists.  The
digest contract is preserved in both directions: units expanded from a
spec carry byte-identical digests to hand-built ones (the scenario is
unit metadata, not key material), so caches and distributed task ids
for the paper's three policies match the pre-scenario era exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from .analysis.sweep import (SteadyStateStrategy, StrategyResources,
                             SweepSeries, run_sweep, strategy_from_ref,
                             sweep_units)
from .core.policy import DvfsPolicy
from .core.registry import Ref, as_policy_ref, make_policy
from .noc.budget import DEFAULT, SimBudget
from .noc.config import NocConfig, PAPER_BASELINE
from .noc.engines import DEFAULT_ENGINE
from .noc.simulator import Simulation
from .power.model import PowerModel
from .runner.context import ExecutionContext
from .runner.units import WorkUnit
from .traffic.injection import PatternTraffic, TrafficSpec
from .traffic.patterns import (PATTERN_REGISTRY, TrafficPattern,
                               as_pattern_ref)
from .workload import Workload, as_workload_ref, make_workload

__all__ = ["ScenarioSpec", "run_scenario_sweep"]

#: Sentinel for :meth:`ScenarioSpec.with_`: distinguishes "keep the
#: current workload" (the default) from "clear it" (``workload=None``).
_KEEP = object()


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario: a policy, a traffic pattern, a configuration.

    Construct with :meth:`build` (accepts plain names, ``name:k=v``
    strings or :class:`Ref`s, plus config overrides); both refs are
    validated against their registries on construction, so an unknown
    name fails here with the alternatives listed — not deep inside a
    worker process.
    """

    policy: Ref
    pattern: Ref
    config: NocConfig = PAPER_BASELINE
    workload: Ref | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy", as_policy_ref(self.policy))
        object.__setattr__(self, "pattern", as_pattern_ref(self.pattern))
        if not isinstance(self.config, NocConfig):
            raise ValueError(
                f"config must be a NocConfig, got {self.config!r}")
        if self.workload is not None:
            object.__setattr__(self, "workload",
                               as_workload_ref(self.workload))
        # Shape-constrained patterns (transpose, bit-reverse, shuffle)
        # reject incompatible meshes — surface that here, naming the
        # scenario, instead of deep inside a sweep worker.
        try:
            PATTERN_REGISTRY.create(self.pattern, self.config.make_mesh())
        except ValueError as exc:
            raise ValueError(
                f"scenario {self.label!r}: pattern "
                f"{self.pattern.label!r} is incompatible with this "
                f"config ({self.config.width}x{self.config.height} "
                f"mesh): {exc}") from exc

    @classmethod
    def build(cls, policy: Ref | str = "no-dvfs",
              pattern: Ref | str = "uniform",
              config: NocConfig | None = None,
              workload: Ref | str | None = None,
              **overrides) -> "ScenarioSpec":
        """The ergonomic constructor.

        ``ScenarioSpec.build("dmsd:target_delay_ns=40", "hotspot",
        width=3, height=3)`` — overrides apply on top of ``config``
        (default: the paper's 5x5 baseline).  ``workload`` optionally
        names a registered workload (``"mmoo:gain=2.0"``) shaping
        offered load over time.
        """
        base = PAPER_BASELINE if config is None else config
        if overrides:
            base = base.with_(**overrides)
        return cls(Ref.coerce(policy), Ref.coerce(pattern), base,
                   Ref.coerce(workload) if workload is not None else None)

    def with_(self, policy: Ref | str | None = None,
              pattern: Ref | str | None = None,
              config: NocConfig | None = None,
              workload: "Ref | str | None" = _KEEP,
              **overrides) -> "ScenarioSpec":
        """A copy with some dimensions swapped out.

        Pass ``workload=None`` explicitly to drop the workload; by
        default the current one is kept.
        """
        cfg = self.config if config is None else config
        if overrides:
            cfg = cfg.with_(**overrides)
        if workload is _KEEP:
            wl = self.workload
        else:
            wl = Ref.coerce(workload) if workload is not None else None
        return ScenarioSpec(
            Ref.coerce(policy) if policy is not None else self.policy,
            Ref.coerce(pattern) if pattern is not None else self.pattern,
            cfg, wl)

    # --- wire format ----------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-ready form; inverse of :meth:`from_payload`.

        Refs serialize as their ``name:key=value`` surface labels
        (``Ref.parse`` is the documented inverse for literal-valued
        parameters) and the config as its field dict, so a submission
        file is human-readable and carries no pickles — the sweep
        service accepts these from any client that can write JSON.
        """
        payload = {"policy": self.policy.label,
                   "pattern": self.pattern.label,
                   "config": self.config.to_dict()}
        if self.workload is not None:
            payload["workload"] = self.workload.label
        return payload

    @classmethod
    def from_payload(cls, data: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_payload` output (validated)."""
        try:
            policy = data["policy"]
            pattern = data["pattern"]
            config = data.get("config")
        except (TypeError, KeyError) as exc:
            raise ValueError(
                f"scenario payload needs 'policy' and 'pattern' keys, "
                f"got {data!r}") from exc
        return cls.build(policy, pattern,
                         config=(NocConfig.from_dict(config)
                                 if config is not None else None),
                         workload=data.get("workload"))

    # --- identity -------------------------------------------------------
    def spec_key(self) -> tuple:
        """Canonical identity tuple of the scenario.

        The workload entry is appended only when one is set, so every
        workload-free scenario keeps its pre-workload digest byte for
        byte.
        """
        key = (
            "scenario-v1",
            ("policy",) + self.policy.spec_key(),
            ("pattern",) + self.pattern.spec_key(),
            ("config",) + tuple(
                (f, repr(getattr(self.config, f)))
                for f in self.config.__dataclass_fields__),
        )
        if self.workload is not None:
            key += (("workload",) + self.workload.spec_key(),)
        return key

    def digest(self) -> str:
        """Stable hash of the scenario's identity."""
        return hashlib.sha256(repr(self.spec_key()).encode()).hexdigest()

    @property
    def label(self) -> str:
        """Short display label, e.g. ``dmsd/uniform@5x5`` (plus
        ``+mmoo`` when a workload shapes the load)."""
        suffix = (f"+{self.workload.label}"
                  if self.workload is not None else "")
        return (f"{self.policy.label}/{self.pattern.label}"
                f"@{self.config.width}x{self.config.height}{suffix}")

    # --- derived objects (always fresh instances) -----------------------
    def make_controller(self) -> DvfsPolicy:
        """A **new** transient controller (policy params applied)."""
        return make_policy(self.policy)

    def make_pattern(self) -> TrafficPattern:
        """A **new** traffic pattern bound to this config's mesh."""
        return PATTERN_REGISTRY.create(self.pattern,
                                       self.config.make_mesh())

    def make_workload(self) -> Workload | None:
        """A **new** workload instance, or None for plain traffic."""
        if self.workload is None:
            return None
        return make_workload(self.workload, self.config)

    def traffic_factory(self) -> Callable[[float], TrafficSpec]:
        """Sweep-axis coordinate (node rate) -> ``TrafficSpec``.

        With a workload set, the spatial base spec is routed through
        :meth:`Workload.traffic`, which shapes offered load over time
        (or, for trace replay, substitutes the recorded stream).
        """
        pattern = self.make_pattern()
        base = lambda rate: PatternTraffic(pattern, rate)
        workload = self.make_workload()
        if workload is None:
            return base
        return lambda rate: workload.traffic(base, rate)

    def strategy(self, resources: StrategyResources | None = None
                 ) -> SteadyStateStrategy:
        """The steady-state sweep strategy for this scenario's policy."""
        return strategy_from_ref(self.policy, resources)

    def units(self, rates, budget: SimBudget = DEFAULT, seed: int = 1,
              engine: str = DEFAULT_ENGINE,
              resources: StrategyResources | None = None
              ) -> list[WorkUnit]:
        """The sweep's work units, one per rate, spec embedded.

        Unit digests are byte-identical to hand-built units with the
        same policy/traffic/config — the scenario itself is metadata.
        """
        return sweep_units(self.config, self.traffic_factory(),
                           list(rates), self.strategy(resources), budget,
                           seed, engine, scenario=self)

    def simulation(self, rate: float, seed: int = 1,
                   control_period_node_cycles: int = 10_000,
                   engine: str = DEFAULT_ENGINE) -> Simulation:
        """A ready-to-run transient simulation at one traffic point."""
        return Simulation(self.config, self.traffic_factory()(rate),
                          controller=self.make_controller(), seed=seed,
                          control_period_node_cycles=
                          control_period_node_cycles, engine=engine)


def run_scenario_sweep(spec: ScenarioSpec, rates,
                       budget: SimBudget = DEFAULT, seed: int = 1,
                       power_model: PowerModel | None = None,
                       context: ExecutionContext | None = None,
                       resources: StrategyResources | None = None
                       ) -> SweepSeries:
    """Sweep one scenario through the full execution stack.

    The context decides *how* the units run — serial, process pool,
    batched fast-engine kernel or the distributed work queue — and the
    result is bit-identical for all of them (see README "Determinism
    guarantee").  This is the one-call spelling of what the figure
    drivers do through the ``Workbench``.
    """
    return run_sweep(spec.config, spec.traffic_factory(), list(rates),
                     spec.strategy(resources), budget=budget, seed=seed,
                     power_model=power_model, context=context,
                     scenario=spec)
