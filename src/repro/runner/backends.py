"""Execution backends: interchangeable unit-execution strategies.

A backend takes an :class:`~repro.runner.plan.ExecutionPlan` and
executes everything the plan says must run, reporting each finished
:class:`~repro.runner.units.UnitResult` through a callback (the runner
owns caching, result placement and progress).  Four backends register
here, mirroring how simulation engines register in
:mod:`repro.noc.engines`:

``serial``
    One unit at a time, in process.  No pool, no pickling.
``pool``
    Per-unit fan-out onto a ``ProcessPoolExecutor``.  Falls back to
    serial execution when the host cannot create a pool or the pool
    dies mid-run.
``batched``
    Batch groups execute as *one*
    :func:`repro.noc.fastsim.run_fixed_batch` call per shard — the
    fast engine's intended sweep mode — and the per-replica results
    fan back into per-unit results.  Shards and leftover per-unit work
    fan out across the pool when ``jobs > 1``, with the same serial
    fallback.
``distributed``
    Shards publish to a shared-directory work queue
    (:mod:`repro.runner.distributed`) that any number of worker
    processes — self-spawned locally or started on other hosts — drain
    concurrently, with lease-based crash recovery.

Every unit's seed derives from its spec digest, so backend choice,
shard boundaries and worker count can never change a result — the
differential backend tests enforce bit-identity against serial
execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

from ..noc.fastsim import BatchPoint, run_fixed_batch
from .plan import BatchGroup, ExecutionPlan
from .units import UnitResult, WorkUnit

#: Called once per finished unit result (the runner's sink).
FinishFn = Callable[[UnitResult], None]


def _execute_unit(unit: WorkUnit) -> UnitResult:
    """Top-level trampoline so units cross process boundaries."""
    return unit.execute()


def _execute_group(group: BatchGroup) -> list[UnitResult]:
    """Execute one batch group: shared engine, per-unit results.

    Frequencies still resolve per unit (closed-form strategies are
    instant; search-based ones run their own simulations), then every
    unit's fixed-frequency measurement runs as one replica of a single
    batched engine.  Digests, seeds and results are identical to
    per-unit execution; each unit's ``elapsed_s`` is its frequency
    search plus its share of the batch.
    """
    units = group.units
    seeds: list[int] = []
    freqs: list[float] = []
    search_s: list[float] = []
    for unit in units:
        t0 = time.perf_counter()
        seed = unit.seed()
        freqs.append(unit.steady_frequency(seed))
        seeds.append(seed)
        search_s.append(time.perf_counter() - t0)
    t0 = time.perf_counter()
    sims = run_fixed_batch(
        group.config,
        [BatchPoint(unit.traffic, freq, seed)
         for unit, freq, seed in zip(units, freqs, seeds)],
        group.budget)
    share = (time.perf_counter() - t0) / len(units)
    return [
        UnitResult(policy=unit.policy, x=unit.x, freq_hz=freq,
                   seed=seed, digest=unit.digest(), result=sim,
                   elapsed_s=search + share)
        for unit, freq, seed, sim, search
        in zip(units, freqs, seeds, sims, search_s)
    ]


@dataclass
class BackendRun:
    """What a backend did with one plan (report bookkeeping)."""

    parallel: bool = False      # a pool executed at least one task
    groups: int = 0             # batch groups (shards) executed
    batched_units: int = 0      # units that ran inside batch groups
    workers: int = 0            # external worker processes used
    #                             (0 = the context's jobs count applies)


@runtime_checkable
class Backend(Protocol):
    """What the runner requires of an execution backend."""

    name: str

    def execute(self, plan: ExecutionPlan, jobs: int,
                finish: FinishFn) -> BackendRun:
        """Run everything pending in ``plan``; report through
        ``finish`` (in any order); return run bookkeeping."""


def _run_tasks_on_pool(tasks: list[tuple], workers: int,
                       consume: Callable) -> list[tuple]:
    """Execute ``(fn, arg)`` tasks on a process pool.

    ``consume(fn, result)`` is called per finished task.  Returns the
    tasks that still need serial execution: all of them when no pool
    could be created, the unfinished remainder if the pool broke.

    The executor module's ``ProcessPoolExecutor`` reference is looked
    up lazily so tests (and restricted hosts) can stub pool creation
    in one place.
    """
    from concurrent.futures import FIRST_COMPLETED, wait
    from concurrent.futures.process import BrokenProcessPool

    from . import executor

    try:
        pool = executor.ProcessPoolExecutor(max_workers=workers)
    except (OSError, PermissionError, ValueError):
        # Hosts without working multiprocessing primitives: the
        # runner still works, just without the speedup.
        return list(tasks)
    unfinished = {}
    try:
        with pool:
            for fn, arg in tasks:
                unfinished[pool.submit(fn, arg)] = (fn, arg)
            pending_futures = set(unfinished)
            while pending_futures:
                finished, pending_futures = wait(
                    pending_futures, return_when=FIRST_COMPLETED)
                for future in finished:
                    consume(unfinished[future][0], future.result())
                    del unfinished[future]
    except BrokenProcessPool:
        return list(unfinished.values())
    return []


class SerialBackend:
    """Everything in process, one unit at a time."""

    name = "serial"

    def execute(self, plan: ExecutionPlan, jobs: int,
                finish: FinishFn) -> BackendRun:
        for unit in plan.todo:
            finish(_execute_unit(unit))
        return BackendRun()


class ProcessPoolBackend:
    """Per-unit fan-out onto worker processes."""

    name = "pool"

    def execute(self, plan: ExecutionPlan, jobs: int,
                finish: FinishFn) -> BackendRun:
        todo = plan.todo
        remaining = list(todo)
        if jobs > 1 and len(todo) > 1:
            remaining = [
                arg for _, arg in _run_tasks_on_pool(
                    [(_execute_unit, unit) for unit in todo],
                    min(jobs, len(todo)),
                    lambda fn, result: finish(result))
            ]
        ran_parallel = len(remaining) < len(todo)
        for unit in remaining:      # serial path and pool fallback
            finish(_execute_unit(unit))
        return BackendRun(parallel=ran_parallel)


class BatchedBackend:
    """Batch groups through ``run_fixed_batch``; the rest per unit."""

    name = "batched"

    def execute(self, plan: ExecutionPlan, jobs: int,
                finish: FinishFn) -> BackendRun:
        plan.group_batches(jobs)
        run = BackendRun(groups=len(plan.groups),
                         batched_units=plan.batched_units)

        def consume(fn, result) -> None:
            if fn is _execute_group:
                for unit_result in result:
                    finish(unit_result)
            else:
                finish(result)

        tasks = ([(_execute_group, group) for group in plan.groups]
                 + [(_execute_unit, unit) for unit in plan.singles])
        remaining = list(tasks)
        if jobs > 1 and len(tasks) > 1:
            remaining = _run_tasks_on_pool(
                tasks, min(jobs, len(tasks)), consume)
        run.parallel = len(remaining) < len(tasks)
        for fn, arg in remaining:   # serial path and pool fallback
            consume(fn, fn(arg))
        return run


#: Registered backends.  A string value is a lazy import spec
#: (``module:class``) resolved on first use — the distributed backend
#: lives in a subpackage that itself imports this module.
BACKENDS: dict[str, type | str] = {
    "serial": SerialBackend,
    "pool": ProcessPoolBackend,
    "batched": BatchedBackend,
    "distributed": "repro.runner.distributed.backend:DistributedBackend",
}


def backend_names() -> tuple[str, ...]:
    """Registered backend names (the CLI adds ``auto`` on top)."""
    return tuple(BACKENDS)


def make_backend(name: str, **options) -> Backend:
    """Instantiate the backend registered under ``name``.

    ``options`` are backend-specific constructor keywords; the
    built-in in-process backends take none, the distributed backend
    takes its queue directory and worker count (the context supplies
    them via :meth:`~repro.runner.context.ExecutionContext.backend_options`).
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        known = ", ".join(backend_names())
        raise ValueError(f"unknown backend {name!r}; known: {known}") \
            from None
    if isinstance(cls, str):
        from importlib import import_module

        module_name, _, class_name = cls.partition(":")
        cls = getattr(import_module(module_name), class_name)
        BACKENDS[name] = cls
    return cls(**options)
