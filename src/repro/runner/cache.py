"""Per-unit result caching, keyed on the unit spec digest.

The cache sits *below* the sweep layer: any two units with identical
specs — even when built by different figures, from different traffic
factory instances, in different submission orders — share one result.
This is what lets Fig. 2, Fig. 4 and Fig. 6 reuse the same simulations
(as the paper does) without the figures coordinating with each other.

Only results of completed executions are stored; the cache is
process-local and unbounded (a full figure campaign is a few hundred
units, each a few kilobytes of ``SimResult``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .units import UnitResult


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int
    misses: int
    size: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class UnitCache:
    """In-memory map from unit spec digests to unit results."""

    def __init__(self) -> None:
        self._results: dict[str, UnitResult] = {}
        self._hits = 0
        self._misses = 0

    def get(self, digest: str) -> UnitResult | None:
        """The cached result for ``digest``, marked ``from_cache``."""
        found = self._results.get(digest)
        if found is None:
            self._misses += 1
            return None
        self._hits += 1
        return found.cached()

    def put(self, result: UnitResult) -> None:
        self._results[result.digest] = result

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, digest: str) -> bool:
        return digest in self._results

    def clear(self) -> None:
        self._results.clear()
        self._hits = 0
        self._misses = 0

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self._hits, misses=self._misses,
                          size=len(self._results))
