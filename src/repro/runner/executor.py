"""The sweep runner: planned, cached, backend-driven unit execution.

``SweepRunner.run`` takes a list of :class:`~repro.runner.units.WorkUnit`
and returns their results *in submission order*.  Under the hood it

1. builds an :class:`~repro.runner.plan.ExecutionPlan` — cache hits are
   served immediately, duplicates collapse, and (for a batched backend)
   the remainder groups into batch shards;
2. hands the plan to the :class:`~repro.runner.backends.Backend`
   selected by its :class:`~repro.runner.context.ExecutionContext`
   (``serial``, ``pool``, ``batched``, or ``auto``);
3. reports progress and timing through an optional callback and a
   :class:`RunReport`.

Determinism: each unit carries its own derived seed (see
:mod:`repro.runner.seeding`), so neither the backend, the shard
boundaries nor the worker schedule can leak into the results —
``backend="batched"`` with ``jobs=8`` is bit-identical to ``jobs=1``
serial.  If the host cannot create a process pool (restricted
sandboxes, missing semaphores) or the pool dies mid-run, execution
falls back to in-process work with identical results.

``SweepRunner(jobs=N, cache=...)`` remains as constructor sugar for a
pool/serial context; new code builds an
:class:`~repro.runner.context.ExecutionContext` once and passes it
down (``SweepRunner(context=...)``, ``Workbench(context=...)``).
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor  # noqa: F401  (see
# backends._run_tasks_on_pool: pool creation resolves through this
# module so restricted-host tests can stub it in one place)
from dataclasses import dataclass, field
from typing import Sequence

from .cache import UnitCache
from .context import ExecutionContext, ProgressFn
from .plan import ExecutionPlan
from .units import UnitResult, WorkUnit


def default_jobs() -> int:
    """A sensible worker count for this host (at least 1).

    Prefers the scheduling affinity mask over the raw core count so
    containers with a CPU quota don't oversubscribe.
    """
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux platforms
        cores = os.cpu_count() or 1
    return max(1, cores)


def print_progress(done: int, total: int, latest: UnitResult) -> None:
    """Simple stderr progress line, usable as a ``progress`` callback."""
    origin = "cache" if latest.from_cache else f"{latest.elapsed_s:.1f}s"
    print(f"  [{done}/{total}] {latest.policy} @ x={latest.x:.4g} "
          f"({origin})", file=sys.stderr)


@dataclass(frozen=True)
class RunReport:
    """Timing and accounting of one ``SweepRunner.run`` call."""

    total_units: int
    executed: int
    cache_hits: int
    jobs: int
    parallel: bool
    elapsed_s: float
    #: summed single-unit execution time; with ``parallel`` this can
    #: exceed ``elapsed_s`` — the ratio is the realized speedup
    busy_s: float = 0.0
    #: backend that executed the plan ("serial", "pool", "batched",
    #: "distributed")
    backend: str = "serial"
    #: batch groups (shards) executed as single engine invocations
    groups: int = 0
    #: executed units that ran inside batch groups
    batched_units: int = 0

    @property
    def units_per_s(self) -> float:
        return self.executed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def speedup(self) -> float:
        """Realized parallel speedup over running the same units serially."""
        return self.busy_s / self.elapsed_s if self.elapsed_s > 0 else 1.0

    def render(self) -> str:
        mode = self.backend
        if self.groups:
            mode += f" x{self.groups} groups"
        if self.parallel:
            mode += f", {self.jobs} workers"
        return (f"{self.total_units} units ({self.cache_hits} cached, "
                f"{self.executed} run, {mode}) in {self.elapsed_s:.1f}s"
                + (f", speedup {self.speedup:.1f}x" if self.parallel
                   else ""))


@dataclass
class RunTotals:
    """Accumulated accounting across every run of one runner."""

    total_units: int = 0
    executed: int = 0
    cache_hits: int = 0
    elapsed_s: float = 0.0
    busy_s: float = 0.0
    groups: int = 0
    batched_units: int = 0
    reports: list[RunReport] = field(default_factory=list)

    def add(self, report: RunReport) -> None:
        self.total_units += report.total_units
        self.executed += report.executed
        self.cache_hits += report.cache_hits
        self.elapsed_s += report.elapsed_s
        self.busy_s += report.busy_s
        self.groups += report.groups
        self.batched_units += report.batched_units
        self.reports.append(report)

    def render(self) -> str:
        batched = (f", {self.batched_units} batched in {self.groups} "
                   f"groups" if self.groups else "")
        return (f"{self.total_units} units total, "
                f"{self.cache_hits} cache hits, "
                f"{self.executed} executed in {self.elapsed_s:.1f}s"
                + batched)


class SweepRunner:
    """Executes work units under an :class:`ExecutionContext`.

    ``SweepRunner(context=ctx)`` is the primary constructor.  The
    keyword form ``SweepRunner(jobs=N, cache=..., progress=...)``
    builds an equivalent context with the pre-backend behaviour: a
    ``pool`` backend for ``jobs > 1``, ``serial`` otherwise, and no
    cache unless one is passed.
    """

    def __init__(self, jobs: int = 1, cache: UnitCache | None = None,
                 progress: ProgressFn | None = None,
                 context: ExecutionContext | None = None) -> None:
        if context is None:
            context = ExecutionContext(
                backend="pool" if jobs > 1 else "serial",
                jobs=jobs, cache=cache, progress=progress)
        self.context = context
        if context._runner is None:
            # Make ``context.runner`` resolve to this runner, so code
            # holding either object shares cache and totals.
            context._runner = self
        self.last_report: RunReport | None = None
        self.totals = RunTotals()

    # --- context delegation (existing call sites read these) ----------
    @property
    def jobs(self) -> int:
        return self.context.jobs

    @property
    def cache(self) -> UnitCache | None:
        return self.context.cache

    @property
    def progress(self) -> ProgressFn | None:
        return self.context.progress

    @progress.setter
    def progress(self, callback: ProgressFn | None) -> None:
        self.context.progress = callback

    # ------------------------------------------------------------------
    def run(self, units: Sequence[WorkUnit]) -> list[UnitResult]:
        """Execute every unit; results come back in submission order."""
        start = time.perf_counter()
        context = self.context
        plan = ExecutionPlan(list(units), context.cache)
        done_count = plan.cache_hits
        busy_s = 0.0

        def finish(result: UnitResult) -> None:
            nonlocal done_count, busy_s
            busy_s += result.elapsed_s
            if context.cache is not None:
                context.cache.put(result)
            indices = plan.pending[result.digest]
            for i in indices:
                plan.results[i] = (result if i == indices[0]
                                   else result.cached())
            done_count += len(indices)
            if context.progress is not None:
                context.progress(done_count, plan.total_units, result)

        backend_name = context.resolved_backend()
        # The context memoizes its backend, so backend-held state (the
        # distributed backend's warm worker pool) spans run() calls.
        outcome = context.make_backend().execute(
            plan, context.jobs, finish)

        elapsed = time.perf_counter() - start
        report = RunReport(
            total_units=plan.total_units, executed=plan.executed,
            cache_hits=plan.cache_hits,
            jobs=outcome.workers or context.jobs,
            parallel=outcome.parallel, elapsed_s=elapsed, busy_s=busy_s,
            backend=backend_name, groups=outcome.groups,
            batched_units=outcome.batched_units)
        self.last_report = report
        self.totals.add(report)
        assert all(r is not None for r in plan.results)
        return plan.results  # type: ignore[return-value]
