"""The sweep runner: cached, parallel execution of work units.

``SweepRunner.run`` takes a list of :class:`~repro.runner.units.WorkUnit`
and returns their results *in submission order*.  Under the hood it

1. serves every unit whose spec digest is already in the
   :class:`~repro.runner.cache.UnitCache`;
2. executes the remaining unique units — serially for ``jobs=1``, or
   on a ``ProcessPoolExecutor`` with ``jobs`` workers otherwise;
3. reports progress and timing through an optional callback and a
   :class:`RunReport`.

Determinism: each unit carries its own derived seed (see
:mod:`repro.runner.seeding`), so the parallel schedule can never leak
into the results — ``jobs=8`` is bit-identical to ``jobs=1``.  If the
host cannot create a process pool (restricted sandboxes, missing
semaphores) or the pool dies mid-run, the runner falls back to serial
execution of whatever is left, with identical results.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .cache import UnitCache
from .units import UnitResult, WorkUnit

#: Progress callback signature: (units done, units total, latest result).
ProgressFn = Callable[[int, int, UnitResult], None]


def _execute_unit(unit: WorkUnit) -> UnitResult:
    """Top-level trampoline so units cross process boundaries."""
    return unit.execute()


def default_jobs() -> int:
    """A sensible worker count for this host (at least 1).

    Prefers the scheduling affinity mask over the raw core count so
    containers with a CPU quota don't oversubscribe.
    """
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux platforms
        cores = os.cpu_count() or 1
    return max(1, cores)


def print_progress(done: int, total: int, latest: UnitResult) -> None:
    """Simple stderr progress line, usable as a ``progress`` callback."""
    origin = "cache" if latest.from_cache else f"{latest.elapsed_s:.1f}s"
    print(f"  [{done}/{total}] {latest.policy} @ x={latest.x:.4g} "
          f"({origin})", file=sys.stderr)


@dataclass(frozen=True)
class RunReport:
    """Timing and accounting of one ``SweepRunner.run`` call."""

    total_units: int
    executed: int
    cache_hits: int
    jobs: int
    parallel: bool
    elapsed_s: float
    #: summed single-unit execution time; with ``parallel`` this can
    #: exceed ``elapsed_s`` — the ratio is the realized speedup
    busy_s: float = 0.0

    @property
    def units_per_s(self) -> float:
        return self.executed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def speedup(self) -> float:
        """Realized parallel speedup over running the same units serially."""
        return self.busy_s / self.elapsed_s if self.elapsed_s > 0 else 1.0

    def render(self) -> str:
        mode = (f"{self.jobs} workers" if self.parallel else "serial")
        return (f"{self.total_units} units ({self.cache_hits} cached, "
                f"{self.executed} run, {mode}) in {self.elapsed_s:.1f}s"
                + (f", speedup {self.speedup:.1f}x" if self.parallel
                   else ""))


@dataclass
class RunTotals:
    """Accumulated accounting across every run of one runner."""

    total_units: int = 0
    executed: int = 0
    cache_hits: int = 0
    elapsed_s: float = 0.0
    busy_s: float = 0.0
    reports: list[RunReport] = field(default_factory=list)

    def add(self, report: RunReport) -> None:
        self.total_units += report.total_units
        self.executed += report.executed
        self.cache_hits += report.cache_hits
        self.elapsed_s += report.elapsed_s
        self.busy_s += report.busy_s
        self.reports.append(report)

    def render(self) -> str:
        return (f"{self.total_units} units total, "
                f"{self.cache_hits} cache hits, "
                f"{self.executed} executed in {self.elapsed_s:.1f}s")


class SweepRunner:
    """Executes work units with caching and optional parallelism.

    ``jobs=1`` (the default) runs everything in-process — no pool, no
    pickling, no surprises.  ``jobs=N`` fans unique units out to ``N``
    worker processes.  ``cache=None`` disables result caching.
    """

    def __init__(self, jobs: int = 1, cache: UnitCache | None = None,
                 progress: ProgressFn | None = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.last_report: RunReport | None = None
        self.totals = RunTotals()

    # ------------------------------------------------------------------
    def run(self, units: Sequence[WorkUnit]) -> list[UnitResult]:
        """Execute every unit; results come back in submission order."""
        start = time.perf_counter()
        digests = [u.digest() for u in units]
        results: list[UnitResult | None] = [None] * len(units)

        cache_hits = 0
        pending: dict[str, list[int]] = {}  # digest -> unit indices
        for i, (unit, digest) in enumerate(zip(units, digests)):
            found = self.cache.get(digest) if self.cache is not None else None
            if found is not None:
                results[i] = found
                cache_hits += 1
            else:
                pending.setdefault(digest, []).append(i)

        todo = [units[indices[0]] for indices in pending.values()]
        done_count = cache_hits
        busy_s = 0.0

        def finish(result: UnitResult) -> None:
            nonlocal done_count, busy_s
            busy_s += result.elapsed_s
            if self.cache is not None:
                self.cache.put(result)
            indices = pending[result.digest]
            for i in indices:
                results[i] = result if i == indices[0] else result.cached()
            done_count += len(indices)
            if self.progress is not None:
                self.progress(done_count, len(units), result)

        remaining = list(todo)
        if self.jobs > 1 and len(todo) > 1:
            remaining = self._run_parallel(todo, finish)
        ran_parallel = len(remaining) < len(todo)
        for unit in remaining:  # serial path and parallel fallback
            finish(_execute_unit(unit))

        elapsed = time.perf_counter() - start
        report = RunReport(
            total_units=len(units), executed=len(todo),
            cache_hits=cache_hits, jobs=self.jobs,
            parallel=ran_parallel, elapsed_s=elapsed, busy_s=busy_s)
        self.last_report = report
        self.totals.add(report)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _run_parallel(self, todo: list[WorkUnit],
                      finish: Callable[[UnitResult], None]
                      ) -> list[WorkUnit]:
        """Run units on a process pool; return whatever still needs
        running serially (all of ``todo`` when no pool can be made)."""
        workers = min(self.jobs, len(todo))
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except (OSError, PermissionError, ValueError):
            # Hosts without working multiprocessing primitives: the
            # runner still works, just without the speedup.
            return list(todo)
        unfinished = {}
        try:
            with pool:
                for unit in todo:
                    unfinished[pool.submit(_execute_unit, unit)] = unit
                pending_futures = set(unfinished)
                while pending_futures:
                    finished, pending_futures = wait(
                        pending_futures, return_when=FIRST_COMPLETED)
                    for future in finished:
                        finish(future.result())
                        del unfinished[future]
        except BrokenProcessPool:
            return list(unfinished.values())
        return []
