"""Work units: one (policy, traffic point, config) simulation each.

A :class:`WorkUnit` is the runner's unit of scheduling.  Executing it
finds the policy's steady-state frequency for its traffic point and
then measures that operating point with the cycle-level simulator —
exactly what one iteration of the old inline sweep loop did.  Units
are frozen, picklable and self-describing:

* :meth:`WorkUnit.spec_key` is a canonical tuple of everything that
  determines the unit's result;
* :meth:`WorkUnit.digest` hashes that tuple — the cache key and the
  input to per-unit seed derivation (:mod:`repro.runner.seeding`);
* :meth:`WorkUnit.execute` runs the unit and returns a
  :class:`UnitResult`.

Because the derived seed travels with the unit, *where* and *when* a
unit runs can never change its result.
"""

from __future__ import annotations

import hashlib
import inspect
import time
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

from ..noc.budget import SimBudget, run_fixed_point
from ..noc.config import NocConfig
from ..noc.engines import DEFAULT_ENGINE
from ..noc.simulator import SimResult
from ..traffic.injection import TrafficSpec
from .seeding import derive_unit_seed


@runtime_checkable
class FrequencyStrategy(Protocol):
    """What a unit requires of a steady-state policy strategy."""

    name: str

    def frequency_for(self, config: NocConfig, traffic: TrafficSpec,
                      budget: SimBudget, seed: int,
                      engine: str = DEFAULT_ENGINE) -> float:
        """Steady-state network frequency (Hz) for this traffic."""


def strategy_key(strategy: Any) -> tuple:
    """Canonical identity tuple of a steady-state strategy.

    Strategies advertise their identity via a ``spec_key()`` method
    (all built-ins do).  Unknown strategies degrade to their class name
    plus sorted public attributes, which covers plain value-object
    strategies written by users.
    """
    if hasattr(strategy, "spec_key"):
        return tuple(strategy.spec_key())
    attrs = tuple(sorted(
        (k, repr(v)) for k, v in vars(strategy).items()
        if not k.startswith("_")))
    return (type(strategy).__name__, attrs)


@dataclass(frozen=True)
class WorkUnit:
    """One steady-state evaluation of one policy at one traffic point."""

    policy: str
    x: float
    config: NocConfig
    traffic: TrafficSpec
    strategy: Any
    budget: SimBudget
    run_seed: int
    engine: str = DEFAULT_ENGINE
    #: The declarative :class:`repro.scenario.ScenarioSpec` this unit
    #: was expanded from, when it came through the scenario API.  Pure
    #: metadata: the spec's policy/pattern/config are already spelled
    #: out in the fields above, so it is deliberately excluded from
    #: ``spec_key()`` — digests (and therefore unit caches, batch-group
    #: keys and distributed task ids) stay byte-identical whether a
    #: unit was built by hand or from a scenario.
    scenario: Any = field(default=None, compare=False)

    def spec_key(self) -> tuple:
        """Everything that determines this unit's result, as a tuple."""
        key = (
            "unit-v1",
            self.policy,
            repr(float(self.x)),
            ("config",) + tuple(
                (f, repr(getattr(self.config, f)))
                for f in self.config.__dataclass_fields__),
            ("traffic",) + tuple(self.traffic.spec_key()),
            ("strategy",) + strategy_key(self.strategy),
            ("budget", self.budget.warmup_cycles,
             self.budget.measure_cycles, self.budget.drain_cycles),
            ("seed", int(self.run_seed)),
        )
        if self.engine != DEFAULT_ENGINE:
            # Cache entries and derived seeds must never mix engines.
            # Reference units keep their pre-engine-era digests, so the
            # recorded goldens (and any on-disk caches) stay valid.
            key += (("engine", self.engine),)
        return key

    def digest(self) -> str:
        """Stable hash of the spec — the cache key and seed input."""
        return hashlib.sha256(
            repr(self.spec_key()).encode()).hexdigest()

    def seed(self) -> int:
        """This unit's derived simulator seed (order-independent)."""
        return derive_unit_seed(self.run_seed, self.digest())

    def execute(self) -> "UnitResult":
        """Run the unit: pick the steady-state frequency, measure it."""
        start = time.perf_counter()
        seed = self.seed()
        freq_hz = self.steady_frequency(seed)
        result = run_fixed_point(self.config, self.traffic, freq_hz,
                                 self.budget, seed, engine=self.engine)
        return UnitResult(
            policy=self.policy,
            x=self.x,
            freq_hz=freq_hz,
            seed=seed,
            digest=self.digest(),
            result=result,
            elapsed_s=time.perf_counter() - start,
        )

    def steady_frequency(self, seed: int) -> float:
        """Ask the strategy for the steady-state frequency.

        Public because the batched backend resolves frequencies before
        handing the whole group to one engine.

        Built-in strategies accept the unit's engine so their search
        simulations run on it too.  User strategies written before the
        engine parameter existed keep working on the reference engine.
        """
        params = inspect.signature(self.strategy.frequency_for).parameters
        if "engine" in params:
            return self.strategy.frequency_for(
                self.config, self.traffic, self.budget, seed,
                engine=self.engine)
        if self.engine != DEFAULT_ENGINE:
            raise TypeError(
                f"strategy {type(self.strategy).__name__} does not "
                f"accept an 'engine' argument; it cannot run on "
                f"engine {self.engine!r}")
        return self.strategy.frequency_for(self.config, self.traffic,
                                           self.budget, seed)


@dataclass(frozen=True)
class UnitResult:
    """What executing one work unit produced."""

    policy: str
    x: float
    freq_hz: float
    seed: int
    digest: str
    result: SimResult
    elapsed_s: float
    from_cache: bool = field(default=False, compare=False)

    def cached(self) -> "UnitResult":
        """A copy marked as served from the cache."""
        if self.from_cache:
            return self
        return UnitResult(self.policy, self.x, self.freq_hz, self.seed,
                          self.digest, self.result, self.elapsed_s,
                          from_cache=True)
