"""The execution context: one object describing *how* units run.

Before this existed, every layer threaded ``engine=``, ``jobs=`` and
``cache=`` keywords down to the next one (CLI -> Workbench ->
run_sweep -> SweepRunner), and adding an execution knob meant touching
all of them.  An :class:`ExecutionContext` is constructed once at the
top (CLI flags, benchmark environment variables, or directly in code)
and passed down whole:

* ``backend`` — execution-backend name (:mod:`repro.runner.backends`):
  ``serial``, ``pool``, ``batched``, or ``auto``;
* ``jobs`` — worker processes for per-unit fan-out and batch shards;
* ``cache`` — the shared :class:`~repro.runner.cache.UnitCache`
  (``None`` disables unit caching);
* ``engine`` — default simulation engine for units built under this
  context;
* ``progress`` — optional per-unit progress callback;
* ``queue`` / ``workers`` — the shared work-queue directory and
  self-spawned local worker count for the ``distributed`` backend
  (``workers=0`` waits on externally started workers; see
  :mod:`repro.runner.distributed`);
* ``pool`` — keep the self-spawned distributed workers *warm* across
  submissions (spawn once, serve every sweep this context runs;
  :meth:`ExecutionContext.close` retires them);
* ``claim_batch`` — tasks a distributed worker claims per queue
  round-trip.

The context memoizes its backend instance, so repeated ``run`` calls
share state the backend keeps across plans (the warm worker pool).
Call :meth:`~ExecutionContext.close` when done with a context whose
backend holds external resources; in-process backends make it a no-op.

``auto`` resolves to ``batched`` when the context's engine is the fast
engine (its sweeps then execute through
:func:`repro.noc.fastsim.run_fixed_batch` automatically), to ``pool``
when ``jobs > 1``, and to ``serial`` otherwise.  The determinism
contract is backend-independent: any backend, shard size and worker
count returns bit-identical results (see README "Determinism
guarantee"), so backend selection is purely a performance choice.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..noc.engines import DEFAULT_ENGINE, engine_names
from .backends import backend_names
from .cache import UnitCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executor import SweepRunner
    from .units import UnitResult

#: Progress callback signature: (units done, units total, latest result).
ProgressFn = Callable[[int, int, "UnitResult"], None]


def default_cache() -> UnitCache:
    """A fresh unit cache (the context default)."""
    return UnitCache()


@dataclass
class ExecutionContext:
    """How work units execute: backend, parallelism, cache, engine."""

    backend: str = "auto"
    jobs: int = 1
    cache: UnitCache | None = field(default_factory=default_cache)
    engine: str = DEFAULT_ENGINE
    progress: ProgressFn | None = None
    queue: str | None = None
    workers: int = 0
    pool: bool = False
    claim_batch: int = 1

    def __post_init__(self) -> None:
        if (self.backend != "auto"
                and self.backend not in backend_names()):
            known = ", ".join(backend_names() + ("auto",))
            raise ValueError(f"unknown backend {self.backend!r}; "
                             f"known: {known}")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.claim_batch < 1:
            raise ValueError("claim_batch must be >= 1")
        if self.engine not in engine_names():
            raise ValueError(f"unknown engine {self.engine!r}; known: "
                             f"{', '.join(engine_names())}")
        if self.backend == "distributed" and not self.queue:
            raise ValueError("backend 'distributed' requires queue=DIR "
                             "(the shared work-queue directory)")
        if self.pool:
            if self.backend != "distributed":
                raise ValueError("pool=True is only meaningful with "
                                 "backend='distributed'")
            if self.workers < 1:
                raise ValueError("pool=True needs self-spawned workers "
                                 "(workers >= 1)")
        self._runner: "SweepRunner" | None = None
        self._backend = None

    def resolved_backend(self) -> str:
        """The concrete backend ``auto`` stands for under this context.

        ``auto`` never resolves to ``distributed`` — a sweep only
        leaves the process when a queue directory is named explicitly.
        """
        if self.backend != "auto":
            return self.backend
        if self.engine == "fast":
            return "batched"
        return "pool" if self.jobs > 1 else "serial"

    def backend_options(self) -> dict:
        """Constructor keywords for the resolved backend.

        The in-process backends are configured entirely through
        ``execute(plan, jobs, finish)``; only the distributed backend
        needs construction-time deployment knobs.
        """
        if self.resolved_backend() != "distributed":
            return {}
        return {"queue_dir": self.queue, "workers": self.workers,
                "pool": self.pool, "claim_batch": self.claim_batch}

    def make_backend(self):
        """The context's backend instance (created on first use).

        Memoized so state a backend keeps *across* plans — the
        distributed backend's warm worker pool — survives repeated
        ``run`` calls under one context.  In-process backends are
        stateless; for them this is just an allocation saved.
        """
        from .backends import make_backend

        name = self.resolved_backend()
        if self._backend is None or self._backend.name != name:
            self.close()
            self._backend = make_backend(name, **self.backend_options())
        return self._backend

    def close(self) -> None:
        """Release backend-held resources (warm worker pools).

        Safe to call any number of times; a context keeps working
        after ``close()`` (the next ``run`` builds a fresh backend).
        """
        backend, self._backend = self._backend, None
        if backend is not None and hasattr(backend, "close"):
            backend.close()

    @property
    def runner(self) -> "SweepRunner":
        """The context's shared runner (created on first use).

        Sharing one runner means repeated ``run_sweep`` calls under one
        context share the cache, the accumulated ``RunTotals`` and the
        progress callback — the behaviour the Workbench had to wire by
        hand before.
        """
        if self._runner is None:
            from .executor import SweepRunner
            self._runner = SweepRunner(context=self)
        return self._runner

    def run(self, units) -> list["UnitResult"]:
        """Execute units through the context's runner."""
        return self.runner.run(units)


def _env_int(name: str, default: str) -> int:
    """An integer environment variable, with a readable failure.

    A raw ``int()`` here would surface as ``invalid literal for
    int() with base 10: 'x'`` — technically true, but naming neither
    the variable nor where to fix it.  Match the CLI's argument-error
    quality instead.
    """
    value = os.environ.get(name, default)
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"environment variable {name}={value!r} is not an "
            f"integer") from None


def context_from_env() -> ExecutionContext:
    """Build a context from ``REPRO_BACKEND``/``REPRO_JOBS``/
    ``REPRO_ENGINE``/``REPRO_QUEUE``/``REPRO_WORKERS``/``REPRO_POOL``/
    ``REPRO_CLAIM_BATCH`` (the benchmark harness entry point)."""
    backend = os.environ.get("REPRO_BACKEND", "auto")
    queue = os.environ.get("REPRO_QUEUE") or None
    workers = _env_int("REPRO_WORKERS", "0")
    pool = os.environ.get("REPRO_POOL", "") not in ("", "0")
    claim_batch = _env_int("REPRO_CLAIM_BATCH", "1")
    if backend != "distributed" and (queue or workers or pool
                                     or claim_batch != 1):
        # Same guard as the CLI: a queue that would be silently
        # ignored is a misconfiguration, not a default.
        raise ValueError("REPRO_QUEUE/REPRO_WORKERS/REPRO_POOL/"
                         "REPRO_CLAIM_BATCH are only meaningful with "
                         "REPRO_BACKEND=distributed")
    return ExecutionContext(
        backend=backend,
        jobs=_env_int("REPRO_JOBS", "1"),
        engine=os.environ.get("REPRO_ENGINE", DEFAULT_ENGINE),
        queue=queue, workers=workers, pool=pool,
        claim_batch=claim_batch)
