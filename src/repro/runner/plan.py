"""Execution planning: cache hits, batch groups, shards.

An :class:`ExecutionPlan` is the runner's decision of *what actually
needs to run* for a list of submitted work units:

1. **Cache pass** — units whose spec digest is already cached are
   served immediately; duplicate submissions of one spec collapse onto
   a single pending execution (exactly one unit runs per digest).
2. **Grouping pass** — pending units that are *batch-eligible* (fast
   engine, homogeneous node clocks) and share ``(config, budget,
   engine)`` form :class:`BatchGroup`\\ s, which a batched backend can
   execute as one :func:`repro.noc.fastsim.run_fixed_batch` call.
   Everything else stays on the per-unit path (``singles``).
3. **Sharding pass** — oversized groups split into shards so they can
   also fan out across a process pool, and so one enormous submission
   does not build an unboundedly wide engine.

Plans are pure data: backends consume ``plan.groups``/``plan.singles``
(or ``plan.todo`` for per-unit backends) and report each finished
:class:`~repro.runner.units.UnitResult` back through the runner, which
owns result placement, caching and progress.  Because every unit
carries its own spec-digest-derived seed, none of these decisions can
change any result — grouping and sharding are performance choices
only.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..noc.budget import SimBudget
from ..noc.config import NocConfig
from .cache import UnitCache
from .units import UnitResult, WorkUnit

#: Widest shard a batched backend executes as one engine.  Bounds the
#: batched engine's working set; groups wider than this split even on
#: a single worker.
MAX_SHARD_POINTS = 96


def batch_eligible(unit: WorkUnit) -> bool:
    """Can this unit run as a replica of a batched engine?

    Requires the fast engine (the batched kernel is the fast engine's
    replicated form) and homogeneous node clocks (the one reference
    feature ``run_fixed_batch`` does not replicate).
    """
    return (unit.engine == "fast"
            and unit.config.node_freqs_hz is None)


@dataclass
class BatchGroup:
    """Pending units sharing one batched-engine invocation."""

    config: NocConfig
    budget: SimBudget
    engine: str
    units: list[WorkUnit]

    def split(self, shard_size: int) -> list["BatchGroup"]:
        """Shards of at most ``shard_size`` units (submission order)."""
        if shard_size < 1:
            raise ValueError("shard size must be >= 1")
        if len(self.units) <= shard_size:
            return [self]
        return [BatchGroup(self.config, self.budget, self.engine,
                           self.units[i:i + shard_size])
                for i in range(0, len(self.units), shard_size)]


class ExecutionPlan:
    """What must execute (and how it groups) for one submission."""

    def __init__(self, units: list[WorkUnit],
                 cache: UnitCache | None = None) -> None:
        self.units = list(units)
        self.digests = [u.digest() for u in self.units]
        #: final results in submission order (filled by the runner)
        self.results: list[UnitResult | None] = [None] * len(self.units)
        #: digest -> submission indices awaiting that digest's result
        self.pending: dict[str, list[int]] = {}
        self.cache_hits = 0
        for i, (unit, digest) in enumerate(zip(self.units, self.digests)):
            found = cache.get(digest) if cache is not None else None
            if found is not None:
                self.results[i] = found
                self.cache_hits += 1
            else:
                self.pending.setdefault(digest, []).append(i)
        #: unique units that must actually execute (one per digest)
        self.todo: list[WorkUnit] = [
            self.units[indices[0]] for indices in self.pending.values()]
        #: batch groups (after :meth:`group_batches`; empty otherwise)
        self.groups: list[BatchGroup] = []
        #: units left on the per-unit path
        self.singles: list[WorkUnit] = list(self.todo)

    # ------------------------------------------------------------------
    def group_batches(self, jobs: int = 1,
                      max_shard: int = MAX_SHARD_POINTS) -> None:
        """Partition ``todo`` into batch groups and per-unit singles.

        ``jobs`` steers sharding: a group is split into roughly
        ``jobs`` equal shards (never wider than ``max_shard``) so a
        pool-backed batched backend keeps every worker busy.
        """
        grouped: dict[tuple, BatchGroup] = {}
        self.singles = []
        order: list[BatchGroup] = []
        for unit in self.todo:
            if not batch_eligible(unit):
                self.singles.append(unit)
                continue
            key = (unit.config, unit.budget, unit.engine)
            group = grouped.get(key)
            if group is None:
                group = grouped[key] = BatchGroup(
                    unit.config, unit.budget, unit.engine, [])
                order.append(group)
            group.units.append(unit)
        self.groups = []
        for group in order:
            if len(group.units) == 1:
                # A lone unit gains nothing from the batched kernel.
                self.singles.extend(group.units)
                continue
            shard_size = max_shard
            if jobs > 1:
                per_worker = -(-len(group.units) // jobs)  # ceil div
                shard_size = min(max_shard, max(1, per_worker))
            self.groups.extend(group.split(shard_size))

    # ------------------------------------------------------------------
    @property
    def total_units(self) -> int:
        return len(self.units)

    @property
    def executed(self) -> int:
        """Unique units that will run (cache misses)."""
        return len(self.todo)

    @property
    def batched_units(self) -> int:
        """Units that execute inside batch groups."""
        return sum(len(g.units) for g in self.groups)
