"""Execution planning: cache hits, batch groups, shards.

An :class:`ExecutionPlan` is the runner's decision of *what actually
needs to run* for a list of submitted work units:

1. **Cache pass** — units whose spec digest is already cached are
   served immediately; duplicate submissions of one spec collapse onto
   a single pending execution (exactly one unit runs per digest).
2. **Grouping pass** — pending units that are *batch-eligible* (fast
   engine, homogeneous node clocks) and share ``(config, budget,
   engine)`` form :class:`BatchGroup`\\ s, which a batched backend can
   execute as one :func:`repro.noc.fastsim.run_fixed_batch` call.
   Everything else stays on the per-unit path (``singles``).
3. **Sharding pass** — oversized groups split into shards so they can
   also fan out across a process pool, and so one enormous submission
   does not build an unboundedly wide engine.

Plans are pure data: backends consume ``plan.groups``/``plan.singles``
(or ``plan.todo`` for per-unit backends) and report each finished
:class:`~repro.runner.units.UnitResult` back through the runner, which
owns result placement, caching and progress.  Because every unit
carries its own spec-digest-derived seed, none of these decisions can
change any result — grouping and sharding are performance choices
only.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..noc.budget import SimBudget
from ..noc.config import NocConfig
from .cache import UnitCache
from .units import UnitResult, WorkUnit

#: Widest shard a batched backend executes as one engine.  Bounds the
#: batched engine's working set; groups wider than this split even on
#: a single worker.
MAX_SHARD_POINTS = 96

#: Narrowest shard worth carving out of a batch-eligible group when
#: fanning out.  The batched kernel's >=5x advantage comes from
#: amortizing per-invocation setup over many mesh replicas; below
#: about this many replicas the setup dominates and a "parallel" shard
#: is slower than its share of one wide batch.  When ``jobs`` exceeds
#: ``len(group) / MIN_SHARD_POINTS``, sharding deliberately leaves
#: workers idle rather than shred the group into degenerate slivers
#: (the inverse-scaling bug the distributed backend exhibited when
#: many workers split a ~36-unit group into singles).
MIN_SHARD_POINTS = 6


def batch_eligible(unit: WorkUnit) -> bool:
    """Can this unit run as a replica of a batched engine?

    Requires the fast engine (the batched kernel is the fast engine's
    replicated form) and homogeneous node clocks (the one reference
    feature ``run_fixed_batch`` does not replicate).
    """
    return (unit.engine == "fast"
            and unit.config.node_freqs_hz is None)


@dataclass
class BatchGroup:
    """Pending units sharing one batched-engine invocation."""

    config: NocConfig
    budget: SimBudget
    engine: str
    units: list[WorkUnit]

    def split(self, shard_size: int) -> list["BatchGroup"]:
        """Shards of at most ``shard_size`` units (submission order).

        Units spread *evenly* over ``ceil(len / shard_size)`` shards —
        widths differ by at most one — instead of filling shards to
        ``shard_size`` and leaving a runt remainder: a 13-unit group
        at ``shard_size=6`` becomes ``[5, 4, 4]``, not ``[6, 6, 1]``.
        Even widths keep the slowest shard (the executor's critical
        path) as narrow as possible and never strand a near-empty
        batched-engine invocation.
        """
        if shard_size < 1:
            raise ValueError("shard size must be >= 1")
        n = len(self.units)
        if n <= shard_size:
            return [self]
        shards = -(-n // shard_size)            # ceil div
        base, extra = divmod(n, shards)
        out: list[BatchGroup] = []
        start = 0
        for i in range(shards):
            width = base + (1 if i < extra else 0)
            out.append(BatchGroup(self.config, self.budget, self.engine,
                                  self.units[start:start + width]))
            start += width
        return out


class ExecutionPlan:
    """What must execute (and how it groups) for one submission."""

    def __init__(self, units: list[WorkUnit],
                 cache: UnitCache | None = None) -> None:
        self.units = list(units)
        self.digests = [u.digest() for u in self.units]
        #: final results in submission order (filled by the runner)
        self.results: list[UnitResult | None] = [None] * len(self.units)
        #: digest -> submission indices awaiting that digest's result
        self.pending: dict[str, list[int]] = {}
        self.cache_hits = 0
        for i, (unit, digest) in enumerate(zip(self.units, self.digests)):
            found = cache.get(digest) if cache is not None else None
            if found is not None:
                self.results[i] = found
                self.cache_hits += 1
            else:
                self.pending.setdefault(digest, []).append(i)
        #: unique units that must actually execute (one per digest)
        self.todo: list[WorkUnit] = [
            self.units[indices[0]] for indices in self.pending.values()]
        #: batch groups (after :meth:`group_batches`; empty otherwise)
        self.groups: list[BatchGroup] = []
        #: units left on the per-unit path
        self.singles: list[WorkUnit] = list(self.todo)

    # ------------------------------------------------------------------
    def group_batches(self, jobs: int = 1,
                      max_shard: int = MAX_SHARD_POINTS,
                      min_shard: int = MIN_SHARD_POINTS) -> None:
        """Partition ``todo`` into batch groups and per-unit singles.

        ``jobs`` steers sharding: a group is split into roughly
        ``jobs`` equal shards (never wider than ``max_shard``) so a
        pool-backed batched backend keeps every worker busy — but
        never narrower than ``min_shard``, because a shard below the
        kernel's efficient width costs more in lost batching than it
        buys in parallelism.  When the two pull against each other
        (many workers, small group) the floor wins: better three
        efficient shards than twenty-four degenerate singles.
        """
        grouped: dict[tuple, BatchGroup] = {}
        self.singles = []
        order: list[BatchGroup] = []
        for unit in self.todo:
            if not batch_eligible(unit):
                self.singles.append(unit)
                continue
            key = (unit.config, unit.budget, unit.engine)
            group = grouped.get(key)
            if group is None:
                group = grouped[key] = BatchGroup(
                    unit.config, unit.budget, unit.engine, [])
                order.append(group)
            group.units.append(unit)
        self.groups = []
        for group in order:
            if len(group.units) == 1:
                # A lone unit gains nothing from the batched kernel.
                self.singles.extend(group.units)
                continue
            shard_size = max_shard
            if jobs > 1:
                per_worker = -(-len(group.units) // jobs)  # ceil div
                # A group smaller than the floor is its own floor: it
                # still runs as one shard rather than splitting.
                floor = min(min_shard, len(group.units))
                shard_size = min(max_shard, max(floor, per_worker))
            self.groups.extend(group.split(shard_size))

    # ------------------------------------------------------------------
    @property
    def total_units(self) -> int:
        return len(self.units)

    @property
    def executed(self) -> int:
        """Unique units that will run (cache misses)."""
        return len(self.todo)

    @property
    def batched_units(self) -> int:
        """Units that execute inside batch groups."""
        return sum(len(g.units) for g in self.groups)
