"""Deterministic per-unit seed derivation.

Every work unit gets its own independent random stream, derived from
the run seed and the unit's *spec digest* (a hash of everything that
identifies the unit: policy, config, traffic, budget).  Because the
derivation depends only on the unit's identity — never on submission
order, worker assignment or process boundaries — serial and parallel
executions of the same units are bit-identical, and reordering the
unit list cannot change any unit's stream.

The derivation follows NumPy's recommended practice: feed the run seed
and the digest words into a ``SeedSequence`` entropy pool, then let it
generate the simulator seed.  This gives well-separated streams even
for units whose digests share a long prefix.
"""

from __future__ import annotations

import hashlib

import numpy as np


def digest_words(digest_hex: str, words: int = 4) -> tuple[int, ...]:
    """Split a hex digest into 32-bit words for SeedSequence entropy."""
    if words < 1:
        raise ValueError("need at least one entropy word")
    need = words * 8
    if len(digest_hex) < need:
        # Stretch short digests deterministically rather than failing.
        digest_hex = hashlib.sha256(digest_hex.encode()).hexdigest()
    return tuple(int(digest_hex[8 * i:8 * i + 8], 16)
                 for i in range(words))


def unit_seed_sequence(run_seed: int, digest_hex: str
                       ) -> np.random.SeedSequence:
    """The entropy source for one unit's random stream."""
    return np.random.SeedSequence(
        (int(run_seed),) + digest_words(digest_hex))


def derive_unit_seed(run_seed: int, digest_hex: str) -> int:
    """A 63-bit simulator seed for the unit (positive Python int).

    ``Simulation`` takes an integer seed for ``np.random.default_rng``;
    deriving the integer (instead of shipping a ``Generator``) keeps
    work units trivially picklable for process pools while preserving
    the same independence guarantees.
    """
    state = unit_seed_sequence(run_seed, digest_hex).generate_state(
        2, np.uint32)
    return (int(state[0]) << 31) ^ int(state[1])


def unit_generator(run_seed: int, digest_hex: str) -> np.random.Generator:
    """A child ``Generator`` spawned from the unit's seed sequence."""
    return np.random.default_rng(unit_seed_sequence(run_seed, digest_hex))
