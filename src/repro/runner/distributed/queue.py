"""The shared-directory work queue: claims, leases, results, retries.

One queue is one directory, usable by any number of workers that can
see it (local processes, or hosts sharing a network filesystem).  All
coordination is plain files and two POSIX guarantees: ``rename`` is
atomic, and renaming a path that another renamer already consumed
fails.  There is no server and no locking.

Layout::

    queue/
      tasks/    task payloads (``<id>.pkl``), immutable once published
      todo/     claim tickets (``<id>.json``) — present = claimable
      claimed/  tickets a worker has claimed (rename target)
      leases/   lease files for claimed tickets (see ``lease.py``)
      results/  completed tasks (``<id>.pkl``: pickled UnitResults)
      failed/   tickets whose retry budget is exhausted
      tmp/      staging area for atomic writes
      logs/     self-spawned worker logs

Protocol:

* **publish** — write the payload, then a ticket into ``todo/``.  A
  task whose result file already exists is *not* re-enqueued: task ids
  derive from the unit spec digests, so the results directory doubles
  as a digest-keyed on-disk extension of the
  :class:`~repro.runner.cache.UnitCache`.
* **claim** — rename the ticket ``todo/ -> claimed/``.  Exactly one
  renamer wins; losers see the source vanish and move on.  The winner
  writes a lease and starts executing.
* **complete** — write the results atomically (tmp + rename), then
  drop the ticket and lease.  Because results are deterministic,
  completion is idempotent: duplicate executions (an expired lease
  whose worker was merely slow) overwrite the file with identical
  bytes.
* **requeue/fail** — an error or an expired lease sends the ticket
  back to ``todo/`` with its attempt count incremented, until
  ``max_attempts`` is exhausted and the ticket lands in ``failed/``
  for the collector to surface.

Payloads cross the directory as pickles, exactly as work units cross
process-pool boundaries; only point a queue at directories you trust.
"""

from __future__ import annotations

import itertools
import json
import os
import pickle
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .lease import DEFAULT_LEASE_TTL_S, Lease, read_lease

#: How many times a task may be attempted (first run + retries)
#: before it is declared failed.
DEFAULT_MAX_ATTEMPTS = 3

_QUEUE_DIRS = ("tasks", "todo", "claimed", "leases", "results",
               "failed", "tmp", "logs", "control")

_tmp_counter = itertools.count()


class QueueError(RuntimeError):
    """A work-queue operation could not proceed."""


def default_worker_id() -> str:
    """A worker identity unique across hosts and processes."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class Claim:
    """One worker's successful claim of one task."""

    task_id: str
    worker_id: str
    ticket: dict
    ttl_s: float

    @property
    def attempts(self) -> int:
        """Attempts already spent *before* this claim."""
        return int(self.ticket.get("attempts", 0))


@dataclass(frozen=True)
class RequeueReport:
    """What one expiry sweep did."""

    requeued: tuple[str, ...] = ()
    failed: tuple[str, ...] = ()


@dataclass(frozen=True)
class EvictionReport:
    """What one eviction pass removed from the result store."""

    results: tuple[str, ...] = ()
    failed: tuple[str, ...] = ()
    payloads: tuple[str, ...] = ()

    @property
    def total(self) -> int:
        return (len(self.results) + len(self.failed)
                + len(self.payloads))


class WorkQueue:
    """A shared-directory work queue rooted at ``root``."""

    def __init__(self, root: str | Path,
                 lease_ttl_s: float = DEFAULT_LEASE_TTL_S) -> None:
        self.root = Path(root)
        self.lease_ttl_s = lease_ttl_s
        #: driver-side: when each leaseless claimed ticket was first
        #: observed (grace clock for workers that died before their
        #: lease write — see :meth:`requeue_expired`)
        self._unleased_since: dict[str, float] = {}

    # --- layout -------------------------------------------------------
    def ensure(self) -> "WorkQueue":
        """Create the queue layout (idempotent); validate the root."""
        if self.root.exists() and not self.root.is_dir():
            raise QueueError(
                f"queue root {str(self.root)!r} exists and is not a "
                f"directory")
        try:
            for name in _QUEUE_DIRS:
                (self.root / name).mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise QueueError(
                f"cannot initialise work queue at {str(self.root)!r}: "
                f"{exc}") from exc
        return self

    def _dir(self, name: str) -> Path:
        return self.root / name

    def payload_path(self, task_id: str) -> Path:
        return self._dir("tasks") / f"{task_id}.pkl"

    def result_path(self, task_id: str) -> Path:
        return self._dir("results") / f"{task_id}.pkl"

    def lease_path(self, task_id: str) -> Path:
        return self._dir("leases") / f"{task_id}.json"

    # --- atomic writes ------------------------------------------------
    def _write_atomic(self, path: Path, data: bytes) -> None:
        tmp = self._dir("tmp") / (
            f"{path.name}.{os.getpid()}.{next(_tmp_counter)}")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def _write_ticket(self, directory: str, ticket: dict) -> None:
        self._write_atomic(
            self._dir(directory) / f"{ticket['task']}.json",
            json.dumps(ticket).encode())

    # --- publishing ---------------------------------------------------
    def pending_ticket(self, task_id: str) -> bool:
        """Is a claim ticket for this task live (todo or claimed)?"""
        return any((self._dir(where) / f"{task_id}.json").exists()
                   for where in ("todo", "claimed"))

    def publish(self, task_id: str, payload: Any) -> bool:
        """Publish one task; returns False when its result already
        exists (nothing to run — the collector serves it directly).

        Republishing resets the task's fate: a stale ``failed/``
        ticket from an earlier run (whose cause the operator has since
        fixed) is cleared, so the fresh attempt budget actually
        applies instead of the old failure poisoning the new plan.

        A task whose ticket is already *live* — queued in ``todo/`` or
        claimed by a worker right now — is not re-ticketed: a second
        publisher (another client submitting an overlapping sweep to a
        shared queue) must neither reset the in-flight ticket's
        attempt count nor race a duplicate ticket past the claim
        dedupe.  The call still returns True, because the task is
        outstanding work the caller has to wait on.
        """
        if self.has_result(task_id):
            return False
        if self.pending_ticket(task_id):
            return True
        try:
            (self._dir("failed") / f"{task_id}.json").unlink()
        except OSError:
            pass
        self._write_atomic(self.payload_path(task_id),
                           pickle.dumps(payload))
        self._write_ticket("todo", {"task": task_id, "attempts": 0,
                                    "errors": []})
        return True

    # --- claiming -----------------------------------------------------
    def claim(self, worker_id: str | None = None,
              ttl_s: float | None = None) -> Claim | None:
        """Claim one task by atomic rename; ``None`` when nothing is
        claimable.  Exactly one claimant wins each ticket."""
        claims = self.claim_batch(1, worker_id, ttl_s)
        return claims[0] if claims else None

    def claim_batch(self, n: int, worker_id: str | None = None,
                    ttl_s: float | None = None) -> list[Claim]:
        """Claim up to ``n`` tasks in one ``todo/`` listing.

        One directory scan serves the whole batch, so a worker asking
        for several tasks per round pays one round-trip of filesystem
        stats instead of ``n`` — the difference between dispatch-bound
        and worker-bound on the network filesystems shared queues live
        on.  Each task still gets its own ticket rename and lease, so
        the claim/expiry protocol (and every fault-tolerance guarantee
        built on it) is unchanged; losing a rename race skips to the
        next ticket.
        """
        if n < 1:
            raise ValueError("claim batch size must be >= 1")
        worker_id = worker_id or default_worker_id()
        ttl_s = self.lease_ttl_s if ttl_s is None else ttl_s
        todo, claimed = self._dir("todo"), self._dir("claimed")
        claims: list[Claim] = []
        for name in sorted(os.listdir(todo)):
            if len(claims) >= n:
                break
            if not name.endswith(".json"):
                continue
            src, dst = todo / name, claimed / name
            try:
                os.rename(src, dst)
            except OSError:
                continue        # another claimant won this ticket
            try:
                ticket = json.loads(dst.read_text())
            except (OSError, ValueError):
                # The ticket is unreadable (a torn write), so the true
                # attempt count is lost.  Fabricate a replacement, but
                # *charge the fabrication as one attempt* — resetting
                # to zero would hand a crash-looping task a fresh
                # retry budget every time its ticket tears, letting it
                # retry forever.  The fabricated ticket is also
                # written back to ``claimed/`` so the rest of the
                # protocol (release_error's ownership check, the
                # expiry sweep's requeue) can read it; leaving the
                # torn bytes in place would strand the task in
                # ``claimed/`` unretirable.
                ticket = {"task": name[:-len(".json")], "attempts": 1,
                          "errors": ["ticket unreadable at claim; "
                                     "attempt count fabricated"]}
                self._write_ticket("claimed", ticket)
            if self.has_result(ticket["task"]):
                # A leftover ticket for an already-completed task (a
                # zombie's late requeue racing the real completion):
                # results are deterministic, so drop it, don't redo it.
                self._drop_claim(ticket["task"])
                continue
            claim = Claim(task_id=ticket["task"], worker_id=worker_id,
                          ticket=ticket, ttl_s=ttl_s)
            self.renew(claim)
            claims.append(claim)
        return claims

    def renew(self, claim: Claim) -> None:
        """Extend the claim's lease by its TTL from now."""
        lease = Lease.granted(claim.task_id, claim.worker_id,
                              claim.ttl_s)
        self._write_atomic(self.lease_path(claim.task_id),
                           lease.to_json())

    def renew_many(self, claims: list[Claim]) -> None:
        """Renew several held claims in one heartbeat tick."""
        for claim in claims:
            self.renew(claim)

    def load_payload(self, claim: Claim) -> Any:
        try:
            data = self.payload_path(claim.task_id).read_bytes()
        except OSError as exc:
            raise QueueError(f"task {claim.task_id!r} has no payload "
                             f"file: {exc}") from exc
        return pickle.loads(data)

    # --- completion / failure -----------------------------------------
    def _drop_claim(self, task_id: str) -> None:
        for path in ((self._dir("claimed") / f"{task_id}.json"),
                     self.lease_path(task_id)):
            try:
                path.unlink()
            except OSError:
                pass            # already dropped by a requeue sweep

    def complete(self, claim: Claim, results: list) -> None:
        """Record the task's results and release the claim."""
        self._write_atomic(self.result_path(claim.task_id),
                           pickle.dumps(list(results)))
        self._drop_claim(claim.task_id)

    def release_error(self, claim: Claim, error: str,
                      max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> str:
        """An attempt failed: requeue or, out of budget, mark failed.

        Only the claim's *current owner* may retire it: if the expiry
        sweep already stole this claim and re-issued it (the on-disk
        ticket's attempt count moved past our snapshot, or the lease
        belongs to another worker), the late report is obsolete — the
        live claimant owns the task's fate now, and retiring with the
        stale snapshot would both steal its claim and regress the
        attempt counter below the true count.

        Returns ``"requeued"`` or ``"failed"``.
        """
        task_id = claim.task_id
        try:
            current = json.loads(
                (self._dir("claimed") / f"{task_id}.json").read_text())
        except (OSError, ValueError):
            return "requeued"   # already retired or completed
        if int(current.get("attempts", 0)) != claim.attempts:
            return "requeued"   # stolen and re-claimed; not ours
        lease = read_lease(self.lease_path(task_id))
        if lease is not None and lease.worker_id != claim.worker_id:
            return "requeued"
        ticket = dict(claim.ticket)
        ticket["attempts"] = claim.attempts + 1
        ticket["errors"] = list(ticket.get("errors", ())) + [error]
        return self._retire(ticket, max_attempts,
                            expected_attempts=claim.attempts)

    def _retire(self, ticket: dict, max_attempts: int,
                expected_attempts: int | None = None) -> str:
        """Route an updated ticket back to ``todo/`` or to ``failed/``.

        The ticket is rewritten *in place* in ``claimed/`` and then
        moved by one atomic rename, so it exists in exactly one
        directory at every instant: a fresh claimant renaming the new
        ``todo/`` ticket can never be silently clobbered by a
        straggling cleanup (write-then-delete would open exactly that
        window), and a crash mid-retire leaves the ticket recoverable
        in ``claimed/`` for the next expiry sweep.

        ``expected_attempts`` re-verifies ownership immediately before
        the overwrite: if the on-disk ticket's attempt count moved
        past the caller's snapshot while it stalled (the expiry sweep
        stole and re-issued the claim), the retire is obsolete and
        becomes a no-op.  Plain files cannot close this window fully,
        but re-checking here shrinks it from "since the claim" to
        microseconds, and the remaining race only costs a duplicate
        execution — never a lost task or a wrong result.
        """
        task_id = ticket["task"]
        destination = ("failed" if ticket["attempts"] >= max_attempts
                       else "todo")
        claimed_path = self._dir("claimed") / f"{task_id}.json"
        try:
            on_disk = json.loads(claimed_path.read_text())
        except (OSError, ValueError):
            # Someone else (a zombie worker vs the expiry sweep)
            # already retired this claim; nothing to route.
            return "requeued"
        if (expected_attempts is not None
                and int(on_disk.get("attempts", 0)) != expected_attempts):
            return "requeued"   # claim was stolen and re-issued
        self._write_atomic(claimed_path, json.dumps(ticket).encode())
        try:
            os.rename(claimed_path,
                      self._dir(destination) / f"{task_id}.json")
        except OSError:
            return "requeued"   # lost the retire race; ticket moved
        try:
            self.lease_path(task_id).unlink()
        except OSError:
            pass
        return "failed" if destination == "failed" else "requeued"

    # --- expiry (driver side) -----------------------------------------
    def requeue_expired(self, max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                        now: float | None = None) -> RequeueReport:
        """Re-enqueue claimed tasks whose lease has expired.

        A claimed ticket without a readable lease (the worker died in
        the claim/lease window, or the lease file is corrupt) gets a
        full TTL of grace from the sweep that *first observes* it in
        that state — the ticket file's own mtime is useless here, as
        rename preserves it from publish time, which would make any
        task that queued longer than the TTL look instantly expired.
        Each expiry costs one attempt; exhausted tickets move to
        ``failed/``.
        """
        now = time.time() if now is None else now
        requeued: list[str] = []
        failed: list[str] = []
        claimed = self._dir("claimed")
        for name in sorted(os.listdir(claimed)):
            if not name.endswith(".json"):
                continue
            task_id = name[:-len(".json")]
            if self.has_result(task_id):
                # A slow-but-alive worker finished after its lease
                # expired; nothing to retry.
                self._drop_claim(task_id)
                self._unleased_since.pop(task_id, None)
                continue
            lease = read_lease(self.lease_path(task_id))
            if lease is not None:
                self._unleased_since.pop(task_id, None)
                expired = lease.expired(now)
            else:
                first_seen = self._unleased_since.setdefault(task_id,
                                                             now)
                expired = now - first_seen > self.lease_ttl_s
            if not expired:
                continue
            self._unleased_since.pop(task_id, None)
            try:
                ticket = json.loads((claimed / name).read_text())
            except (OSError, ValueError):
                continue
            ticket["attempts"] = int(ticket.get("attempts", 0)) + 1
            ticket["errors"] = (list(ticket.get("errors", ()))
                                + [f"lease expired (worker "
                                   f"{lease.worker_id if lease else 'unknown'})"])
            if self._retire(ticket, max_attempts,
                            expected_attempts=ticket["attempts"] - 1) \
                    == "failed":
                failed.append(task_id)
            else:
                requeued.append(task_id)
        return RequeueReport(requeued=tuple(requeued),
                             failed=tuple(failed))

    def sweep_stale_tmp(self, now: float | None = None) -> tuple[str, ...]:
        """Delete orphaned ``tmp/`` staging files older than the TTL.

        Every queue write stages under ``tmp/`` and atomically renames
        into place; a worker crashing between the write and the rename
        strands the staging file forever.  Anything in ``tmp/`` whose
        mtime is older than the lease TTL cannot still be mid-write (a
        healthy write-then-rename is sub-second, and even the slowest
        writer would have renamed or died within one lease), so the
        collector's periodic sweep reclaims it.  Returns the names
        removed.
        """
        now = time.time() if now is None else now
        removed: list[str] = []
        tmp_dir = self._dir("tmp")
        try:
            names = sorted(os.listdir(tmp_dir))
        except OSError:
            return ()
        for name in names:
            path = tmp_dir / name
            try:
                if now - path.stat().st_mtime <= self.lease_ttl_s:
                    continue  # fresh: possibly an in-flight write
                path.unlink()
            except OSError:
                # Renamed into place or already reclaimed by a
                # concurrent sweep — either way it is gone.
                continue
            removed.append(name)
        return tuple(removed)

    # --- eviction (operator side) -------------------------------------
    def evict(self, max_age_s: float, now: float | None = None,
              keep: set[str] | frozenset[str] = frozenset(),
              dry_run: bool = False) -> EvictionReport:
        """Remove stored results older than ``max_age_s`` seconds.

        ``results/`` doubles as the queue's digest-keyed cache, so a
        long-lived service queue grows without bound unless somebody
        evicts.  Age is the result file's mtime — completion rewrites
        it, so a result re-served by an overlapping sweep stays
        "recently written" only if it was actually recomputed; pure
        cache hits do not refresh it (eviction is by *write* age, the
        provenance embedded per unit records what the result was).

        Evicting a result also drops the task's now-orphaned payload,
        and ``failed/`` tickets older than the cutoff are cleared the
        same way (their error history has been surfaceable for the
        whole retention window).  Tasks in ``keep`` — e.g. those a
        live submission still references — and tasks with a live
        claim ticket are spared regardless of age.  With ``dry_run``
        nothing is deleted; the report lists what would be.
        """
        if max_age_s < 0:
            raise ValueError("max_age_s must be >= 0")
        now = time.time() if now is None else now
        results: list[str] = []
        failed: list[str] = []
        payloads: list[str] = []

        def too_old(path: Path) -> bool:
            try:
                return now - path.stat().st_mtime > max_age_s
            except OSError:
                return False    # vanished under us: nothing to evict

        def remove(path: Path) -> bool:
            if dry_run:
                return True
            try:
                path.unlink()
            except OSError:
                return False    # lost a race with another evictor
            return True

        for name in sorted(os.listdir(self._dir("results"))):
            if not name.endswith(".pkl"):
                continue
            task_id = name[:-len(".pkl")]
            path = self._dir("results") / name
            if (task_id in keep or self.pending_ticket(task_id)
                    or not too_old(path)):
                continue
            if not remove(path):
                continue
            results.append(task_id)
            if self.payload_path(task_id).exists() and \
                    remove(self.payload_path(task_id)):
                payloads.append(task_id)
        for name in sorted(os.listdir(self._dir("failed"))):
            if not name.endswith(".json"):
                continue
            task_id = name[:-len(".json")]
            path = self._dir("failed") / name
            if task_id in keep or not too_old(path):
                continue
            if remove(path):
                failed.append(task_id)
        return EvictionReport(results=tuple(results),
                              failed=tuple(failed),
                              payloads=tuple(payloads))

    # --- shutdown sentinel (driver side) ------------------------------
    def shutdown_path(self) -> Path:
        return self._dir("control") / "shutdown.json"

    def request_shutdown(self, now: float | None = None) -> None:
        """Ask idle workers to exit (the self-spawn/pool teardown).

        The sentinel is timestamped so only workers that started
        *before* the request honour it: a stale sentinel left on disk
        (a driver that died between requesting and clearing) must not
        instantly kill the next fleet pointed at the queue.  Workers
        only check it when idle, so in-flight work always drains
        first.
        """
        now = time.time() if now is None else now
        self._write_atomic(self.shutdown_path(),
                           json.dumps({"requested_at": now}).encode())

    def clear_shutdown(self) -> None:
        """Withdraw the shutdown request (start of a new round)."""
        try:
            self.shutdown_path().unlink()
        except OSError:
            pass

    def shutdown_requested(self, since: float | None = None) -> bool:
        """Is a shutdown sentinel newer than ``since`` present?

        ``since`` is the caller's start time: a worker passes when it
        began, so sentinels predating its own spawn are ignored (see
        :meth:`request_shutdown`).  Clock comparisons cross hosts with
        the same NTP-level tolerance the leases already assume.
        """
        try:
            payload = json.loads(self.shutdown_path().read_text())
            requested_at = float(payload["requested_at"])
        except (OSError, ValueError, KeyError, TypeError):
            return False
        return since is None or requested_at >= since

    # --- inspection ---------------------------------------------------
    def has_result(self, task_id: str) -> bool:
        return self.result_path(task_id).exists()

    def result_ids(self) -> set[str]:
        """Every task id with a recorded result (one directory scan —
        the collector's per-poll primitive).  The scan is sorted so
        traversal order is host-independent even though the result is
        a set."""
        return {name[:-len(".pkl")]
                for name in sorted(os.listdir(self._dir("results")))
                if name.endswith(".pkl")}

    def load_results(self, task_id: str) -> list:
        try:
            return pickle.loads(self.result_path(task_id).read_bytes())
        except OSError as exc:
            raise QueueError(f"no result recorded for task "
                             f"{task_id!r}: {exc}") from exc

    def todo_ids(self) -> tuple[str, ...]:
        return self._ids("todo")

    def claimed_ids(self) -> tuple[str, ...]:
        return self._ids("claimed")

    def failed_tickets(self, task_ids=None) -> dict[str, dict]:
        """Exhausted tickets by task id (with their error history).

        ``task_ids`` restricts which tickets are *opened*: a
        long-lived shared queue accumulates failures from unrelated
        sweeps, and a polling collector must not pay to re-read them.
        """
        out: dict[str, dict] = {}
        for name in sorted(os.listdir(self._dir("failed"))):
            if not name.endswith(".json"):
                continue
            task_id = name[:-len(".json")]
            if task_ids is not None and task_id not in task_ids:
                continue
            try:
                out[task_id] = json.loads(
                    (self._dir("failed") / name).read_text())
            except (OSError, ValueError):
                out[task_id] = {"errors": ["unreadable"]}
        return out

    def _ids(self, directory: str) -> tuple[str, ...]:
        return tuple(
            name[:-len(".json")]
            for name in sorted(os.listdir(self._dir(directory)))
            if name.endswith(".json"))
