"""Distributed execution: a shared-directory work queue for sweeps.

The PR-1/PR-3 work-unit scheme was built to be process- and
machine-independent — every unit's seed and cache key derive from its
spec digest alone — so distributing a sweep is "only" a scheduling
problem.  This package solves it with files:

* :mod:`.queue` — the :class:`WorkQueue`: atomic-rename claims,
  idempotent completion, bounded retries; one directory, no server;
* :mod:`.lease` — time-bounded worker holds with expiry, so dead
  workers' shards are recoverable;
* :mod:`.broker` — publish an :class:`~repro.runner.plan.ExecutionPlan`
  as content-addressed shard tasks;
* :mod:`.worker` — the claim/execute/complete loop behind
  ``python -m repro.experiments worker --queue DIR``, with multi-claim
  leases (``--claim-batch``) and backed-off idle polling;
* :mod:`.pool` — :class:`WorkerPool`: warm local worker fleets that
  outlive a single sweep and retire via the queue's shutdown sentinel;
* :mod:`.collector` — the driver side: block until the plan completes,
  re-enqueue expired leases, surface exhausted retries;
* :mod:`.backend` — :class:`DistributedBackend`, registered as
  ``backend="distributed"`` (CLI ``--backend distributed --queue DIR
  --workers N [--pool] [--claim-batch N]``);
* :mod:`.service` — sweep-as-a-service: a long-running
  :class:`ServiceDaemon` (``python -m repro.experiments serve``) that
  accepts :class:`SweepSubmission`\\ s from many clients through a
  file-based inbox, dedupes overlapping work against the shared
  result store, and reports per-submission status files
  (``submit``/``status``/``gc`` subcommands).

The determinism guarantee extends unchanged: a distributed sweep is
bit-identical to a serial one for any worker count, pool lifetime,
claim batch size, crash schedule or claim interleaving — enforced by
the fault-injection harness in ``tests/test_distributed.py``.
"""

from .backend import DistributedBackend
from .broker import ShardTask, plan_tasks, publish_plan
from .collector import (CollectStats, CollectTimeout, Collector,
                        FailedUnitError)
from .lease import DEFAULT_LEASE_TTL_S, Lease, read_lease
from .pool import WorkerPool
from .queue import (Claim, DEFAULT_MAX_ATTEMPTS, EvictionReport,
                    QueueError, RequeueReport, WorkQueue,
                    default_worker_id)
from .service import (GcReport, ServiceDaemon, ServiceStats,
                      SubmissionStore, SweepSubmission, gc_queue,
                      list_submissions, read_status, service_state,
                      submission_results, submit_sweep)
from .worker import Worker

__all__ = [
    "Claim",
    "CollectStats",
    "CollectTimeout",
    "Collector",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_MAX_ATTEMPTS",
    "DistributedBackend",
    "EvictionReport",
    "FailedUnitError",
    "GcReport",
    "Lease",
    "QueueError",
    "RequeueReport",
    "ServiceDaemon",
    "ServiceStats",
    "ShardTask",
    "SubmissionStore",
    "SweepSubmission",
    "Worker",
    "WorkerPool",
    "WorkQueue",
    "default_worker_id",
    "gc_queue",
    "list_submissions",
    "plan_tasks",
    "publish_plan",
    "read_lease",
    "read_status",
    "service_state",
    "submission_results",
    "submit_sweep",
]
