"""Sweep-as-a-service: a long-running daemon over one work queue.

The distributed queue's ``results/`` directory is already a
digest-keyed, machine-independent result store; this module promotes
it to a *service*: one daemon process owns a queue directory (and,
optionally, a warm fleet of local worker subprocesses), and any number
of clients hand it scenario sweeps to run.  Everything rides the
existing file protocol — submissions are JSON files atomically renamed
into an inbox, exactly the idiom ``todo/`` tickets use — so there is
no new transport and no new trust model beyond the queue directory
itself.

Layout (inside the queue root)::

    submissions/
      inbox/    client-submitted sweeps (``<id>.json``), atomically
                renamed in; the daemon renames them out to accept
      active/   submissions the daemon has accepted and planned
                (crash recovery: a restarted daemon re-plans these —
                publishing is idempotent, results are reused)
      status/   per-submission status files the daemon atomically
                rewrites (state, planned/cached/running/done counts,
                failures with error history) — poll these, or
                ``python -m repro.experiments status --follow``
      done/     terminal submissions (provenance; ``gc`` prunes)

Sharing comes free from content-addressed tasks: two clients
submitting overlapping sweeps map the overlap to the same task ids, so
it executes **once** — deduped against ``results/`` (earlier runs) and
against each other's in-flight tickets (``WorkQueue.publish`` skips
live tickets).  Each scenario of a submission is planned as its own
:class:`~repro.runner.plan.ExecutionPlan` with a fixed fan-out, so the
task ids of a scenario sweep depend only on the scenario, the rates,
the budget, the seed, the engine and the daemon's fan-out — never on
what else happened to share the submission.

Clients (see ``python -m repro.experiments submit/status/gc``):

* :func:`submit_sweep` — drop a :class:`SweepSubmission` in the inbox;
* :func:`read_status` / :func:`list_submissions` — poll status files;
* :func:`submission_results` — fetch a finished submission's
  :class:`~repro.runner.units.UnitResult`\\ s in submission order
  (bit-identical to a serial run of the same units);
* :func:`gc_queue` — evict results/provenance older than a retention
  window (the scenario metadata embedded per unit is the provenance).

The daemon (:class:`ServiceDaemon`) accepts, plans and publishes
submissions, babysits its worker fleet (or executes in-process when
``workers=0`` — the daemon *is* then the worker), serves as the
collector for every in-flight submission at once (one ``results/``
scan per tick, one shared :class:`~.collector.QueueTender` expiry
cadence), and tears down gracefully: a stop request drains in-flight
submissions, then sentinel-retires the pool so no worker subprocess
outlives it.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from ...noc.budget import DEFAULT, SimBudget
from ...noc.engines import DEFAULT_ENGINE, engine_names
from ...scenario import ScenarioSpec
from ..plan import ExecutionPlan
from ..units import UnitResult
from .broker import publish_plan
from .collector import QueueTender
from .lease import DEFAULT_LEASE_TTL_S
from .pool import WorkerPool
from .queue import (DEFAULT_MAX_ATTEMPTS, EvictionReport, QueueError,
                    WorkQueue, default_worker_id)
from .worker import Worker

#: Sharding fan-out assumed when the daemon has no self-spawned fleet
#: (external or in-process workers); mirrors the backend's constant.
SERVICE_SHARD_FANOUT = 8

#: Submission subdirectories (under the queue root).
_SUBMISSION_DIRS = ("submissions/inbox", "submissions/active",
                    "submissions/status", "submissions/done")

_submission_counter = itertools.count()


# ---------------------------------------------------------------------
# The submission wire format
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class SweepSubmission:
    """One client's sweep request: scenarios x rates, plus run knobs.

    Frozen and JSON-serializable (:meth:`to_payload` /
    :meth:`from_payload`): a submission crosses the queue directory as
    human-readable JSON, never as a pickle — clients only need to
    write a file, and a daemon never unpickles client input.
    """

    submission_id: str
    scenarios: tuple[ScenarioSpec, ...]
    rates: tuple[float, ...]
    seed: int = 1
    engine: str = DEFAULT_ENGINE
    budget: SimBudget = DEFAULT

    def __post_init__(self) -> None:
        if not self.submission_id or "/" in self.submission_id:
            raise ValueError(
                f"invalid submission id {self.submission_id!r}")
        if not self.scenarios:
            raise ValueError("a submission needs at least one scenario")
        if not self.rates:
            raise ValueError("a submission needs at least one rate")
        if any(r <= 0 for r in self.rates):
            raise ValueError("rates must be positive")
        if self.engine not in engine_names():
            raise ValueError(f"unknown engine {self.engine!r}; known: "
                             f"{', '.join(engine_names())}")

    @classmethod
    def build(cls, scenarios: Iterable[ScenarioSpec],
              rates: Iterable[float], seed: int = 1,
              engine: str = DEFAULT_ENGINE,
              budget: SimBudget = DEFAULT,
              submission_id: str | None = None) -> "SweepSubmission":
        """The ergonomic constructor; mints an id when none is given.

        Ids are content-prefixed for log readability but made unique
        by submitter identity and a counter — two clients submitting
        the *same* sweep still get their own status files (the shared
        work dedupes at the task layer, not here).
        """
        scenarios = tuple(scenarios)
        rates = tuple(float(r) for r in rates)
        budget = budget if budget is not None else DEFAULT
        if submission_id is None:
            content = json.dumps(
                [[s.digest() for s in scenarios], list(rates), seed,
                 engine, [budget.warmup_cycles, budget.measure_cycles,
                          budget.drain_cycles]],
                sort_keys=True)
            prefix = hashlib.sha256(content.encode()).hexdigest()[:10]
            submission_id = (f"sub-{prefix}-{default_worker_id()}-"
                             f"{next(_submission_counter)}")
        return cls(submission_id, scenarios, rates, seed=seed,
                   engine=engine, budget=budget)

    def to_payload(self) -> dict:
        return {
            "id": self.submission_id,
            "scenarios": [s.to_payload() for s in self.scenarios],
            "rates": list(self.rates),
            "seed": self.seed,
            "engine": self.engine,
            "budget": [self.budget.warmup_cycles,
                       self.budget.measure_cycles,
                       self.budget.drain_cycles],
        }

    @classmethod
    def from_payload(cls, data: dict) -> "SweepSubmission":
        try:
            scenarios = tuple(ScenarioSpec.from_payload(s)
                              for s in data["scenarios"])
            rates = tuple(float(r) for r in data["rates"])
            budget = (SimBudget(*data["budget"]) if "budget" in data
                      else DEFAULT)
            return cls(data["id"], scenarios, rates,
                       seed=int(data.get("seed", 1)),
                       engine=data.get("engine", DEFAULT_ENGINE),
                       budget=budget)
        except (TypeError, KeyError, ValueError) as exc:
            raise ValueError(f"malformed submission payload: {exc}") \
                from exc

    @property
    def label(self) -> str:
        inner = ", ".join(s.label for s in self.scenarios[:3])
        if len(self.scenarios) > 3:
            inner += f", +{len(self.scenarios) - 3} more"
        return f"{inner} x {len(self.rates)} rates"


# ---------------------------------------------------------------------
# The submission store (file primitives; client and daemon side)
# ---------------------------------------------------------------------
class SubmissionStore:
    """Submission/status file primitives on one queue directory.

    Every write is staged under the queue's ``tmp/`` and atomically
    renamed into place — the same idiom (and the same crash-recovery
    guarantees) as claim tickets, so a reader never observes a torn
    submission or status file.
    """

    def __init__(self, queue: WorkQueue) -> None:
        self.queue = queue

    def ensure(self) -> "SubmissionStore":
        self.queue.ensure()
        try:
            for name in _SUBMISSION_DIRS:
                (self.queue.root / name).mkdir(parents=True,
                                               exist_ok=True)
        except OSError as exc:
            raise QueueError(
                f"cannot initialise submission store at "
                f"{str(self.queue.root)!r}: {exc}") from exc
        return self

    def _dir(self, name: str) -> Path:
        return self.queue.root / "submissions" / name

    def _ids(self, name: str) -> tuple[str, ...]:
        return tuple(n[:-len(".json")]
                     for n in sorted(os.listdir(self._dir(name)))
                     if n.endswith(".json"))

    # --- client side --------------------------------------------------
    def submit(self, submission: SweepSubmission) -> str:
        """Drop a submission in the inbox; returns its id."""
        payload = json.dumps(submission.to_payload(), sort_keys=True)
        self.queue._write_atomic(
            self._dir("inbox") / f"{submission.submission_id}.json",
            payload.encode())
        return submission.submission_id

    def read_status(self, submission_id: str) -> dict | None:
        """The submission's status payload, or None before planning.

        A submission still waiting in the inbox reports a synthetic
        ``queued`` state, so clients polling right after submit see
        progress, not absence.
        """
        try:
            return json.loads(
                (self._dir("status") / f"{submission_id}.json")
                .read_text())
        except (OSError, ValueError):
            pass
        if (self._dir("inbox") / f"{submission_id}.json").exists():
            return {"id": submission_id, "state": "queued"}
        return None

    def status_ids(self) -> tuple[str, ...]:
        return self._ids("status")

    # --- daemon side --------------------------------------------------
    def pending_ids(self) -> tuple[str, ...]:
        return self._ids("inbox")

    def active_ids(self) -> tuple[str, ...]:
        return self._ids("active")

    def accept(self, submission_id: str
               ) -> tuple[SweepSubmission | None, str | None]:
        """Move an inbox submission to ``active/`` and parse it.

        Returns ``(submission, None)`` or ``(None, error)``; exactly
        one daemon wins the rename, so two daemons pointed at one
        queue never double-accept.  A malformed submission is *kept*
        in ``active/`` (for post-mortem) and reported via its status
        file, not silently dropped.
        """
        src = self._dir("inbox") / f"{submission_id}.json"
        dst = self._dir("active") / f"{submission_id}.json"
        try:
            os.rename(src, dst)
        except OSError:
            return None, None       # another daemon won, or withdrawn
        return self._load(dst, submission_id)

    def reload_active(self, submission_id: str
                      ) -> tuple[SweepSubmission | None, str | None]:
        """Re-read an ``active/`` submission (daemon crash recovery)."""
        return self._load(self._dir("active") / f"{submission_id}.json",
                          submission_id)

    def _load(self, path: Path, submission_id: str
              ) -> tuple[SweepSubmission | None, str | None]:
        try:
            submission = SweepSubmission.from_payload(
                json.loads(path.read_text()))
        except (OSError, ValueError) as exc:
            return None, f"unreadable submission: {exc}"
        if submission.submission_id != submission_id:
            return None, (f"submission file {submission_id}.json "
                          f"names id {submission.submission_id!r}")
        return submission, None

    def write_status(self, payload: dict) -> None:
        """Atomically rewrite one submission's status file."""
        self.queue._write_atomic(
            self._dir("status") / f"{payload['id']}.json",
            json.dumps(payload, sort_keys=True).encode())

    def finish(self, submission_id: str) -> None:
        """Move a terminal submission ``active/`` -> ``done/``."""
        try:
            os.rename(self._dir("active") / f"{submission_id}.json",
                      self._dir("done") / f"{submission_id}.json")
        except OSError:
            pass                    # already moved, or never accepted

    def prune(self, max_age_s: float, now: float | None = None,
              dry_run: bool = False) -> tuple[str, ...]:
        """Drop terminal submissions' files older than ``max_age_s``.

        Only ``done``/``failed`` submissions are pruned — a status
        file for live work is never touched, whatever its age.
        """
        now = time.time() if now is None else now
        pruned: list[str] = []
        for submission_id in self.status_ids():
            status_path = self._dir("status") / f"{submission_id}.json"
            try:
                payload = json.loads(status_path.read_text())
                age = now - status_path.stat().st_mtime
            except (OSError, ValueError):
                continue
            if payload.get("state") not in ("done", "failed") \
                    or age <= max_age_s:
                continue
            pruned.append(submission_id)
            if dry_run:
                continue
            for path in (status_path,
                         self._dir("done") / f"{submission_id}.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return tuple(pruned)


# ---------------------------------------------------------------------
# The daemon
# ---------------------------------------------------------------------
@dataclass
class ServiceStats:
    """Accounting across one daemon run."""

    accepted: int = 0
    completed: int = 0
    failed: int = 0
    ticks: int = 0

    @property
    def terminal(self) -> int:
        return self.completed + self.failed


@dataclass
class _ActiveSubmission:
    """Daemon-side state of one accepted submission."""

    submission: SweepSubmission | None
    submission_id: str
    state: str = "planned"
    task_ids: tuple[str, ...] = ()
    unit_digests: tuple[str, ...] = ()
    outstanding: set[str] = field(default_factory=set)
    cached: int = 0
    failures: dict[str, dict] = field(default_factory=dict)
    error: str | None = None
    accepted_at: float = 0.0
    finished_at: float | None = None
    _last_written: dict | None = None

    def status_payload(self, running: int) -> dict:
        total = len(self.task_ids)
        done = total - len(self.outstanding) - len(self.failures)
        payload = {
            "id": self.submission_id,
            "state": self.state,
            "label": (self.submission.label
                      if self.submission is not None else None),
            "units": len(self.unit_digests),
            "tasks": total,
            "cached": self.cached,
            "done": done,
            "running": running,
            "todo": len(self.outstanding) - running,
            "failed": len(self.failures),
            "failures": self.failures,
            "error": self.error,
            "task_ids": list(self.task_ids),
            "unit_digests": list(self.unit_digests),
            "accepted_at": self.accepted_at,
            "finished_at": self.finished_at,
        }
        return payload


class ServiceDaemon:
    """Accept, plan, execute and report sweep submissions forever.

    One daemon owns one queue directory.  ``workers >= 1`` self-spawns
    a **warm** :class:`WorkerPool` that serves every submission the
    daemon ever accepts (a daemon's fleet is always pooled — that is
    the point of a daemon); ``workers=0`` makes the daemon execute
    tasks in-process between polls, so a single process is a complete,
    if unparallel, service.  External workers pointed at the queue
    directory add capacity either way.
    """

    def __init__(self, queue_dir: str | Path, workers: int = 0,
                 claim_batch: int = 1,
                 lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
                 poll_s: float = 0.05,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 jobs: int | None = None,
                 log: Callable[[str], None] | None = None) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if claim_batch < 1:
            raise ValueError("claim_batch must be >= 1")
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.queue = WorkQueue(queue_dir,
                               lease_ttl_s=lease_ttl_s).ensure()
        self.store = SubmissionStore(self.queue).ensure()
        self.workers = workers
        self.claim_batch = claim_batch
        self.poll_s = poll_s
        self.max_attempts = max_attempts
        #: planner fan-out — fixed for the daemon's lifetime so a
        #: scenario sweep maps to the same task ids whenever it is
        #: submitted (the cross-submission dedupe contract)
        self.fanout = (jobs if jobs is not None
                       else (workers if workers >= 1
                             else SERVICE_SHARD_FANOUT))
        self.log = log or (lambda message: None)
        self.stats = ServiceStats()
        self.tender = QueueTender(self.queue, max_attempts)
        self._fallback = Worker(self.queue, max_attempts=max_attempts,
                                claim_batch=claim_batch)
        self._pool: WorkerPool | None = None
        self._active: dict[str, _ActiveSubmission] = {}
        self._draining = False
        self._started_at = time.time()
        self._state_written_at = 0.0
        self._jitter = random.Random()

    @classmethod
    def from_context(cls, context, **overrides) -> "ServiceDaemon":
        """A daemon configured like an ``ExecutionContext``.

        The context must resolve to the distributed backend (it names
        the queue directory); its ``workers``/``claim_batch`` knobs
        carry over, so code already deploying ``--backend distributed``
        can promote the same configuration to a daemon.
        """
        if context.resolved_backend() != "distributed":
            raise ValueError(
                "ServiceDaemon.from_context needs a context whose "
                "backend resolves to 'distributed' (it names the "
                "queue directory)")
        options = {"workers": context.workers,
                   "claim_batch": context.claim_batch}
        options.update(overrides)
        return cls(context.queue, **options)

    # --- planning -----------------------------------------------------
    def _plan(self, submission: SweepSubmission,
              active: _ActiveSubmission) -> None:
        """Expand, plan and publish one submission's scenarios.

        Each scenario is planned as its **own** execution plan with
        the daemon's fixed fan-out, so a scenario sweep's task ids are
        a function of the scenario alone — two submissions sharing a
        scenario share its tasks exactly, whatever else they carry.
        Planning errors (an unknown policy parameter, a strategy
        missing a required resource) mark the submission failed in its
        status file; they never take the daemon down.
        """
        task_ids: dict[str, None] = {}      # ordered set
        unit_digests: list[str] = []
        cached = 0
        outstanding: set[str] = set()
        try:
            for spec in submission.scenarios:
                units = spec.units(list(submission.rates),
                                   budget=submission.budget,
                                   seed=submission.seed,
                                   engine=submission.engine)
                plan = ExecutionPlan(list(units), None)
                plan.group_batches(jobs=self.fanout)
                tasks, _ = publish_plan(self.queue, plan)
                unit_digests.extend(u.digest() for u in units)
                for task in tasks:
                    if task.task_id in task_ids:
                        continue
                    task_ids[task.task_id] = None
                    if self.queue.has_result(task.task_id):
                        cached += 1
                    else:
                        outstanding.add(task.task_id)
        except Exception as exc:  # noqa: BLE001 — a client's bad
            # submission must not kill the shared daemon; the error
            # is theirs and goes in their status file.
            active.state = "failed"
            active.error = f"planning failed: {type(exc).__name__}: {exc}"
            return
        active.task_ids = tuple(task_ids)
        active.unit_digests = tuple(unit_digests)
        active.outstanding = outstanding
        active.cached = cached
        active.state = "running" if outstanding else "done"

    def _accept(self, submission_id: str, reload: bool = False) -> bool:
        loader = (self.store.reload_active if reload
                  else self.store.accept)
        submission, error = loader(submission_id)
        if submission is None and error is None:
            return False            # lost the accept race
        active = _ActiveSubmission(submission=submission,
                                   submission_id=submission_id,
                                   accepted_at=time.time())
        if error is not None:
            active.state = "failed"
            active.error = error
        else:
            self._plan(submission, active)
        self.stats.accepted += 1
        self._active[submission_id] = active
        if self._pool is not None:
            self._pool.reset_budget()
        self.log(f"accepted {submission_id} "
                 f"({active.state}, {len(active.task_ids)} task(s), "
                 f"{active.cached} cached)")
        return True

    # --- fleet --------------------------------------------------------
    def _outstanding(self) -> bool:
        return any(a.outstanding for a in self._active.values())

    def _tend_fleet(self) -> bool:
        """Keep executors available; True when work ran in-process."""
        if self.workers:
            if self._pool is None or self._pool.closed:
                self._pool = WorkerPool(
                    self.queue.root, self.workers,
                    lease_ttl_s=self.queue.lease_ttl_s,
                    poll_s=self.poll_s,
                    max_attempts=self.max_attempts,
                    claim_batch=self.claim_batch)
            if self._pool.ensure():
                return False
            # No subprocess can run (restricted host or spent respawn
            # budget): degrade to in-process execution, same results.
        if not self._outstanding():
            return False
        return self._fallback.run_once()

    # --- collection ---------------------------------------------------
    def _collect(self, now: float) -> bool:
        """Serve results/failures into every active submission.

        One ``results/`` listing and one ``claimed/`` listing serve
        *all* submissions — the per-tick filesystem cost does not grow
        with the number of clients, only with the directory sizes.
        """
        if not self._active:
            return False
        progressed = False
        results = self.queue.result_ids()
        claimed = frozenset(self.queue.claimed_ids())
        for submission_id in sorted(self._active):
            active = self._active[submission_id]
            done_now = active.outstanding & results
            if done_now:
                active.outstanding -= done_now
                progressed = True
            if active.outstanding:
                failures = self.queue.failed_tickets(active.outstanding)
                if failures:
                    active.failures.update(failures)
                    active.outstanding -= set(failures)
                    active.state = "failed"
                    progressed = True
            if not active.outstanding and active.state == "running":
                active.state = "done"
            terminal = active.state in ("done", "failed")
            if terminal and active.finished_at is None:
                active.finished_at = now
            running = len(claimed & active.outstanding)
            payload = active.status_payload(running)
            stamped = dict(payload)
            if stamped != active._last_written:
                payload["updated_at"] = now
                self.store.write_status(payload)
                active._last_written = stamped
            if terminal:
                self.store.finish(submission_id)
                del self._active[submission_id]
                if active.state == "done":
                    self.stats.completed += 1
                else:
                    self.stats.failed += 1
                self.log(f"{submission_id} {active.state} "
                         f"({len(active.task_ids)} task(s), "
                         f"{active.cached} cached, "
                         f"{len(active.failures)} failed)")
        return progressed

    # --- daemon state file --------------------------------------------
    def _write_state(self, state: str, now: float | None = None,
                     min_interval_s: float = 1.0) -> None:
        now = time.time() if now is None else now
        if (state == "serving"
                and now - self._state_written_at < min_interval_s):
            return
        self._state_written_at = now
        self.queue._write_atomic(
            self.queue._dir("control") / "service.json",
            json.dumps({
                "state": state,
                "pid": os.getpid(),
                "worker_id": default_worker_id(),
                "workers": self.workers,
                "claim_batch": self.claim_batch,
                "fanout": self.fanout,
                "started_at": self._started_at,
                "updated_at": now,
                "active": len(self._active),
                "accepted": self.stats.accepted,
                "completed": self.stats.completed,
                "failed": self.stats.failed,
            }, sort_keys=True).encode())

    # --- lifecycle ----------------------------------------------------
    def tick(self) -> bool:
        """One service iteration; True when anything progressed."""
        self.stats.ticks += 1
        busy = False
        if not self._draining:
            for submission_id in self.store.pending_ids():
                busy |= self._accept(submission_id)
        busy |= self._tend_fleet()
        now = time.time()
        busy |= self._collect(now)
        self.tender.tick(now)
        self._write_state("draining" if self._draining else "serving",
                          now)
        return busy

    def run(self, stop=None, max_idle_s: float | None = None
            ) -> ServiceStats:
        """Serve until stopped; returns the run's accounting.

        ``stop`` is an optional ``threading.Event``: once set, the
        daemon stops accepting new submissions, *drains* the in-flight
        ones to a terminal state, then tears down.  ``max_idle_s``
        bounds how long the daemon lingers with nothing active and an
        empty inbox (``None`` = forever) — the CI/one-shot spelling.
        """
        # A stale sentinel from a previous teardown must not retire
        # the fleet this daemon is about to spawn.
        self.queue.clear_shutdown()
        # Crash recovery: re-plan submissions a previous daemon died
        # holding.  Publishing is idempotent and results are reused,
        # so this costs only the planning pass.
        for submission_id in self.store.active_ids():
            if submission_id not in self._active:
                self._accept(submission_id, reload=True)
        idle_since: float | None = None
        delay = self.poll_s
        cap = max(self.poll_s, 1.0)
        try:
            while True:
                if stop is not None and stop.is_set():
                    if not self._draining:
                        self.log("stop requested; draining "
                                 f"{len(self._active)} in-flight "
                                 f"submission(s)")
                    self._draining = True
                busy = self.tick()
                if busy:
                    idle_since = None
                    delay = self.poll_s
                    continue
                if self._draining:
                    # Draining means: finish what was accepted, never
                    # touch the inbox.  Queued submissions stay on
                    # disk for the next daemon.
                    if not self._active:
                        break
                    time.sleep(self.poll_s)
                    continue
                if self._active or self.store.pending_ids():
                    # Work in flight but nothing progressed this tick
                    # (external workers are executing): keep polling
                    # at full rate — never a hot spin, never backed
                    # off behind fresh results.
                    idle_since = None
                    time.sleep(self.poll_s)
                    continue
                now = time.time()
                idle_since = now if idle_since is None else idle_since
                if (max_idle_s is not None
                        and now - idle_since >= max_idle_s):
                    self.log(f"idle for {max_idle_s:g}s; exiting")
                    break
                # Idle: back off (with jitter, so many daemons/clients
                # on one filesystem decorrelate) up to a bounded cap —
                # a fresh submission is still noticed within ~1s.
                time.sleep(delay * self._jitter.uniform(0.5, 1.5))
                delay = min(delay * 2.0, cap)
        finally:
            self.close()
        return self.stats

    def close(self) -> None:
        """Tear down: retire the fleet, mark the daemon stopped."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._write_state("stopped", min_interval_s=0.0)


# ---------------------------------------------------------------------
# Client-side helpers (the submit/status/gc subcommands build on these)
# ---------------------------------------------------------------------
def open_store(queue_dir: str | Path) -> SubmissionStore:
    """The submission store on a queue directory (layout ensured)."""
    return SubmissionStore(WorkQueue(queue_dir)).ensure()


def submit_sweep(queue_dir: str | Path,
                 submission: SweepSubmission) -> str:
    """Submit one sweep to a (possibly not yet running) daemon."""
    return open_store(queue_dir).submit(submission)


def read_status(queue_dir: str | Path,
                submission_id: str) -> dict | None:
    """One submission's current status payload (None = unknown id)."""
    return open_store(queue_dir).read_status(submission_id)


def list_submissions(queue_dir: str | Path) -> list[dict]:
    """Status payloads of every known submission, queued ones last."""
    store = open_store(queue_dir)
    known: dict[str, dict] = {}
    for submission_id in store.status_ids():
        status = store.read_status(submission_id)
        if status is not None:
            known[submission_id] = status
    for submission_id in store.pending_ids():
        known.setdefault(submission_id,
                         {"id": submission_id, "state": "queued"})
    return [known[submission_id] for submission_id in sorted(known)]


def service_state(queue_dir: str | Path) -> dict | None:
    """The daemon's ``control/service.json`` introspection payload."""
    try:
        return json.loads(
            (Path(queue_dir) / "control" / "service.json").read_text())
    except (OSError, ValueError):
        return None


def submission_results(queue_dir: str | Path, submission_id: str
                       ) -> list[UnitResult]:
    """A finished submission's unit results, in submission order.

    Bit-identical to running the submission's units serially — the
    determinism guarantee extends through the service unchanged, and
    the service smoke/CI diffs enforce it.  Raises
    :class:`~.queue.QueueError` when the submission is not done or a
    result has been evicted from under it.
    """
    queue = WorkQueue(queue_dir)
    status = open_store(queue_dir).read_status(submission_id)
    if status is None:
        raise QueueError(f"unknown submission {submission_id!r}")
    if status.get("state") != "done":
        raise QueueError(
            f"submission {submission_id!r} is "
            f"{status.get('state', 'unknown')!r}, not done")
    by_digest: dict[str, UnitResult] = {}
    for task_id in status.get("task_ids", ()):
        for result in queue.load_results(task_id):
            by_digest[result.digest] = result
    try:
        return [by_digest[digest]
                for digest in status.get("unit_digests", ())]
    except KeyError as exc:
        raise QueueError(
            f"submission {submission_id!r} result for unit {exc} is "
            f"missing (evicted by gc?)") from None


@dataclass(frozen=True)
class GcReport:
    """What one :func:`gc_queue` pass removed (or would remove)."""

    eviction: EvictionReport
    submissions: tuple[str, ...] = ()

    def render(self) -> str:
        return (f"{len(self.eviction.results)} result(s), "
                f"{len(self.eviction.payloads)} payload(s), "
                f"{len(self.eviction.failed)} failed ticket(s), "
                f"{len(self.submissions)} submission record(s)")


def gc_queue(queue_dir: str | Path, keep_days: float,
             now: float | None = None, dry_run: bool = False
             ) -> GcReport:
    """Evict results and provenance older than ``keep_days`` days.

    Results a *live* (non-terminal) submission still references are
    spared regardless of age, as are tasks with live claim tickets —
    gc against a serving daemon is safe.  Terminal submission records
    older than the window are pruned with their results.
    """
    if keep_days < 0:
        raise ValueError("keep_days must be >= 0")
    now = time.time() if now is None else now
    max_age_s = keep_days * 86400.0
    store = open_store(queue_dir)
    queue = store.queue
    keep: set[str] = set()
    for submission_id in store.status_ids():
        status = store.read_status(submission_id) or {}
        if status.get("state") in ("done", "failed"):
            continue
        keep.update(status.get("task_ids", ()))
    eviction = queue.evict(max_age_s, now=now, keep=keep,
                           dry_run=dry_run)
    pruned = store.prune(max_age_s, now=now, dry_run=dry_run)
    return GcReport(eviction=eviction, submissions=pruned)
