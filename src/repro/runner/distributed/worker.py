"""The worker loop: claim shards, execute, write results back.

A worker is stateless and crash-safe by construction: everything it
holds is re-derivable from the queue directory.  If it dies mid-task
its lease expires and the collector re-enqueues the shard; if it dies
between tasks nothing is lost at all.  Any number of workers — local
subprocesses the backend self-spawned, or processes on other hosts
pointed at a shared directory — can drain one queue concurrently.

Execution reuses the existing backends' kernels verbatim
(:func:`~repro.runner.backends._execute_group` for batch shards, one
``unit.execute()`` per lone unit), so a distributed run produces
bit-identical results to a serial one: seeds derive from spec digests
and never from which worker ran what, when.

CLI form (see ``python -m repro.experiments worker --help``)::

    python -m repro.experiments worker --queue DIR
"""

from __future__ import annotations

import itertools
import threading
import time

from .queue import (Claim, DEFAULT_MAX_ATTEMPTS, WorkQueue,
                    default_worker_id)

_worker_counter = itertools.count()


class Worker:
    """Claims tasks from one queue and executes them to completion."""

    def __init__(self, queue: WorkQueue, worker_id: str | None = None,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> None:
        self.queue = queue
        self.worker_id = (worker_id or
                          f"{default_worker_id()}-{next(_worker_counter)}")
        self.max_attempts = max_attempts
        self.executed = 0
        self.failed = 0

    # ------------------------------------------------------------------
    def run_once(self) -> bool:
        """Claim and finish (or fail) one task; False when queue idle."""
        claim = self.queue.claim(self.worker_id)
        if claim is None:
            return False
        self.execute_claim(claim)
        return True

    def execute_claim(self, claim: Claim) -> None:
        """Execute one claimed task under a lease heartbeat.

        A background thread renews the lease every TTL/3 for as long
        as the task runs, so arbitrarily long shards (a wide batched
        group, a search-heavy strategy) never expire under a healthy
        worker — only a *dead* worker's lease lapses.  The heartbeat
        stops before completion or release so it can never resurrect a
        lease for a finished task.

        An execution error does not kill the worker: the ticket goes
        back to the queue (or to ``failed/`` once its attempt budget
        is spent, carrying the error history for the collector to
        surface) and the worker moves on to the next task.
        """
        stop = threading.Event()

        def heartbeat() -> None:
            interval = max(claim.ttl_s / 3.0, 0.02)
            while not stop.wait(interval):
                try:
                    self.queue.renew(claim)
                except OSError:     # pragma: no cover - transient fs
                    pass            # error; the next beat retries
        beat = threading.Thread(target=heartbeat, daemon=True)
        beat.start()
        try:
            try:
                task = self.queue.load_payload(claim)
                results = list(task.iter_results())
            finally:
                stop.set()
                beat.join()
        except Exception as exc:  # noqa: BLE001 — task faults must not
            # take down the worker; they are reported via the ticket.
            outcome = self.queue.release_error(
                claim, f"{type(exc).__name__}: {exc}", self.max_attempts)
            if outcome == "failed":
                self.failed += 1
            return
        self.queue.complete(claim, results)
        self.executed += 1

    def drain(self) -> int:
        """Execute until the queue has nothing claimable; tasks done."""
        done = 0
        while self.run_once():
            done += 1
        return done

    def run(self, poll_s: float = 0.2, max_tasks: int | None = None,
            max_idle_s: float | None = None) -> int:
        """The long-running loop: claim, execute, sleep when idle.

        Exits after ``max_tasks`` executed-or-failed tasks (``None`` =
        unbounded) or after ``max_idle_s`` seconds without claimable
        work (``None`` = wait forever — the self-spawn backend
        terminates its workers when the sweep completes).  Returns the
        number of tasks handled.
        """
        handled = 0
        idle_since: float | None = None
        while max_tasks is None or handled < max_tasks:
            if self.run_once():
                handled += 1
                idle_since = None
                continue
            now = time.time()
            idle_since = idle_since if idle_since is not None else now
            if (max_idle_s is not None
                    and now - idle_since >= max_idle_s):
                break
            time.sleep(poll_s)
        return handled
