"""The worker loop: claim shards, execute, write results back.

A worker is stateless and crash-safe by construction: everything it
holds is re-derivable from the queue directory.  If it dies mid-task
its lease expires and the collector re-enqueues the shard; if it dies
between tasks nothing is lost at all.  Any number of workers — local
subprocesses the backend self-spawned, or processes on other hosts
pointed at a shared directory — can drain one queue concurrently.

Execution reuses the existing backends' kernels verbatim
(:func:`~repro.runner.backends._execute_group` for batch shards, one
``unit.execute()`` per lone unit), so a distributed run produces
bit-identical results to a serial one: seeds derive from spec digests
and never from which worker ran what, when.

Queue round-trips are kept off the critical path two ways:

* ``claim_batch=N`` claims up to N tasks per round — one ``todo/``
  listing, one lease heartbeat — and executes them back to back, with
  each task still completed (or failed) individually, so the retry
  protocol is per-task exactly as before.  A worker that dies holding
  a batch loses the whole batch to lease expiry; each co-claimed task
  costs one attempt, the same bounded price a wide shard already pays.
* Idle polling backs off exponentially with jitter instead of statting
  the queue at a fixed rate: an idle fleet converges to a few listings
  per second *total*, not per worker, while a freshly published plan
  is still picked up within the (bounded) backoff cap.

CLI form (see ``python -m repro.experiments worker --help``)::

    python -m repro.experiments worker --queue DIR
"""

from __future__ import annotations

import itertools
import random
import threading
import time

from .queue import (Claim, DEFAULT_MAX_ATTEMPTS, WorkQueue,
                    default_worker_id)

_worker_counter = itertools.count()

#: Hard cap on the idle-poll backoff, so a worker never lags a newly
#: published plan by more than this many seconds.
MAX_IDLE_POLL_S = 2.0


class Worker:
    """Claims tasks from one queue and executes them to completion."""

    def __init__(self, queue: WorkQueue, worker_id: str | None = None,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 claim_batch: int = 1) -> None:
        if claim_batch < 1:
            raise ValueError("claim_batch must be >= 1")
        self.queue = queue
        self.worker_id = (worker_id or
                          f"{default_worker_id()}-{next(_worker_counter)}")
        self.max_attempts = max_attempts
        self.claim_batch = claim_batch
        self.executed = 0
        self.failed = 0
        # Owned jitter source for idle-poll backoff: OS-entropy
        # seeded, so a fleet's polls decorrelate without touching the
        # process-global RNG (whose state user code may have seeded).
        self._jitter = random.Random()

    # ------------------------------------------------------------------
    def run_once(self) -> bool:
        """Claim up to ``claim_batch`` tasks and finish (or fail) each;
        False when the queue had nothing claimable."""
        claims = self.queue.claim_batch(self.claim_batch,
                                        self.worker_id)
        if not claims:
            return False
        self.execute_claims(claims)
        return True

    def execute_claim(self, claim: Claim) -> None:
        """Execute one claimed task (see :meth:`execute_claims`)."""
        self.execute_claims([claim])

    def execute_claims(self, claims: list[Claim]) -> None:
        """Execute claimed tasks back to back under one lease heartbeat.

        A single background thread renews every *still-held* lease in
        the batch each tick (TTL/3 of the shortest claim), so
        arbitrarily long shards never expire under a healthy worker —
        only a *dead* worker's leases lapse.  A claim leaves the
        heartbeat set (under the lock, so a tick can never resurrect
        it) immediately before its completion or release is written.

        An execution error does not kill the worker and does not
        abandon the rest of the batch: the failing ticket goes back to
        the queue (or to ``failed/`` once its attempt budget is spent,
        carrying the error history for the collector to surface) and
        execution moves on to the next claimed task.
        """
        held = list(claims)
        lock = threading.Lock()
        stop = threading.Event()
        interval = max(min(c.ttl_s for c in claims) / 3.0, 0.02)

        def heartbeat() -> None:
            while not stop.wait(interval):
                with lock:
                    try:
                        self.queue.renew_many(held)
                    except OSError:  # pragma: no cover - transient fs
                        pass         # error; the next beat retries

        beat = threading.Thread(target=heartbeat, daemon=True)
        beat.start()

        def release(claim: Claim) -> None:
            with lock:
                held.remove(claim)

        try:
            for claim in claims:
                try:
                    task = self.queue.load_payload(claim)
                    results = list(task.iter_results())
                except Exception as exc:  # noqa: BLE001 — task faults
                    # must not take down the worker; they are reported
                    # via the ticket.
                    release(claim)
                    outcome = self.queue.release_error(
                        claim, f"{type(exc).__name__}: {exc}",
                        self.max_attempts)
                    if outcome == "failed":
                        self.failed += 1
                    continue
                release(claim)
                self.queue.complete(claim, results)
                self.executed += 1
        finally:
            stop.set()
            beat.join()

    def drain(self) -> int:
        """Execute until the queue has nothing claimable; rounds done."""
        done = 0
        while self.run_once():
            done += 1
        return done

    def run(self, poll_s: float = 0.2, max_tasks: int | None = None,
            max_idle_s: float | None = None) -> int:
        """The long-running loop: claim, execute, back off when idle.

        Exits after ``max_tasks`` executed-or-failed tasks (``None`` =
        unbounded), after ``max_idle_s`` seconds without claimable work
        (``None`` = wait forever), or as soon as the queue is idle and
        the driver has published a shutdown sentinel newer than this
        loop's start (the warm-pool/self-spawn teardown path — workers
        always drain claimable work before honouring it).  Returns the
        number of tasks handled.

        Idle polls start at ``poll_s`` and double (with +-50% jitter,
        so a fleet's polls decorrelate instead of stampeding the
        filesystem together) up to :data:`MAX_IDLE_POLL_S`; any
        successful claim resets the backoff.
        """
        handled = 0
        started = time.time()
        idle_since: float | None = None
        delay = poll_s
        cap = max(poll_s, MAX_IDLE_POLL_S)
        while max_tasks is None or handled < max_tasks:
            before = self.executed + self.failed
            if self.run_once():
                handled += self.executed + self.failed - before
                idle_since = None
                delay = poll_s
                continue
            now = time.time()
            idle_since = idle_since if idle_since is not None else now
            if (max_idle_s is not None
                    and now - idle_since >= max_idle_s):
                break
            if self.queue.shutdown_requested(since=started):
                break
            time.sleep(delay * self._jitter.uniform(0.5, 1.5))
            delay = min(delay * 2.0, cap)
        return handled
