"""The broker: publish an execution plan's shards to a work queue.

The broker reuses the PR-3 planner wholesale: batch groups become one
task each (a worker executes them through the batched backend's group
kernel, one ``run_fixed_batch`` per task) and per-unit leftovers
become one task per unit (the serial path).  Task ids derive from the
member units' spec digests, so the same shard published twice — by a
retried driver, or by a later sweep that overlaps this one — maps to
the same id and reuses any result already sitting in the queue.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator

from ..backends import _execute_group, _execute_unit
from ..plan import BatchGroup, ExecutionPlan
from ..units import UnitResult, WorkUnit
from .queue import WorkQueue


@dataclass(frozen=True)
class ShardTask:
    """One queue task: a batch group or a handful of lone units."""

    task_id: str
    group: BatchGroup | None = None
    units: tuple[WorkUnit, ...] = ()

    def __post_init__(self) -> None:
        if (self.group is None) == (not self.units):
            raise ValueError("a shard task is either a batch group or "
                             "a non-empty unit tuple, never both")

    @property
    def size(self) -> int:
        return len(self.group.units) if self.group is not None \
            else len(self.units)

    def iter_results(self) -> Iterator[UnitResult]:
        """Execute the task, yielding results as they finish.

        Lease liveness is the worker's heartbeat thread's job, not
        the iteration granularity's — a group task legitimately
        produces nothing until its one batched call returns.
        """
        if self.group is not None:
            yield from _execute_group(self.group)
            return
        for unit in self.units:
            yield _execute_unit(unit)


def _task_id(kind: str, digests: list[str]) -> str:
    """Content-derived task id, salted with the package version.

    Unit digests hash only the *spec*, which is right for the
    in-process cache (it dies with the code that filled it) but not
    for the queue's persistent ``results/`` store: a long-lived shared
    queue must not serve results computed by an older build after an
    upgrade changes simulation numerics.  Folding the version in makes
    an upgrade invalidate the on-disk store wholesale; within one
    version, queue reuse assumes unchanged code (README "Distributed
    execution").
    """
    from ... import __version__

    spec = f"{__version__}:{kind}:" + ",".join(digests)
    return f"{kind}-{hashlib.sha256(spec.encode()).hexdigest()[:16]}"


def plan_tasks(plan: ExecutionPlan) -> list[ShardTask]:
    """The queue tasks for a plan (call ``group_batches`` first)."""
    tasks = [ShardTask(
        task_id=_task_id("group", [u.digest() for u in group.units]),
        group=group) for group in plan.groups]
    tasks += [ShardTask(task_id=_task_id("unit", [unit.digest()]),
                        units=(unit,)) for unit in plan.singles]
    return tasks


def publish_plan(queue: WorkQueue,
                 plan: ExecutionPlan) -> tuple[list[ShardTask], int]:
    """Publish a plan's tasks; returns ``(tasks, newly_enqueued)``.

    Tasks whose results already sit in the queue are not re-enqueued
    (the collector serves them directly), so a crashed driver can
    simply republish its whole plan and only pay for the remainder.
    """
    enqueued = 0
    tasks = plan_tasks(plan)
    for task in tasks:
        if queue.publish(task.task_id, task):
            enqueued += 1
    return tasks, enqueued
