"""The ``distributed`` execution backend: queue-fed multi-host sweeps.

``DistributedBackend`` publishes an execution plan's shards to a
shared-directory :class:`~repro.runner.distributed.queue.WorkQueue`,
waits for workers to drain it, and feeds the collected results back
through the runner exactly like any other backend.  Who the workers
are is the deployment's choice:

* ``workers=N`` (CLI ``--workers N``) self-spawns ``N`` local worker
  subprocesses — zero-setup multi-process distribution on one machine;
* ``workers=N, pool=True`` (CLI ``--pool``) keeps that fleet **warm**:
  the subprocesses spawn once and serve every subsequent ``execute()``
  call (a Workbench regenerating several figures, repeated sweeps in
  one session) instead of paying interpreter+import startup per sweep
  — the cost that made small multi-worker sweeps *slower* than one
  worker.  ``close()`` (via ``ExecutionContext.close()``) retires the
  fleet;
* ``workers=0`` publishes and waits for *external* workers: processes
  started by hand, by a cluster scheduler, or on other hosts sharing
  the queue directory (``python -m repro.experiments worker --queue
  DIR`` on each).

Self-spawned workers are babysat from the collector's poll hook: a
worker that dies while shards remain is respawned (within a bounded,
per-round budget), and if no subprocess can run at all the driver
degrades to draining the queue in-process — the same "the runner still
works, just without the speedup" guarantee the pool backends give.
Teardown is graceful: the driver publishes a shutdown sentinel, idle
workers exit on their own within the poll cap, and only stragglers are
terminated.  Results are bit-identical to ``serial`` for any worker
count, pool lifetime, claim batch size, crash schedule or claim
interleaving, because every unit's seed derives from its spec digest
alone.
"""

from __future__ import annotations

from pathlib import Path

from ..backends import BackendRun, FinishFn
from ..plan import ExecutionPlan
from .broker import publish_plan
from .collector import Collector
from .lease import DEFAULT_LEASE_TTL_S
from .pool import WorkerPool, _worker_command, _worker_env  # noqa: F401
# (_worker_command/_worker_env are re-exported: they lived here before
# the pool split and external code imports them from this module)
from .queue import DEFAULT_MAX_ATTEMPTS, WorkQueue
from .worker import Worker

#: Sharding fan-out assumed for external fleets (``workers=0``): the
#: driver cannot know how many hosts will drain the queue, and one
#: giant shard would serialize them all.  ``jobs`` raises it further.
EXTERNAL_SHARD_FANOUT = 8


class DistributedBackend:
    """Execute plans through a shared-directory work queue."""

    name = "distributed"

    def __init__(self, queue_dir: str | Path, workers: int = 0,
                 lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 poll_s: float = 0.05,
                 timeout_s: float | None = None,
                 pool: bool = False,
                 claim_batch: int = 1) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if pool and workers < 1:
            raise ValueError("pool=True needs self-spawned workers "
                             "(workers >= 1); external fleets manage "
                             "their own lifecycle")
        if claim_batch < 1:
            raise ValueError("claim_batch must be >= 1")
        self.queue_dir = Path(queue_dir)
        self.workers = workers
        self.lease_ttl_s = lease_ttl_s
        self.max_attempts = max_attempts
        self.poll_s = poll_s
        self.timeout_s = timeout_s
        self.pool = pool
        self.claim_batch = claim_batch
        #: the warm fleet, kept across execute() calls when pool=True
        self._pool: WorkerPool | None = None

    # ------------------------------------------------------------------
    def _fleet(self) -> WorkerPool:
        """The fleet for this round: warm (reused) or one-shot."""
        if self.pool:
            if self._pool is None or self._pool.closed:
                self._pool = WorkerPool(
                    self.queue_dir, self.workers,
                    lease_ttl_s=self.lease_ttl_s, poll_s=self.poll_s,
                    max_attempts=self.max_attempts,
                    claim_batch=self.claim_batch)
            return self._pool
        return WorkerPool(
            self.queue_dir, self.workers,
            lease_ttl_s=self.lease_ttl_s, poll_s=self.poll_s,
            max_attempts=self.max_attempts,
            claim_batch=self.claim_batch,
            max_idle_s=max(WorkerPool.ONESHOT_MAX_IDLE_S,
                           5.0 * self.lease_ttl_s))

    def close(self) -> None:
        """Retire the warm fleet (no-op without ``pool=True``)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # ------------------------------------------------------------------
    def execute(self, plan: ExecutionPlan, jobs: int,
                finish: FinishFn) -> BackendRun:
        queue = WorkQueue(self.queue_dir,
                          lease_ttl_s=self.lease_ttl_s).ensure()
        # A sentinel left by an earlier round's teardown must not
        # retire workers spawned for this one.
        queue.clear_shutdown()
        # Shard so every worker stays busy; a lone worker still
        # batches.  With an external fleet (workers=0) the count is
        # unknowable, so shard for a reasonable one.
        fanout = (max(self.workers, jobs) if self.workers
                  else max(EXTERNAL_SHARD_FANOUT, jobs))
        plan.group_batches(jobs=fanout)
        run = BackendRun(groups=len(plan.groups),
                         batched_units=plan.batched_units)
        tasks, enqueued = publish_plan(queue, plan)
        if not tasks:
            return run
        fallback = Worker(queue, max_attempts=self.max_attempts,
                          claim_batch=self.claim_batch)
        fleet: WorkerPool | None = None
        peak_alive = 0
        if self.workers and enqueued:
            # A plan served wholly from pre-existing results/ needs no
            # fleet at all — don't pay N interpreter startups for it.
            fleet = self._fleet()
            fleet.reset_budget()
            peak_alive = fleet.ensure()

        def tend(outstanding: set) -> None:
            """Collector poll hook: babysit the self-spawned fleet."""
            nonlocal peak_alive
            if fleet is None:
                return              # external workers own the queue,
                #                     or everything is already on disk
            alive = fleet.ensure()
            peak_alive = max(peak_alive, alive)
            if not alive:
                # No subprocess can run (restricted host, or the
                # respawn budget is spent): drain in-process so the
                # sweep still completes, identically.
                fallback.run_once()

        try:
            Collector(queue, [t.task_id for t in tasks],
                      max_attempts=self.max_attempts,
                      poll_s=self.poll_s,
                      timeout_s=self.timeout_s).collect(
                finish, on_poll=tend)
        finally:
            if fleet is not None and not self.pool:
                # One-shot fleet: sentinel-retire it now.  A warm pool
                # stays up for the next round (close() ends it).
                fleet.close()
                queue.clear_shutdown()
        # Honest accounting: a plan served wholly from pre-existing
        # results/ (enqueued == 0) never left this process.
        run.parallel = peak_alive > 0 or (self.workers == 0
                                          and enqueued > 0)
        run.workers = self.workers if peak_alive > 0 else 0
        return run
