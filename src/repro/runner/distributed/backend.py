"""The ``distributed`` execution backend: queue-fed multi-host sweeps.

``DistributedBackend`` publishes an execution plan's shards to a
shared-directory :class:`~repro.runner.distributed.queue.WorkQueue`,
waits for workers to drain it, and feeds the collected results back
through the runner exactly like any other backend.  Who the workers
are is the deployment's choice:

* ``workers=N`` (CLI ``--workers N``) self-spawns ``N`` local worker
  subprocesses — zero-setup multi-process distribution on one machine;
* ``workers=0`` publishes and waits for *external* workers: processes
  started by hand, by a cluster scheduler, or on other hosts sharing
  the queue directory (``python -m repro.experiments worker --queue
  DIR`` on each).

Self-spawned workers are babysat from the collector's poll hook: a
worker that dies while shards remain is respawned (within a bounded
budget), and if no subprocess can run at all the driver degrades to
draining the queue in-process — the same "the runner still works,
just without the speedup" guarantee the pool backends give.  The
fleet lives for one ``execute()`` call (clean teardown, no orphan
processes); drivers amortize the spawn cost by submitting wide — the
Workbench batches whole figures into one submission — or by running
``workers=0`` against long-lived external workers.  Results
are bit-identical to ``serial`` for any worker count, crash schedule
or claim interleaving, because every unit's seed derives from its spec
digest alone.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from ..backends import BackendRun, FinishFn
from ..plan import ExecutionPlan
from .broker import publish_plan
from .collector import Collector
from .lease import DEFAULT_LEASE_TTL_S
from .queue import DEFAULT_MAX_ATTEMPTS, WorkQueue
from .worker import Worker

#: Sharding fan-out assumed for external fleets (``workers=0``): the
#: driver cannot know how many hosts will drain the queue, and one
#: giant shard would serialize them all.  ``jobs`` raises it further.
EXTERNAL_SHARD_FANOUT = 8


def _worker_command(queue_root: Path, lease_ttl_s: float,
                    poll_s: float, max_attempts: int) -> list[str]:
    # --max-idle bounds the orphan lifetime if the driver dies so hard
    # (SIGKILL, OOM) that its terminate-in-finally never runs; the
    # bound is generous enough that workers never self-exit between a
    # live driver's submissions.
    max_idle_s = max(60.0, 5.0 * lease_ttl_s)
    return [sys.executable, "-m", "repro.experiments", "worker",
            "--queue", str(queue_root),
            "--lease-ttl", repr(lease_ttl_s),
            "--poll", repr(poll_s),
            "--max-attempts", str(max_attempts),
            "--max-idle", repr(max_idle_s)]


def _worker_env() -> dict[str, str]:
    """The subprocess environment, with ``repro`` importable."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    paths = env.get("PYTHONPATH", "")
    if src_root not in paths.split(os.pathsep):
        env["PYTHONPATH"] = (src_root + os.pathsep + paths if paths
                             else src_root)
    return env


class DistributedBackend:
    """Execute plans through a shared-directory work queue."""

    name = "distributed"

    def __init__(self, queue_dir: str | Path, workers: int = 0,
                 lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 poll_s: float = 0.05,
                 timeout_s: float | None = None) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.queue_dir = Path(queue_dir)
        self.workers = workers
        self.lease_ttl_s = lease_ttl_s
        self.max_attempts = max_attempts
        self.poll_s = poll_s
        self.timeout_s = timeout_s
        #: total subprocess (re)spawns allowed per execute() call
        self.spawn_budget = max(2 * workers, 4) if workers else 0

    # ------------------------------------------------------------------
    def execute(self, plan: ExecutionPlan, jobs: int,
                finish: FinishFn) -> BackendRun:
        queue = WorkQueue(self.queue_dir,
                          lease_ttl_s=self.lease_ttl_s).ensure()
        # Shard so every worker stays busy; a lone worker still
        # batches.  With an external fleet (workers=0) the count is
        # unknowable, so shard for a reasonable one.
        fanout = (max(self.workers, jobs) if self.workers
                  else max(EXTERNAL_SHARD_FANOUT, jobs))
        plan.group_batches(jobs=fanout)
        run = BackendRun(groups=len(plan.groups),
                         batched_units=plan.batched_units)
        tasks, enqueued = publish_plan(queue, plan)
        if not tasks:
            return run
        procs: list[subprocess.Popen] = []
        spawns_left = self.spawn_budget
        fallback = Worker(queue, max_attempts=self.max_attempts)

        def spawn() -> bool:
            nonlocal spawns_left
            if spawns_left <= 0:
                return False
            # A failed attempt also consumes budget: a host that truly
            # cannot spawn exhausts it within a few polls and drops to
            # the in-process fallback, while a transient fork error
            # just retries on the next poll.
            spawns_left -= 1
            log_path = (self.queue_dir / "logs" /
                        f"worker-{self.spawn_budget - spawns_left - 1}"
                        f".log")
            try:
                with open(log_path, "ab") as log:
                    procs.append(subprocess.Popen(
                        _worker_command(self.queue_dir,
                                        self.lease_ttl_s, self.poll_s,
                                        self.max_attempts),
                        env=_worker_env(), stdout=log, stderr=log))
            except OSError:
                return False
            return True

        def tend(outstanding: set) -> None:
            """Collector poll hook: babysit the self-spawned fleet."""
            if not self.workers or not enqueued:
                return              # external workers own the queue,
                #                     or everything is already on disk
            procs[:] = [p for p in procs if p.poll() is None]
            while len(procs) < self.workers and spawn():
                pass
            if not procs:
                # No subprocess can run (restricted host, or the
                # respawn budget is spent): drain in-process so the
                # sweep still completes, identically.
                fallback.run_once()

        if enqueued:
            # A plan served wholly from pre-existing results/ needs no
            # fleet at all — don't pay N interpreter startups for it.
            for _ in range(self.workers):
                spawn()
        try:
            Collector(queue, [t.task_id for t in tasks],
                      max_attempts=self.max_attempts,
                      poll_s=self.poll_s,
                      timeout_s=self.timeout_s).collect(
                finish, on_poll=tend)
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
        # Honest accounting: a plan served wholly from pre-existing
        # results/ (enqueued == 0) never left this process.
        run.parallel = bool(procs) or (self.workers == 0
                                       and enqueued > 0)
        run.workers = self.workers if procs else 0
        return run
