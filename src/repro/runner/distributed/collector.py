"""The driver-side collector: block until a published plan completes.

The collector owns the fault-tolerance half of the queue protocol.  On
every poll it

1. serves any newly written result files through the runner's
   ``finish`` callback (results arrive in whatever order workers
   produce them; the runner's plan maps each back to its submission
   slots by digest);
2. re-enqueues claimed tasks whose lease expired — a dead worker's
   shards go back to ``todo/`` with their attempt count incremented —
   and, on the same cadence, reclaims ``tmp/`` staging files orphaned
   by workers that crashed mid-atomic-write;
3. surfaces tasks whose retry budget is exhausted as a
   :class:`FailedUnitError` carrying the full error history, rather
   than letting the sweep hang on work that can never finish.

An ``on_poll`` hook runs once per iteration; the distributed backend
uses it to babysit self-spawned workers (respawn dead ones, fall back
to in-process execution when no worker can run).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

from ..backends import FinishFn
from .queue import DEFAULT_MAX_ATTEMPTS, QueueError, WorkQueue


class FailedUnitError(QueueError):
    """Tasks exhausted their retry budget; the sweep cannot complete."""

    def __init__(self, failures: dict[str, dict]) -> None:
        self.failures = failures
        lines = []
        for task_id, ticket in sorted(failures.items()):
            errors = ticket.get("errors") or ["no error recorded"]
            lines.append(f"  {task_id} ({ticket.get('attempts', '?')} "
                         f"attempts): {errors[-1]}")
        super().__init__(
            "distributed execution failed for "
            f"{len(failures)} task(s):\n" + "\n".join(lines))


class CollectTimeout(QueueError):
    """The plan did not complete within the collector's deadline."""


@dataclass(frozen=True)
class CollectStats:
    """Bookkeeping of one collection."""

    tasks: int
    requeues: int
    polls: int


#: Per-iteration hook; receives the task ids still outstanding.
PollHook = Callable[[set], None]


class Collector:
    """Waits on one published plan's tasks in one queue."""

    def __init__(self, queue: WorkQueue, task_ids: Iterable[str],
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 poll_s: float = 0.05,
                 timeout_s: float | None = None) -> None:
        self.queue = queue
        self.task_ids = tuple(task_ids)
        self.max_attempts = max_attempts
        self.poll_s = poll_s
        self.timeout_s = timeout_s

    def collect(self, finish: FinishFn,
                on_poll: PollHook | None = None) -> CollectStats:
        """Serve every task's results through ``finish``; block until
        the plan is complete.  Raises :class:`FailedUnitError` when a
        task exhausts its retries, :class:`CollectTimeout` past the
        deadline."""
        outstanding = set(self.task_ids)
        deadline = (None if self.timeout_s is None
                    else time.time() + self.timeout_s)
        # The per-poll cost is one results/ listing (plus one failed/
        # listing); the claimed-directory expiry sweep only needs to
        # run a few times per lease TTL, which matters on the network
        # filesystems multi-host queues live on.
        sweep_interval = max(self.poll_s,
                             self.queue.lease_ttl_s / 4.0)
        last_sweep = 0.0
        requeues = polls = 0
        while outstanding:
            for task_id in sorted(self.queue.result_ids()
                                  & outstanding):
                for result in self.queue.load_results(task_id):
                    finish(result)
                outstanding.discard(task_id)
            if not outstanding:
                break
            failures = self.queue.failed_tickets(outstanding)
            if failures:
                raise FailedUnitError(failures)
            now = time.time()
            if now - last_sweep >= sweep_interval:
                last_sweep = now
                report = self.queue.requeue_expired(self.max_attempts)
                requeues += len(report.requeued)
                # Same cadence: reclaim staging files orphaned by
                # workers that crashed mid-atomic-write (they would
                # otherwise accumulate in tmp/ forever).
                self.queue.sweep_stale_tmp(now)
            if on_poll is not None:
                on_poll(outstanding)
            if deadline is not None and time.time() > deadline:
                raise CollectTimeout(
                    f"{len(outstanding)} task(s) still outstanding "
                    f"after {self.timeout_s:.1f}s: "
                    f"{', '.join(sorted(outstanding))}")
            polls += 1
            time.sleep(self.poll_s)
        return CollectStats(tasks=len(self.task_ids),
                            requeues=requeues, polls=polls)
