"""The driver-side collector: block until a published plan completes.

The collector owns the fault-tolerance half of the queue protocol.  On
every poll it

1. serves any newly written result files through the runner's
   ``finish`` callback (results arrive in whatever order workers
   produce them; the runner's plan maps each back to its submission
   slots by digest);
2. re-enqueues claimed tasks whose lease expired — a dead worker's
   shards go back to ``todo/`` with their attempt count incremented —
   and, on the same cadence, reclaims ``tmp/`` staging files orphaned
   by workers that crashed mid-atomic-write;
3. surfaces tasks whose retry budget is exhausted as a
   :class:`FailedUnitError` carrying the full error history, rather
   than letting the sweep hang on work that can never finish.

An ``on_poll`` hook runs once per iteration; the distributed backend
uses it to babysit self-spawned workers (respawn dead ones, fall back
to in-process execution when no worker can run).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

from ..backends import FinishFn
from .queue import (DEFAULT_MAX_ATTEMPTS, QueueError, RequeueReport,
                    WorkQueue)


class FailedUnitError(QueueError):
    """Tasks exhausted their retry budget; the sweep cannot complete."""

    def __init__(self, failures: dict[str, dict]) -> None:
        self.failures = failures
        lines = []
        for task_id, ticket in sorted(failures.items()):
            errors = ticket.get("errors") or ["no error recorded"]
            lines.append(f"  {task_id} ({ticket.get('attempts', '?')} "
                         f"attempts): {errors[-1]}")
        super().__init__(
            "distributed execution failed for "
            f"{len(failures)} task(s):\n" + "\n".join(lines))


class CollectTimeout(QueueError):
    """The plan did not complete within the collector's deadline."""


@dataclass(frozen=True)
class CollectStats:
    """Bookkeeping of one collection."""

    tasks: int
    requeues: int
    polls: int


#: Per-iteration hook; receives the task ids still outstanding.
PollHook = Callable[[set], None]


class QueueTender:
    """Owns the queue's maintenance cadence: expiry + staging sweeps.

    One tender serves any number of concurrently collected plans — the
    expiry sweep walks ``claimed/`` wholesale, so running it once per
    queue (the sweep-service daemon's case) instead of once per
    collector keeps the filesystem cost independent of how many
    submissions are in flight.  ``tick`` is cheap to call every poll;
    the sweep itself only runs every ``interval_s``.
    """

    def __init__(self, queue: WorkQueue,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 interval_s: float | None = None) -> None:
        self.queue = queue
        self.max_attempts = max_attempts
        # A few sweeps per lease TTL is enough to keep worst-case
        # crash-recovery latency a fraction of the TTL, which matters
        # on the network filesystems multi-host queues live on.
        self.interval_s = (queue.lease_ttl_s / 4.0
                           if interval_s is None else interval_s)
        self._last = 0.0

    def tick(self, now: float | None = None) -> RequeueReport | None:
        """Run the sweeps if the cadence is due; ``None`` otherwise."""
        now = time.time() if now is None else now
        if now - self._last < self.interval_s:
            return None
        self._last = now
        report = self.queue.requeue_expired(self.max_attempts, now=now)
        # Same cadence: reclaim staging files orphaned by workers that
        # crashed mid-atomic-write (they would otherwise accumulate in
        # tmp/ forever).
        self.queue.sweep_stale_tmp(now)
        return report


class Collector:
    """Waits on one published plan's tasks in one queue."""

    def __init__(self, queue: WorkQueue, task_ids: Iterable[str],
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 poll_s: float = 0.05,
                 timeout_s: float | None = None) -> None:
        self.queue = queue
        self.task_ids = tuple(task_ids)
        self.max_attempts = max_attempts
        self.poll_s = poll_s
        self.timeout_s = timeout_s

    def collect(self, finish: FinishFn,
                on_poll: PollHook | None = None) -> CollectStats:
        """Serve every task's results through ``finish``; block until
        the plan is complete.  Raises :class:`FailedUnitError` when a
        task exhausts its retries, :class:`CollectTimeout` past the
        deadline."""
        outstanding = set(self.task_ids)
        deadline = (None if self.timeout_s is None
                    else time.time() + self.timeout_s)
        # The per-poll cost is one results/ listing (plus one failed/
        # listing); the tender runs the claimed-directory expiry sweep
        # on its own, coarser cadence.
        tender = QueueTender(
            self.queue, self.max_attempts,
            interval_s=max(self.poll_s, self.queue.lease_ttl_s / 4.0))
        requeues = polls = 0
        while outstanding:
            for task_id in sorted(self.queue.result_ids()
                                  & outstanding):
                for result in self.queue.load_results(task_id):
                    finish(result)
                outstanding.discard(task_id)
            if not outstanding:
                break
            failures = self.queue.failed_tickets(outstanding)
            if failures:
                raise FailedUnitError(failures)
            report = tender.tick()
            if report is not None:
                requeues += len(report.requeued)
            if on_poll is not None:
                on_poll(outstanding)
            now = time.time()
            if deadline is not None and now >= deadline:
                raise CollectTimeout(
                    f"{len(outstanding)} task(s) still outstanding "
                    f"after {self.timeout_s:.1f}s: "
                    f"{', '.join(sorted(outstanding))}")
            polls += 1
            # Clamp the final sleep to the remaining deadline: with a
            # poll interval coarser than the timeout, sleeping a full
            # poll would fire CollectTimeout up to one whole poll_s
            # late (the deadline is only checked between sleeps).
            sleep_s = self.poll_s
            if deadline is not None:
                sleep_s = min(sleep_s, max(deadline - now, 0.0))
            time.sleep(sleep_s)
        return CollectStats(tasks=len(self.task_ids),
                            requeues=requeues, polls=polls)
