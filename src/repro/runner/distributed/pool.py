"""Warm worker pools: local worker subprocesses that outlive a sweep.

The PR-4 backend paid the full interpreter+import spawn cost for every
``execute()`` call — fatal on small sweeps, where spawning N pythons
costs more than the work itself (the measured inverse scaling on the
8x8 sweep).  A :class:`WorkerPool` spawns the fleet **once** and keeps
it alive across any number of published plans: workers idle between
rounds (cheap — idle polling backs off exponentially) and pick the
next plan's shards up within the bounded poll cap.

Lifecycle:

* ``ensure()`` — reap exited workers and respawn up to the target
  count, within a per-round respawn budget (the budget resets each
  round via ``reset_budget()``, so a long-lived pool is not starved by
  crashes in earlier sweeps, while a host that cannot spawn at all
  still exhausts quickly and lets the caller fall back in-process).
* ``close()`` — publish the queue's shutdown sentinel, give workers a
  grace period to exit on their own (they always drain claimable work
  first), then terminate stragglers.  Workers exiting via the sentinel
  finish cleanly: logs flushed, exit code 0.

If the driver dies so hard its ``close()`` never runs (SIGKILL, OOM),
workers self-exit after ``max_idle_s`` without claimable work — the
orphan bound.  It is set generously (pool workers are *meant* to idle
between sweeps) and ``ensure()`` respawns any worker the bound reaped
prematurely.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

from .lease import DEFAULT_LEASE_TTL_S
from .queue import DEFAULT_MAX_ATTEMPTS, WorkQueue


def _worker_command(queue_root: Path, lease_ttl_s: float,
                    poll_s: float, max_attempts: int,
                    max_idle_s: float, claim_batch: int) -> list[str]:
    return [sys.executable, "-m", "repro.experiments", "worker",
            "--queue", str(queue_root),
            "--lease-ttl", repr(lease_ttl_s),
            "--poll", repr(poll_s),
            "--max-attempts", str(max_attempts),
            "--max-idle", repr(max_idle_s),
            "--claim-batch", str(claim_batch)]


def _worker_env() -> dict[str, str]:
    """The subprocess environment, with ``repro`` importable."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    paths = env.get("PYTHONPATH", "")
    if src_root not in paths.split(os.pathsep):
        env["PYTHONPATH"] = (src_root + os.pathsep + paths if paths
                             else src_root)
    return env


class WorkerPool:
    """A persistent fleet of local worker subprocesses on one queue."""

    #: Orphan bound for one-shot (non-pool) self-spawned workers: only
    #: reached if the driver dies so hard its teardown never runs; the
    #: sentinel retires workers promptly on every normal path.
    ONESHOT_MAX_IDLE_S = 60.0

    #: Orphan bound for warm pool workers — generous, because idling
    #: between sweeps is their normal state, and ``ensure()`` respawns
    #: any worker it reaps under a still-live driver.
    POOL_MAX_IDLE_S = 600.0

    def __init__(self, queue_dir: str | Path, workers: int,
                 lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
                 poll_s: float = 0.05,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 claim_batch: int = 1,
                 max_idle_s: float | None = None) -> None:
        if workers < 1:
            raise ValueError("a worker pool needs workers >= 1")
        self.queue_dir = Path(queue_dir)
        self.workers = workers
        self.lease_ttl_s = lease_ttl_s
        self.poll_s = poll_s
        self.max_attempts = max_attempts
        self.claim_batch = claim_batch
        self.max_idle_s = (max(self.POOL_MAX_IDLE_S, 5.0 * lease_ttl_s)
                           if max_idle_s is None else max_idle_s)
        self.procs: list[subprocess.Popen] = []
        self._spawned = 0
        self.spawns_left = 0
        self.reset_budget()
        self.closed = False

    # ------------------------------------------------------------------
    def reset_budget(self) -> None:
        """Refill the respawn budget for a new round of work."""
        self.spawns_left = max(2 * self.workers, 4)

    def alive(self) -> int:
        """Reap exited workers; how many are currently running."""
        self.procs = [p for p in self.procs if p.poll() is None]
        return len(self.procs)

    def _spawn(self) -> bool:
        if self.spawns_left <= 0:
            return False
        # A failed attempt also consumes budget: a host that truly
        # cannot spawn exhausts it within a few polls and drops to the
        # caller's in-process fallback, while a transient fork error
        # just retries on the next poll.
        self.spawns_left -= 1
        log_path = (self.queue_dir / "logs" /
                    f"worker-{self._spawned}.log")
        command = _worker_command(self.queue_dir, self.lease_ttl_s,
                                  self.poll_s, self.max_attempts,
                                  self.max_idle_s, self.claim_batch)
        try:
            with open(log_path, "ab") as log:
                self.procs.append(subprocess.Popen(
                    command, env=_worker_env(), stdout=log, stderr=log))
        except OSError:
            return False
        self._spawned += 1
        return True

    def ensure(self) -> int:
        """Top the fleet back up to the target count; live workers."""
        if self.closed:
            raise RuntimeError("worker pool is closed")
        while self.alive() < self.workers and self._spawn():
            pass
        return self.alive()

    # ------------------------------------------------------------------
    def close(self, grace_s: float = 5.0) -> None:
        """Retire the fleet: sentinel first, termination as backstop.

        Idempotent.  The sentinel is left on disk afterwards — it
        marks the queue as quiesced, and the next driver round clears
        it before publishing (a *stale* sentinel never kills a younger
        fleet: workers ignore sentinels older than their own start).
        """
        if self.closed:
            return
        self.closed = True
        if not self.procs:
            return
        queue = WorkQueue(self.queue_dir,
                          lease_ttl_s=self.lease_ttl_s).ensure()
        queue.request_shutdown()
        deadline = time.monotonic() + grace_s
        for proc in self.procs:
            try:
                proc.wait(timeout=max(0.0,
                                      deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.terminate()
        for proc in self.procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self.procs = []

    def __enter__(self) -> "WorkerPool":
        self.ensure()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
