"""Lease files: who is executing a claimed task, and until when.

A worker that claims a task writes a lease next to the claim ticket
and heartbeat-renews it while the task executes.  The driver-side collector
treats a claimed task whose lease has expired (or whose lease file
never appeared, judged by the claim ticket's age) as abandoned —
typically a worker that died between claiming and completing — and
re-enqueues it.

Expiry compares ``time.time()`` stamps written on one host against the
clock of another, so multi-host deployments need loosely synchronized
clocks (NTP-level skew is harmless against the default TTL).  Because
every unit's result is a pure function of its spec digest, an expired
lease whose worker is merely *slow* is safe: both executions produce
bit-identical results and completion is idempotent.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

#: Default lease time-to-live.  A worker's heartbeat renews every
#: TTL/3 while a task executes, so the TTL only needs to cover a few
#: missed heartbeats — not the task's wall time.
DEFAULT_LEASE_TTL_S = 60.0


@dataclass(frozen=True)
class Lease:
    """One worker's time-bounded hold on one claimed task."""

    task_id: str
    worker_id: str
    expires_at: float

    def expired(self, now: float | None = None) -> bool:
        return (time.time() if now is None else now) > self.expires_at

    @classmethod
    def granted(cls, task_id: str, worker_id: str,
                ttl_s: float = DEFAULT_LEASE_TTL_S,
                now: float | None = None) -> "Lease":
        if ttl_s <= 0:
            raise ValueError("lease TTL must be positive")
        now = time.time() if now is None else now
        return cls(task_id=task_id, worker_id=worker_id,
                   expires_at=now + ttl_s)

    def to_json(self) -> bytes:
        """The on-disk form (written via the queue's atomic writer —
        renewal by concurrent duplicate holders must never share a
        staging path)."""
        return json.dumps(asdict(self)).encode()


def read_lease(path: Path) -> Lease | None:
    """The lease at ``path``, or ``None`` if missing or corrupt.

    A corrupt lease (a worker died mid-write before the rename, or the
    file was truncated by the filesystem) is treated like a missing
    one: the collector falls back to the claim ticket's age.
    """
    try:
        payload = json.loads(path.read_text())
        return Lease(task_id=str(payload["task_id"]),
                     worker_id=str(payload["worker_id"]),
                     expires_at=float(payload["expires_at"]))
    except (OSError, ValueError, KeyError, TypeError):
        return None
