"""Parallel sweep runner: deterministic, planned, multi-backend.

Every evaluation figure of the paper is a sweep whose points are
independent simulations.  This package turns each point into a
:class:`WorkUnit`, derives a per-unit random seed from the run seed
and the unit's spec hash (:mod:`repro.runner.seeding`), caches results
by that hash (:class:`UnitCache`), plans what must actually run
(:class:`ExecutionPlan`: cache hits, batch groups, shards) and
executes the plan on an interchangeable :class:`Backend` (serial,
process pool, or batched through
:func:`repro.noc.fastsim.run_fixed_batch`) — with the guarantee that
the execution mode can never change a result.  An
:class:`ExecutionContext` carries the whole configuration (backend,
jobs, cache, engine, progress) from the CLI or benchmark harness down
to the runner in one object.
"""

from .backends import (BACKENDS, Backend, BackendRun, BatchedBackend,
                       ProcessPoolBackend, SerialBackend, backend_names,
                       make_backend)
from .cache import CacheStats, UnitCache
from .context import ExecutionContext, context_from_env
from .executor import (RunReport, RunTotals, SweepRunner, default_jobs,
                       print_progress)
from .plan import (BatchGroup, ExecutionPlan, MAX_SHARD_POINTS,
                   batch_eligible)
from .seeding import derive_unit_seed, unit_generator, unit_seed_sequence
from .units import FrequencyStrategy, UnitResult, WorkUnit, strategy_key

__all__ = [
    "BACKENDS",
    "Backend",
    "BackendRun",
    "BatchGroup",
    "BatchedBackend",
    "CacheStats",
    "ExecutionContext",
    "ExecutionPlan",
    "FrequencyStrategy",
    "MAX_SHARD_POINTS",
    "ProcessPoolBackend",
    "RunReport",
    "RunTotals",
    "SerialBackend",
    "SweepRunner",
    "UnitCache",
    "UnitResult",
    "WorkUnit",
    "backend_names",
    "batch_eligible",
    "context_from_env",
    "default_jobs",
    "derive_unit_seed",
    "make_backend",
    "print_progress",
    "strategy_key",
    "unit_generator",
    "unit_seed_sequence",
]
