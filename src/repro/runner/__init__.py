"""Parallel sweep runner: deterministic, planned, multi-backend.

Every evaluation figure of the paper is a sweep whose points are
independent simulations.  This package turns each point into a
:class:`WorkUnit`, derives a per-unit random seed from the run seed
and the unit's spec hash (:mod:`repro.runner.seeding`), caches results
by that hash (:class:`UnitCache`), plans what must actually run
(:class:`ExecutionPlan`: cache hits, batch groups, shards) and
executes the plan on an interchangeable :class:`Backend` (serial,
process pool, batched through
:func:`repro.noc.fastsim.run_fixed_batch`, or distributed across
processes and hosts via a shared-directory work queue —
:mod:`repro.runner.distributed`) — with the guarantee that the
execution mode can never change a result.  An
:class:`ExecutionContext` carries the whole configuration (backend,
jobs, cache, engine, progress) from the CLI or benchmark harness down
to the runner in one object.
"""

from .backends import (BACKENDS, Backend, BackendRun, BatchedBackend,
                       ProcessPoolBackend, SerialBackend, backend_names,
                       make_backend)
from .cache import CacheStats, UnitCache
from .context import ExecutionContext, context_from_env
from .executor import (RunReport, RunTotals, SweepRunner, default_jobs,
                       print_progress)
from .plan import (BatchGroup, ExecutionPlan, MAX_SHARD_POINTS,
                   MIN_SHARD_POINTS, batch_eligible)
from .seeding import derive_unit_seed, unit_generator, unit_seed_sequence
from .units import FrequencyStrategy, UnitResult, WorkUnit, strategy_key

#: Distributed-execution names re-exported lazily (PEP 562): a
#: serial-only import of ``repro.runner`` never loads the queue
#: machinery, matching the registry's lazy ``module:class`` spec for
#: ``backend="distributed"``.
_DISTRIBUTED_EXPORTS = frozenset({
    "CollectTimeout", "Collector", "DistributedBackend",
    "FailedUnitError", "QueueError", "Worker", "WorkerPool",
    "WorkQueue",
})


def __getattr__(name: str):
    if name in _DISTRIBUTED_EXPORTS:
        from . import distributed
        return getattr(distributed, name)
    raise AttributeError(f"module {__name__!r} has no attribute "
                         f"{name!r}")

__all__ = [
    "BACKENDS",
    "Backend",
    "BackendRun",
    "BatchGroup",
    "BatchedBackend",
    "CacheStats",
    "CollectTimeout",
    "Collector",
    "DistributedBackend",
    "ExecutionContext",
    "ExecutionPlan",
    "FailedUnitError",
    "FrequencyStrategy",
    "MAX_SHARD_POINTS",
    "MIN_SHARD_POINTS",
    "ProcessPoolBackend",
    "QueueError",
    "RunReport",
    "RunTotals",
    "SerialBackend",
    "SweepRunner",
    "UnitCache",
    "UnitResult",
    "WorkQueue",
    "WorkUnit",
    "Worker",
    "WorkerPool",
    "backend_names",
    "batch_eligible",
    "context_from_env",
    "default_jobs",
    "derive_unit_seed",
    "make_backend",
    "print_progress",
    "strategy_key",
    "unit_generator",
    "unit_seed_sequence",
]
