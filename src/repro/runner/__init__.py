"""Parallel sweep runner: deterministic, cached work-unit execution.

Every evaluation figure of the paper is a sweep whose points are
independent simulations.  This package turns each point into a
:class:`WorkUnit`, derives a per-unit random seed from the run seed
and the unit's spec hash (:mod:`repro.runner.seeding`), caches results
by that hash (:class:`UnitCache`), and executes units serially or on a
process pool (:class:`SweepRunner`) — with the guarantee that the
execution mode can never change a result.
"""

from .cache import CacheStats, UnitCache
from .executor import (RunReport, RunTotals, SweepRunner, default_jobs,
                       print_progress)
from .seeding import derive_unit_seed, unit_generator, unit_seed_sequence
from .units import FrequencyStrategy, UnitResult, WorkUnit, strategy_key

__all__ = [
    "CacheStats",
    "FrequencyStrategy",
    "RunReport",
    "RunTotals",
    "SweepRunner",
    "UnitCache",
    "UnitResult",
    "WorkUnit",
    "default_jobs",
    "derive_unit_seed",
    "print_progress",
    "strategy_key",
    "unit_generator",
    "unit_seed_sequence",
]
