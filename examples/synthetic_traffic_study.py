#!/usr/bin/env python3
"""Synthetic-traffic study: delay/power curves per pattern (Fig. 7).

Sweeps the injection rate under two synthetic patterns (pick any of
uniform / tornado / bitcomp / transpose / neighbor on the command
line) and prints the delay and power series of the three policies,
i.e. a reduced text version of the paper's Fig. 7.

Usage::

    python examples/synthetic_traffic_study.py [pattern ...]
"""

import sys

from repro.experiments import (Workbench, figure7, render_figures)
from repro.experiments.common import Profile
from repro.analysis.sweep import SimBudget

#: Reduced effort so the example finishes in a couple of minutes.
EXAMPLE_PROFILE = Profile("example", SimBudget(800, 1800, 5000),
                          sweep_points=4, dmsd_iterations=4,
                          saturation_iterations=4)

DEFAULT_PATTERNS = ("tornado", "neighbor")


def main(patterns: tuple[str, ...]) -> None:
    bench = Workbench(profile=EXAMPLE_PROFILE, seed=7)
    print(f"Regenerating Fig. 7 panels for: {', '.join(patterns)}")
    print("(reduced sweep; run the benchmark suite for full figures)")
    print()
    figures = figure7(bench, patterns=patterns)
    print(render_figures(figures))
    print()
    for fig in figures:
        if "rmsd_over_dmsd_at_ref" in fig.annotations:
            print(f"{fig.figure_id}: RMSD/DMSD delay at 0.2 = "
                  f"{fig.annotations['rmsd_over_dmsd_at_ref']:.2f}x "
                  "(paper: 2-2.5x)")
        if "dmsd_over_rmsd_at_ref" in fig.annotations:
            print(f"{fig.figure_id}: DMSD/RMSD power at 0.2 = "
                  f"{fig.annotations['dmsd_over_rmsd_at_ref']:.2f}x "
                  "(paper: 1.2-1.4x)")


if __name__ == "__main__":
    args = tuple(sys.argv[1:]) or DEFAULT_PATTERNS
    main(args)
