#!/usr/bin/env python3
"""Beyond the mean: tail latency and spatial power under DVFS.

The paper argues RMSD "would be an inefficient choice" for
delay-sensitive request-reply traffic — and request-reply cares about
*tail* latency, which the paper's mean-delay plots understate.  This
example compares the full delay distribution (p50/p95/p99) of RMSD and
DMSD at the same operating point, then prints the per-router power map
showing where the energy actually goes.

Usage::

    python examples/tail_latency_and_hotspots.py
"""

from repro import NocConfig, PowerModel
from repro.analysis import (FAST, delay_distribution, packet_records,
                            per_flow_mean_delay, run_fixed_point)
from repro.analysis.sweep import DmsdSteadyState, RmsdSteadyState
from repro.noc import Simulation
from repro.power import power_heatmap
from repro.traffic import PatternTraffic, make_pattern

CONFIG = NocConfig(width=4, height=4, num_vcs=4, vc_buf_depth=4,
                   packet_length=8)
RATE = 0.15
LAMBDA_MAX = 0.5


def run_at(freq_hz: float, label: str):
    traffic = PatternTraffic(make_pattern("uniform", CONFIG.make_mesh()),
                             RATE)
    sim = Simulation(CONFIG, traffic, controller=freq_hz, seed=11)
    result = sim.run(FAST.warmup_cycles, FAST.measure_cycles,
                     FAST.drain_cycles)
    records = packet_records(sim.network)
    dist = delay_distribution(records)
    print(f"{label:22s} F={freq_hz / 1e9:.3f} GHz   {dist.render()}")
    return sim, result, records, dist


def main() -> None:
    traffic = PatternTraffic(make_pattern("uniform", CONFIG.make_mesh()),
                             RATE)
    target_ns = 2.5 * CONFIG.zero_load_latency_cycles()
    f_rmsd = RmsdSteadyState(LAMBDA_MAX).frequency_for(
        CONFIG, traffic, FAST, seed=11)
    f_dmsd = DmsdSteadyState(target_ns, iterations=5).frequency_for(
        CONFIG, traffic, FAST, seed=11)

    print(f"4x4 mesh, uniform {RATE} fl/cy; DMSD target "
          f"{target_ns:.0f} ns, RMSD lambda_max {LAMBDA_MAX}")
    print()
    __, __, __, d_rmsd = run_at(f_rmsd, "RMSD operating point")
    sim, result, records, d_dmsd = run_at(f_dmsd, "DMSD operating point")
    print()
    print(f"p99 ratio RMSD/DMSD: {d_rmsd.p99_ns / d_dmsd.p99_ns:.2f}x "
          f"(mean ratio {d_rmsd.mean_ns / d_dmsd.mean_ns:.2f}x)")
    print("-> the tail penalty of rate-based control is at least as "
          "large as the mean penalty the paper reports.")

    print()
    slowest = max(per_flow_mean_delay(records).items(),
                  key=lambda kv: kv[1])
    print(f"slowest flow under DMSD: {slowest[0][0]} -> {slowest[0][1]} "
          f"at {slowest[1]:.0f} ns mean")

    print()
    model = PowerModel(CONFIG)
    per_router = model.router_power_map(
        sim.network.router_activity_map(), freq_hz=f_dmsd,
        duration_ns=result.measure_duration_ns)
    print(power_heatmap(per_router, CONFIG.width, CONFIG.height))
    print("(centre routers run hottest under uniform traffic — the "
          "spatial view the paper's per-router power estimation "
          "enables)")


if __name__ == "__main__":
    main()
