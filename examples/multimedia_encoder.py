#!/usr/bin/env python3
"""Multimedia workloads: the H.264 and VCE encoders of paper Fig. 9/10.

Builds the application task graphs, derives their NoC traffic matrices
at a chosen frame rate, and compares the three DVFS policies — the
realistic-scenario argument of paper Sec. VI.

Usage::

    python examples/multimedia_encoder.py [h264|vce] [speed]

``speed`` is the paper's normalized app speed in (0, 1]; 1.0 is the
75-frames/second reference point.
"""

import sys

from repro import PAPER_BASELINE, PowerModel
from repro.analysis import (DmsdSteadyState, FAST, NoDvfsSteadyState,
                            RmsdSteadyState, run_fixed_point)
from repro.traffic import MatrixTraffic, h264_encoder, vce_encoder

APPS = {"h264": h264_encoder, "vce": vce_encoder}


def main(app_name: str, speed: float) -> None:
    app = APPS[app_name]()
    config = PAPER_BASELINE.with_(width=app.mesh_width,
                                  height=app.mesh_height)
    fps = speed * app.speed1_frames_per_second(config)

    print(f"Application : {app.name} "
          f"({app.mesh_width}x{app.mesh_height} mesh, "
          f"{len(app.edges)} edges, "
          f"{app.total_packets_per_frame():.0f} packets/frame)")
    print(f"App speed   : {speed:.2f} (~{fps:.1f} frames/s equivalent)")

    matrix = app.traffic_at_speed(config, speed)
    traffic = MatrixTraffic(matrix)
    print(f"Traffic     : mean node rate "
          f"{matrix.mean_node_rate():.3f} fl/cy, "
          f"peak node rate {matrix.max_node_rate():.3f} fl/cy")
    print()

    hottest = max(app.edges, key=lambda e: e.packets_per_frame)
    print(f"Hottest edge: {hottest.src} -> {hottest.dst} "
          f"({hottest.packets_per_frame:.0f} packets/frame)")
    print()

    # Policy parameters like the paper derives them: lambda_max from
    # the app's own saturation region, DMSD target from RMSD at top.
    lam_max = min(0.9 * 3 * matrix.mean_node_rate(), 0.45)
    top = run_fixed_point(config, traffic, config.f_max_hz, FAST, seed=2)
    target_ns = 2.0 * top.mean_delay_ns

    power_model = PowerModel(config)
    strategies = {
        "No-DVFS": NoDvfsSteadyState(),
        "RMSD": RmsdSteadyState(lambda_max=lam_max),
        "DMSD": DmsdSteadyState(target_delay_ns=target_ns, iterations=5),
    }
    print(f"{'policy':10s} {'F (GHz)':>8} {'delay (ns)':>11} "
          f"{'power (mW)':>11}")
    for name, strategy in strategies.items():
        freq = strategy.frequency_for(config, traffic, FAST, seed=2)
        res = run_fixed_point(config, traffic, freq, FAST, seed=2)
        power = power_model.evaluate(res.power_windows)
        print(f"{name:10s} {freq / 1e9:8.3f} {res.mean_delay_ns:11.1f} "
              f"{power.total_mw:11.1f}")
    print()
    print("Paper Sec. VI: encoder latency budgets make the extra RMSD "
          "delay unacceptable; DMSD holds the delay while still saving "
          "power.")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "h264"
    if name not in APPS:
        raise SystemExit(f"unknown app {name!r}; choose from "
                         f"{sorted(APPS)}")
    speed = float(sys.argv[2]) if len(sys.argv) > 2 else 0.6
    if not 0.0 < speed <= 1.0:
        raise SystemExit("speed must be in (0, 1]")
    main(name, speed)
