#!/usr/bin/env python3
"""Closed-loop transients: watch the DMSD PI controller work.

Two experiments the steady-state figures cannot show:

1. **Cold start** — the controller begins at Fmax (delay far below
   target) and the integrator walks the frequency down until the
   delay tracks the target.
2. **Load step** — mid-run the offered load triples; the controller
   must raise the frequency to defend the delay target.

Prints the frequency/delay trace per control period, i.e. the signals
on the wires of paper Fig. 3.

Usage::

    python examples/dvfs_transient.py
"""

from repro import NocConfig, Simulation
from repro.core import DmsdController
from repro.traffic import (PatternTraffic, PiecewiseRateTraffic,
                           make_pattern)

# A mid-size mesh keeps the long transient run affordable.
CONFIG = NocConfig(width=4, height=4, num_vcs=4, vc_buf_depth=4,
                   packet_length=8)
BASE_RATE = 0.12
STEP_AT_NODE_CYCLE = 18_000
STEP_FACTOR = 3.0
CONTROL_PERIOD = 600  # node cycles


def main() -> None:
    mesh = CONFIG.make_mesh()
    base = PatternTraffic(make_pattern("uniform", mesh), BASE_RATE)
    traffic = PiecewiseRateTraffic(
        base, [(0, 1.0), (STEP_AT_NODE_CYCLE, STEP_FACTOR)])

    target_ns = 2.5 * CONFIG.zero_load_latency_cycles()
    controller = DmsdController(target_delay_ns=target_ns, ki=0.15,
                                kp=0.075)
    sim = Simulation(CONFIG, traffic, controller=controller, seed=3,
                     control_period_node_cycles=CONTROL_PERIOD)
    result = sim.run(warmup_cycles=30_000, measure_cycles=4000)

    print(f"DMSD transient on a 4x4 mesh — target {target_ns:.0f} ns, "
          f"KI={controller.pi.ki}, KP={controller.pi.kp}")
    print(f"load: {BASE_RATE} fl/cy, x{STEP_FACTOR} after node cycle "
          f"{STEP_AT_NODE_CYCLE}")
    print()
    print(f"{'time (us)':>9} {'F (GHz)':>8} {'delay (ns)':>11} "
          f"{'error':>7}")
    for sample in result.samples:
        if sample.mean_delay_ns is None:
            continue
        err = (sample.mean_delay_ns - target_ns) / target_ns
        marker = ""
        if abs(sample.time_ns - STEP_AT_NODE_CYCLE) < CONTROL_PERIOD:
            marker = "  <- load step"
        print(f"{sample.time_ns / 1000:9.1f} "
              f"{sample.freq_hz / 1e9:8.3f} "
              f"{sample.mean_delay_ns:11.1f} {err:+7.2f}{marker}")

    print()
    settled = [s for s in result.samples
               if s.time_ns > STEP_AT_NODE_CYCLE * 1.5
               and s.mean_delay_ns is not None]
    if settled:
        avg = sum(s.mean_delay_ns for s in settled) / len(settled)
        print(f"post-step steady delay: {avg:.0f} ns "
              f"(target {target_ns:.0f} ns)")
    print(f"frequency retunes performed: {len(result.freq_trace) - 1}")


if __name__ == "__main__":
    main()
