"""A scenario plugin: a fourth DVFS policy and a ninth traffic pattern.

Importing this module registers

* ``deadband`` — a delay-banded DVFS controller (transient form plus a
  steady-state sweep strategy), and
* ``diagonal`` — a deterministic one-hop-down-right permutation
  pattern,

into the process-wide registries, which makes them reachable from
every layer that accepts a registry name: ``Simulation``,
``ScenarioSpec``, ``Workbench`` sweeps, the figure drivers and the CLI
(``--register scenario_plugin --policy deadband --pattern diagonal``),
through any execution backend — serial, pool, batched and the
distributed work queue.  Nothing in ``repro`` knows these classes
exist; the registries are the only coupling.

Deployment rule (same as for any user-defined strategy): with
``--backend distributed`` the worker processes unpickle sweep shards,
so this module must be importable (on ``PYTHONPATH``) on every worker
host.

Run standalone for a quick demonstration::

    PYTHONPATH=src:examples python examples/scenario_plugin.py
"""

from repro import NocConfig
from repro.analysis.sweep import (DmsdSteadyState, SteadyStateStrategy,
                                  StrategyResources)
from repro.core import DvfsPolicy
from repro.core.registry import register_policy, register_strategy
from repro.noc.engines import DEFAULT_ENGINE
from repro.noc.stats import MeasurementSample
from repro.traffic import TrafficPattern, register_pattern


@register_policy
class DeadbandPolicy(DvfsPolicy):
    """Step the clock up/down when delay leaves a tolerance band.

    A simpler alternative to the paper's PI loop: no gain tuning, but
    it limit-cycles and leaves up to the band width of delay slack
    unused (see ``examples/custom_policy.py`` for the comparison).
    """

    name = "deadband"

    def __init__(self, target_delay_ns: float, tolerance: float = 0.15,
                 step_hz: float = 50e6) -> None:
        super().__init__()
        if target_delay_ns <= 0:
            raise ValueError("target delay must be positive")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if step_hz <= 0:
            raise ValueError("step must be positive")
        self.target_delay_ns = target_delay_ns
        self.tolerance = tolerance
        self.step_hz = step_hz
        self._freq_hz = 0.0

    def reset(self, config: NocConfig) -> float:
        self._freq_hz = config.f_max_hz
        return super().reset(config)

    def update(self, sample: MeasurementSample) -> float:
        config = self._require_config()
        if sample.mean_delay_ns is not None:
            error = ((sample.mean_delay_ns - self.target_delay_ns)
                     / self.target_delay_ns)
            if error > self.tolerance:
                self._freq_hz += self.step_hz      # too slow: speed up
            elif error < -self.tolerance:
                self._freq_hz -= self.step_hz      # too fast: slow down
        self._freq_hz = min(config.f_max_hz,
                            max(config.f_min_hz, self._freq_hz))
        return self._freq_hz


class DeadbandSteadyState(SteadyStateStrategy):
    """Steady state of the deadband loop.

    Inside the band the controller holds still, so on stationary
    traffic it settles at the lowest frequency whose delay stays
    within the *upper* band edge — the same fixed-point problem DMSD's
    bisection solves, with the target moved to ``target * (1 + tol)``.
    """

    name = "deadband"

    def __init__(self, target_delay_ns: float,
                 tolerance: float = 0.15) -> None:
        if target_delay_ns <= 0:
            raise ValueError("target delay must be positive")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.target_delay_ns = target_delay_ns
        self.tolerance = tolerance
        self._search = DmsdSteadyState(
            target_delay_ns * (1.0 + tolerance))

    def spec_key(self) -> tuple:
        return (self.name, repr(self.target_delay_ns),
                repr(self.tolerance))

    def frequency_for(self, config, traffic, budget, seed,
                      engine: str = DEFAULT_ENGINE) -> float:
        return self._search.frequency_for(config, traffic, budget, seed,
                                          engine=engine)


@register_strategy("deadband")
def _deadband_strategy(resources: StrategyResources | None = None,
                       target_delay_ns: float | None = None,
                       tolerance: float = 0.15,
                       step_hz: float | None = None):
    # step_hz shapes only the transient staircase; the settled band is
    # independent of it, so the sweep strategy accepts and ignores it.
    if target_delay_ns is None:
        if resources is None or resources.target_delay_ns is None:
            raise ValueError(
                "policy 'deadband' needs a target_delay_ns= parameter "
                "(or scenario resources that derive it)")
        target_delay_ns = resources.target_delay_ns()
    return DeadbandSteadyState(target_delay_ns, tolerance=tolerance)


@register_pattern
class DiagonalTraffic(TrafficPattern):
    """Deterministic permutation: one hop down-right with wraparound."""

    name = "diagonal"

    def dest(self, src: int, rng) -> int:
        c = self.mesh.coord(src)
        return self.mesh.node_at((c.x + 1) % self.mesh.width,
                                 (c.y + 1) % self.mesh.height)


def main() -> None:
    from repro import ScenarioSpec, SimBudget, run_scenario_sweep
    from repro.runner import ExecutionContext

    spec = ScenarioSpec.build("deadband:target_delay_ns=40", "diagonal",
                              width=3, height=3, num_vcs=2,
                              vc_buf_depth=2, packet_length=3)
    print(f"scenario {spec.label}  digest {spec.digest()[:12]}")
    context = ExecutionContext(backend="auto", engine="fast")
    series = run_scenario_sweep(spec, [0.05, 0.15, 0.25],
                                budget=SimBudget(200, 500, 1500),
                                seed=11, context=context)
    for point in series.points:
        print(f"  rate {point.x:.2f}  F* {point.freq_hz / 1e9:.3f} GHz  "
              f"delay {point.delay_ns:.1f} ns")


if __name__ == "__main__":
    main()
