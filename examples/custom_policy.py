#!/usr/bin/env python3
"""Extending the library: write your own DVFS policy.

Implements a *deadband* delay controller — a simpler alternative to
the paper's PI loop that nudges the frequency one step whenever the
measured delay leaves a tolerance band around the target — and races
it against DMSD on the same scenario.

This demonstrates the controller plug-in surface: subclass
``DvfsPolicy``, implement ``update(sample) -> frequency``, and hand an
instance to ``Simulation``.  To make a policy addressable *by name* —
from ``ScenarioSpec``, the figure sweeps and the CLI, through any
execution backend — register it; ``examples/scenario_plugin.py`` shows
the registered version of this controller (see README "Scenarios").

Usage::

    python examples/custom_policy.py
"""

from repro import NocConfig, Simulation
from repro.core import DmsdController, DvfsPolicy
from repro.noc.stats import MeasurementSample
from repro.traffic import PatternTraffic, make_pattern


class DeadbandController(DvfsPolicy):
    """Step the clock up/down when delay leaves the tolerance band."""

    name = "deadband"

    def __init__(self, target_delay_ns: float, tolerance: float = 0.15,
                 step_hz: float = 50e6) -> None:
        super().__init__()
        if target_delay_ns <= 0:
            raise ValueError("target delay must be positive")
        self.target_delay_ns = target_delay_ns
        self.tolerance = tolerance
        self.step_hz = step_hz
        self._freq_hz = 0.0

    def reset(self, config: NocConfig) -> float:
        self._freq_hz = config.f_max_hz
        return super().reset(config)

    def update(self, sample: MeasurementSample) -> float:
        config = self._require_config()
        if sample.mean_delay_ns is not None:
            error = ((sample.mean_delay_ns - self.target_delay_ns)
                     / self.target_delay_ns)
            if error > self.tolerance:
                self._freq_hz += self.step_hz      # too slow: speed up
            elif error < -self.tolerance:
                self._freq_hz -= self.step_hz      # too fast: slow down
        self._freq_hz = min(config.f_max_hz,
                            max(config.f_min_hz, self._freq_hz))
        return self._freq_hz


def race(config: NocConfig, controller, label: str,
         rate: float, target_ns: float) -> None:
    traffic = PatternTraffic(make_pattern("uniform", config.make_mesh()),
                             rate)
    sim = Simulation(config, traffic, controller=controller, seed=9,
                     control_period_node_cycles=500)
    res = sim.run(warmup_cycles=20_000, measure_cycles=4000)
    err = abs(res.mean_delay_ns - target_ns) / target_ns
    print(f"{label:10s} delay {res.mean_delay_ns:7.1f} ns "
          f"(err {err * 100:5.1f}%)   mean F "
          f"{res.mean_freq_hz / 1e9:.3f} GHz   retunes "
          f"{len(res.freq_trace) - 1}")


def main() -> None:
    config = NocConfig(width=4, height=4, num_vcs=4, vc_buf_depth=4,
                       packet_length=8)
    target_ns = 2.5 * config.zero_load_latency_cycles()
    rate = 0.15
    print(f"4x4 mesh, uniform {rate} fl/cy, target delay "
          f"{target_ns:.0f} ns")
    print()
    race(config, DmsdController(target_ns, ki=0.15, kp=0.075),
         "DMSD (PI)", rate, target_ns)
    race(config, DeadbandController(target_ns), "deadband", rate,
         target_ns)
    print()
    print("Both hold the target on stationary traffic. The deadband "
          "controller holds still inside its tolerance band (fewer "
          "retunes) but can limit-cycle and leaves up to the band "
          "width of delay slack unused; the PI loop trims "
          "continuously and comes with a stability guarantee, which "
          "is why the paper uses it.")


if __name__ == "__main__":
    main()
