#!/usr/bin/env python3
"""Quickstart: simulate the paper's baseline NoC under all three
DVFS policies at one operating point and print the trade-off.

Runs the 5x5 virtual-channel mesh of Casu & Giaccone (DATE 2015) at
0.2 flits/node/cycle of uniform traffic — the rate at which the paper
quotes its headline numbers — under No-DVFS, RMSD and DMSD, and prints
delay, frequency and the power breakdown for each.

Usage::

    python examples/quickstart.py
"""

from repro import PAPER_BASELINE, PatternTraffic, PowerModel, make_pattern
from repro.analysis import (DmsdSteadyState, FAST, NoDvfsSteadyState,
                            RmsdSteadyState, run_fixed_point)
from repro.power import breakdown_table

RATE = 0.2          # flits per node clock cycle, per node
LAMBDA_MAX = 0.42   # ~10% below the baseline saturation rate
TARGET_NS = 150.0   # the paper's DMSD target delay


def main() -> None:
    config = PAPER_BASELINE
    mesh = config.make_mesh()
    traffic = PatternTraffic(make_pattern("uniform", mesh), RATE)
    power_model = PowerModel(config)

    strategies = {
        "No-DVFS": NoDvfsSteadyState(),
        "RMSD": RmsdSteadyState(lambda_max=LAMBDA_MAX),
        "DMSD": DmsdSteadyState(target_delay_ns=TARGET_NS, iterations=5),
    }

    print(f"5x5 mesh, uniform traffic at {RATE} flits/node/cycle")
    print(f"RMSD lambda_max = {LAMBDA_MAX}, DMSD target = {TARGET_NS} ns")
    print()

    rows = {}
    for name, strategy in strategies.items():
        freq = strategy.frequency_for(config, traffic, FAST, seed=1)
        result = run_fixed_point(config, traffic, freq, FAST, seed=1)
        power = power_model.evaluate(result.power_windows)
        rows[name] = (freq, result, power)
        print(f"{name:8s}  F = {freq / 1e9:5.3f} GHz   "
              f"V = {power_model.technology.voltage_for(freq):5.3f} V   "
              f"delay = {result.mean_delay_ns:6.1f} ns   "
              f"power = {power.total_mw:6.1f} mW")

    print()
    _, _, dmsd_power = rows["DMSD"]
    print(breakdown_table(dmsd_power, title="DMSD power breakdown"))

    print()
    nod = rows["No-DVFS"][2].total_mw
    rmsd = rows["RMSD"][2].total_mw
    dmsd = rows["DMSD"][2].total_mw
    rmsd_d = rows["RMSD"][1].mean_delay_ns
    dmsd_d = rows["DMSD"][1].mean_delay_ns
    print(f"DVFS power saving vs No-DVFS : {nod / dmsd:4.2f}x (DMSD), "
          f"{nod / rmsd:4.2f}x (RMSD)")
    print(f"DMSD power overhead vs RMSD  : "
          f"{100 * (dmsd / rmsd - 1):4.0f}%")
    print(f"RMSD delay penalty vs DMSD   : {rmsd_d / dmsd_d:4.2f}x")
    print()
    print("The paper's conclusion: the delay penalty of RMSD outweighs "
          "its power advantage, so DMSD offers the better trade-off.")


if __name__ == "__main__":
    main()
