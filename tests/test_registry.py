"""The scenario registries: refs, policies, patterns, strategies.

Covers the registry round-trip (register -> name -> instantiate ->
``spec_key``), the fresh-instance-per-unit contract (the shared-PI-
state regression), and the clean-``ValueError`` contract for unknown
names and parameters at the API layer (the CLI layer is covered in
``test_cli.py``).
"""

import pytest
from hypothesis import given, strategies as st

from repro.core import (DmsdController, DvfsPolicy, NoDvfs,
                        POLICY_REGISTRY, Ref, default_policies,
                        make_policy, make_strategy, policy_names,
                        register_policy, register_strategy)
from repro.analysis.sweep import (DmsdSteadyState, NoDvfsSteadyState,
                                  RmsdSteadyState, StrategyResources,
                                  strategy_from_ref)
from repro.noc import NocConfig
from repro.traffic import (PATTERN_REGISTRY, PATTERNS, TrafficPattern,
                           UniformTraffic, make_pattern, pattern_names,
                           register_pattern)

from conftest import sample


class TestRef:
    def test_of_and_parse_agree(self):
        assert Ref.of("dmsd", target_delay_ns=500, ki=0.05) == Ref.parse(
            "dmsd:target_delay_ns=500,ki=0.05")

    def test_params_canonically_sorted(self):
        a = Ref.of("x-p", b=2, a=1)
        b = Ref.of("x-p", a=1, b=2)
        assert a == b
        assert a.params == (("a", 1), ("b", 2))
        assert hash(a) == hash(b)

    def test_label_round_trip(self):
        ref = Ref.of("hotspot", fraction=0.1)
        assert ref.label == "hotspot:fraction=0.1"
        assert Ref.parse(ref.label) == ref

    def test_plain_name_label(self):
        assert Ref.of("rmsd").label == "rmsd"

    def test_parse_literals_and_strings(self):
        ref = Ref.parse("p:a=1,b=0.5,c=True,d=text")
        assert ref.kwargs() == {"a": 1, "b": 0.5, "c": True,
                                "d": "text"}

    def test_spec_key_distinguishes_params(self):
        assert (Ref.of("dmsd", target_delay_ns=40).spec_key()
                != Ref.of("dmsd", target_delay_ns=50).spec_key())

    @pytest.mark.parametrize("bad", ["", ":", "p:", "p:novalue",
                                     "p:=3", "p:a=1,=2"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            Ref.parse(bad)

    def test_coerce_rejects_non_ref(self):
        with pytest.raises(ValueError):
            Ref.coerce(3.14)

    def test_invalid_params_shape_rejected(self):
        with pytest.raises(ValueError):
            Ref("ok", params=(("just-a-key",),))


class TestPolicyRegistry:
    def test_builtins_registered_in_paper_order(self):
        # Policies self-register at class definition (lint rule D006),
        # so registration order follows repro.core's import order:
        # the paper triple keeps its relative order, with the
        # strategy-less 'fixed' debugging policy interleaved.
        names = policy_names()
        paper = tuple(n for n in names
                      if n in ("no-dvfs", "rmsd", "dmsd"))
        assert paper == ("no-dvfs", "rmsd", "dmsd")
        assert "fixed" in names

    def test_default_policies_is_the_paper_triple(self):
        # 'fixed' has no sweep strategy, so the default sweep ordering
        # is exactly the old hardwired POLICIES tuple.
        assert default_policies()[:3] == ("no-dvfs", "rmsd", "dmsd")

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="unknown policy 'warp'"):
            make_policy("warp")

    def test_unknown_param_lists_accepted(self):
        with pytest.raises(ValueError,
                           match="does not accept parameter"):
            make_policy("dmsd", target_delay_ns=100, bogus=1)

    def test_missing_required_param_is_value_error(self):
        with pytest.raises(ValueError,
                           match="cannot instantiate policy 'dmsd'"):
            make_policy("dmsd")

    def test_bad_param_value_propagates_value_error(self):
        with pytest.raises(ValueError):
            make_policy("dmsd", target_delay_ns=-5)

    def test_make_policy_via_ref_and_string(self):
        by_ref = make_policy(Ref.of("dmsd", target_delay_ns=100))
        by_str = make_policy("dmsd:target_delay_ns=100")
        assert isinstance(by_ref, DmsdController)
        assert by_str.target_delay_ns == by_ref.target_delay_ns == 100

    def test_strategyless_policy_rejected_for_sweeps(self):
        with pytest.raises(ValueError, match="no steady-state sweep"):
            make_strategy("fixed", None, freq_hz=1e9)

    def test_strategy_unknown_param(self):
        with pytest.raises(ValueError,
                           match="does not accept parameter"):
            make_strategy("rmsd", None, lambda_max=0.5, nope=1)

    def test_strategy_missing_resource_is_clean(self):
        with pytest.raises(ValueError, match="lambda_max"):
            make_strategy("rmsd")

    def test_builtin_strategies_round_trip(self):
        resources = StrategyResources(lambda_max=lambda: 0.5,
                                      target_delay_ns=lambda: 40.0,
                                      dmsd_iterations=4)
        nod = strategy_from_ref("no-dvfs", resources)
        rmsd = strategy_from_ref("rmsd", resources)
        dmsd = strategy_from_ref("dmsd", resources)
        assert isinstance(nod, NoDvfsSteadyState)
        assert rmsd.spec_key() == RmsdSteadyState(0.5).spec_key()
        assert dmsd.spec_key() == DmsdSteadyState(
            40.0, iterations=4).spec_key()

    def test_explicit_params_beat_resources(self):
        resources = StrategyResources(lambda_max=lambda: 0.5)
        strat = strategy_from_ref(Ref.of("rmsd", lambda_max=0.25),
                                  resources)
        assert strat.lambda_max == 0.25

    def test_dual_side_ref_builds_both_sides(self):
        """One ref drives both sides: each side keeps its own params
        and sets the other side's aside."""
        ref = Ref.of("dmsd", target_delay_ns=150.0, iterations=8)
        controller = make_policy(ref)           # iterations is sweep-side
        assert controller.target_delay_ns == 150.0
        strategy = make_strategy(ref)
        assert strategy.iterations == 8
        rmsd_ref = Ref.of("rmsd", lambda_max=0.3, smoothing=0.2)
        assert make_policy(rmsd_ref).smoothing == 0.2
        assert make_strategy(rmsd_ref).lambda_max == 0.3

    def test_param_unknown_to_both_sides_still_rejected(self):
        with pytest.raises(ValueError,
                           match="does not accept parameter"):
            make_policy(Ref.of("dmsd", target_delay_ns=1.0, warp=9))
        with pytest.raises(ValueError,
                           match="does not accept parameter"):
            make_strategy(Ref.of("rmsd", lambda_max=0.3, warp=9))

    def test_dmsd_strategy_ignores_pi_gains(self):
        # One ref can drive both the transient controller and the
        # sweep: the fixed point is independent of ki/kp.
        strat = make_strategy("dmsd", None, target_delay_ns=40.0,
                              ki=0.1, kp=0.05)
        assert strat.spec_key() == DmsdSteadyState(40.0).spec_key()


class _ProbePolicy(DvfsPolicy):
    name = "probe-policy"

    def __init__(self, level: float = 0.5) -> None:
        super().__init__()
        self.level = level

    def update(self, sample):
        config = self._require_config()
        return config.f_min_hz + self.level * (config.f_max_hz
                                               - config.f_min_hz)


@pytest.fixture
def probe_policy():
    register_policy(_ProbePolicy)
    try:
        yield _ProbePolicy
    finally:
        POLICY_REGISTRY.remove(_ProbePolicy.name)


class TestRegistrationLifecycle:
    def test_register_name_instantiate_round_trip(self, probe_policy):
        assert "probe-policy" in POLICY_REGISTRY
        inst = make_policy("probe-policy:level=0.75")
        assert isinstance(inst, _ProbePolicy)
        assert inst.level == 0.75
        # Registered policies without a sweep strategy never enter the
        # default sweep ordering.
        assert "probe-policy" not in default_policies()

    def test_strategy_attach_and_default_ordering(self, probe_policy):
        register_strategy("probe-policy",
                          lambda resources=None: NoDvfsSteadyState())
        assert default_policies()[-1] == "probe-policy"
        assert isinstance(make_strategy("probe-policy"),
                          NoDvfsSteadyState)

    def test_opt_in_strategy_is_sweepable_but_not_default(
            self, probe_policy):
        """``default=False`` keeps a policy out of the default figure
        comparison while every by-name path still works — how the
        adaptive gcc/utility built-ins ride along without widening the
        paper's three-policy figures."""
        register_strategy("probe-policy",
                          lambda resources=None: NoDvfsSteadyState(),
                          default=False)
        assert "probe-policy" in POLICY_REGISTRY.sweepable()
        assert "probe-policy" not in default_policies()
        assert not POLICY_REGISTRY.is_default("probe-policy")
        assert isinstance(make_strategy("probe-policy"),
                          NoDvfsSteadyState)
        # flipping to default=True (replace) joins the default set
        register_strategy("probe-policy",
                          lambda resources=None: NoDvfsSteadyState(),
                          replace=True)
        assert default_policies()[-1] == "probe-policy"

    def test_duplicate_registration_rejected(self, probe_policy):
        with pytest.raises(ValueError, match="already registered"):
            register_policy(_ProbePolicy)
        register_policy(_ProbePolicy, replace=True)  # explicit is fine

    def test_strategy_for_unregistered_policy_rejected(self):
        with pytest.raises(ValueError, match="register the policy"):
            register_strategy("never-registered",
                              lambda resources=None: None)

    def test_remove_unknown_rejected(self):
        with pytest.raises(ValueError):
            POLICY_REGISTRY.remove("never-registered")


class TestFreshInstancesRegression:
    """The shared-instance bug: ``reset()``/``update()`` mutate policy
    state (PI integrator, bound config), so a policy object reused
    across units would leak state between sweep points.  Registries
    must hand out a fresh instance per request."""

    def test_make_policy_never_shares_instances(self):
        a = make_policy("dmsd", target_delay_ns=100.0)
        b = make_policy("dmsd", target_delay_ns=100.0)
        assert a is not b
        assert a.pi is not b.pi

    def test_mutated_state_does_not_leak(self, tiny_config):
        a = make_policy("dmsd", target_delay_ns=100.0)
        b = make_policy("dmsd", target_delay_ns=100.0)
        a.reset(tiny_config)
        # Drive a's integrator away from its initial state (delay far
        # below target -> negative error -> u walks down from 1.0).
        for _ in range(5):
            a.update(sample(delay_ns=10.0))
        assert a.pi.u != pytest.approx(1.0)
        assert b.pi.u == pytest.approx(1.0)

    def test_simulations_from_specs_get_fresh_controllers(self,
                                                          tiny_config):
        from repro import PatternTraffic, Simulation, make_pattern

        traffic = PatternTraffic(
            make_pattern("uniform", tiny_config.make_mesh()), 0.05)
        sim1 = Simulation(tiny_config, traffic,
                          controller="dmsd:target_delay_ns=100")
        sim2 = Simulation(tiny_config, traffic,
                          controller="dmsd:target_delay_ns=100")
        assert sim1.controller is not sim2.controller


class _ProbePattern(TrafficPattern):
    name = "probe-pattern"

    def __init__(self, mesh, shift: int = 1) -> None:
        super().__init__(mesh)
        self.shift = shift

    def spec_key(self):
        return super().spec_key() + (self.shift,)

    def dest(self, src, rng):
        return (src + self.shift) % self.mesh.num_nodes


@pytest.fixture
def probe_pattern():
    register_pattern(_ProbePattern)
    try:
        yield _ProbePattern
    finally:
        PATTERN_REGISTRY.remove(_ProbePattern.name)


class TestPatternRegistry:
    def test_patterns_view_is_live(self, mesh3, probe_pattern):
        # PATTERNS is the old dict API, now a read-only live view.
        assert "uniform" in PATTERNS
        assert PATTERNS["uniform"] is UniformTraffic
        assert "probe-pattern" in PATTERNS
        assert "probe-pattern" in pattern_names()

    def test_patterns_view_rejects_mutation(self):
        with pytest.raises(TypeError):
            PATTERNS["hack"] = UniformTraffic

    def test_round_trip_with_params(self, mesh3, probe_pattern):
        pat = make_pattern("probe-pattern:shift=4", mesh3)
        assert pat.shift == 4
        assert pat.spec_key() == ("probe-pattern", 3, 3, 4)
        assert pat.dest(0, None) == 4

    def test_fresh_pattern_instances(self, mesh3, probe_pattern):
        assert (make_pattern("probe-pattern", mesh3)
                is not make_pattern("probe-pattern", mesh3))

    def test_unknown_pattern_lists_known(self, mesh3):
        with pytest.raises(ValueError,
                           match="unknown traffic pattern"):
            make_pattern("warp-field", mesh3)

    def test_unknown_pattern_param(self, mesh3):
        with pytest.raises(ValueError,
                           match="does not accept parameter"):
            make_pattern("hotspot:gravity=9.81", mesh3)


_KNOWN = set(policy_names()) | set(pattern_names()) | {"probe-policy",
                                                       "probe-pattern"}


class TestUnknownNamesProperty:
    """Hypothesis: *any* unregistered name fails with a ValueError
    (never a KeyError/AttributeError) at the API layer."""

    @given(name=st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
        min_size=1, max_size=12).filter(lambda s: s not in _KNOWN))
    def test_unknown_policy(self, name):
        with pytest.raises(ValueError):
            make_policy(name)

    @given(name=st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
        min_size=1, max_size=12).filter(lambda s: s not in _KNOWN))
    def test_unknown_pattern(self, name):
        mesh = NocConfig(width=3, height=3).make_mesh()
        with pytest.raises(ValueError):
            make_pattern(name, mesh)

    @given(key=st.text(alphabet="abcdefghij", min_size=1, max_size=8)
           .filter(lambda s: s not in ("lambda_max", "smoothing")))
    def test_unknown_strategy_param(self, key):
        with pytest.raises(ValueError):
            make_strategy("rmsd", None, **{key: 1.0, "lambda_max": 0.5})


class TestSweepRefValidation:
    """validate_sweep_ref: the stricter gate Workbench/CLI use."""

    def test_sweep_incapable_policy_rejected(self):
        with pytest.raises(ValueError, match="no steady-state sweep"):
            POLICY_REGISTRY.validate_sweep_ref("fixed")

    def test_controller_only_param_rejected(self):
        with pytest.raises(ValueError,
                           match="does not accept parameter"):
            POLICY_REGISTRY.validate_sweep_ref("rmsd:smoothing=0.5")

    def test_strategy_params_accepted(self):
        ref = POLICY_REGISTRY.validate_sweep_ref(
            "dmsd:target_delay_ns=40,iterations=3,ki=0.1")
        assert ref.name == "dmsd"

    def test_workbench_rejects_sweep_incapable_policies(self):
        from repro.experiments import Workbench

        with pytest.raises(ValueError, match="no steady-state sweep"):
            Workbench(policies=("no-dvfs", "fixed"))


class TestDeprecatedPoliciesAlias:
    def test_policies_alias_warns_and_matches_registry(self):
        import repro.experiments.common as common

        with pytest.warns(DeprecationWarning, match="POLICIES"):
            legacy = common.POLICIES
        assert legacy == default_policies()

    def test_other_missing_attributes_still_raise(self):
        import repro.experiments.common as common

        with pytest.raises(AttributeError):
            common.NOT_A_THING

    def test_star_import_does_not_touch_the_alias(self, recwarn):
        import warnings

        import repro.experiments as experiments

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            namespace = {}
            exec("from repro.experiments import *", namespace)
        assert "POLICIES" not in namespace
        assert "Workbench" in namespace
        assert "POLICIES" not in experiments.__all__
