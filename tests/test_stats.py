"""Unit tests for the statistics collector and measurement windows."""

import pytest

from repro.noc.flit import Packet
from repro.noc.stats import (ACTIVITY_FIELDS, ActivityCounters,
                             MeasurementSample, PowerWindow,
                             StatsCollector)

GHZ = 1e9


def delivered_packet(latency=30, delay_ns=30.0, measured=True, length=4):
    p = Packet(0, 1, length, created_cycle=100, created_ns=100.0,
               measured=measured)
    p.ejected_cycle = 100 + latency
    p.ejected_ns = 100.0 + delay_ns
    return p


class TestActivityCounters:
    def test_starts_at_zero(self):
        act = ActivityCounters()
        assert act.total_events() == 0

    def test_kwargs_init(self):
        act = ActivityCounters(buffer_writes=3, link_flits=2)
        assert act.buffer_writes == 3
        assert act.total_events() == 5

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            ActivityCounters(warp_drives=1)

    def test_copy_is_independent(self):
        a = ActivityCounters(buffer_writes=1)
        b = a.copy()
        b.buffer_writes += 1
        assert a.buffer_writes == 1

    def test_as_dict_covers_all_fields(self):
        assert set(ActivityCounters().as_dict()) == set(ACTIVITY_FIELDS)

    def test_subtraction(self):
        a = ActivityCounters(buffer_writes=5, sa_grants=3)
        b = ActivityCounters(buffer_writes=2, sa_grants=1)
        d = a - b
        assert d.buffer_writes == 3
        assert d.sa_grants == 2

    def test_equality(self):
        assert ActivityCounters(link_flits=1) == ActivityCounters(
            link_flits=1)
        assert ActivityCounters(link_flits=1) != ActivityCounters()


class TestStatsCollector:
    def test_generation_counts(self):
        stats = StatsCollector()
        p = Packet(0, 1, 4, 0, 0.0, measured=True)
        stats.on_packet_generated(p)
        assert stats.generated_packets == 1
        assert stats.generated_flits == 4
        assert stats.measured_created == 1

    def test_unmeasured_packets_not_tagged(self):
        stats = StatsCollector()
        stats.on_packet_generated(Packet(0, 1, 4, 0, 0.0))
        assert stats.measured_created == 0

    def test_delivery_records_measured_only(self):
        stats = StatsCollector()
        stats.on_packet_delivered(delivered_packet(measured=True))
        stats.on_packet_delivered(delivered_packet(measured=False))
        assert stats.delivered_packets == 2
        assert stats.measured_delivered == 1

    def test_mean_latency_and_delay(self):
        stats = StatsCollector()
        stats.on_packet_delivered(delivered_packet(latency=20,
                                                   delay_ns=40.0))
        stats.on_packet_delivered(delivered_packet(latency=40,
                                                   delay_ns=80.0))
        assert stats.mean_latency_cycles() == pytest.approx(30.0)
        assert stats.mean_delay_ns() == pytest.approx(60.0)

    def test_empty_stats_raise(self):
        stats = StatsCollector()
        with pytest.raises(RuntimeError):
            stats.mean_latency_cycles()
        with pytest.raises(RuntimeError):
            stats.mean_delay_ns()
        with pytest.raises(RuntimeError):
            stats.percentile_latency(0.99)

    def test_percentile(self):
        stats = StatsCollector()
        for latency in (10, 20, 30, 40, 100):
            stats.on_packet_delivered(delivered_packet(latency=latency))
        assert stats.percentile_latency(0.5) == 30.0
        assert stats.percentile_latency(0.99) == 100.0


class TestMeasurementWindows:
    def test_take_sample_aggregates_window(self):
        stats = StatsCollector()
        stats.on_packet_generated(Packet(0, 1, 4, 0, 0.0))
        stats.on_packet_delivered(delivered_packet(delay_ns=50.0))
        sample = stats.take_sample(window_cycles=100,
                                   window_node_cycles=100,
                                   window_ns=100.0, freq_hz=1 * GHZ,
                                   time_ns=100.0, num_nodes=2)
        assert sample.generated_flits == 4
        assert sample.delivered_packets == 1
        assert sample.mean_delay_ns == pytest.approx(50.0)
        assert sample.node_lambda == pytest.approx(4 / 200)

    def test_take_sample_resets_window(self):
        stats = StatsCollector()
        stats.on_packet_generated(Packet(0, 1, 4, 0, 0.0))
        stats.take_sample(100, 100, 100.0, 1 * GHZ, 100.0, 2)
        empty = stats.take_sample(100, 100, 100.0, 1 * GHZ, 200.0, 2)
        assert empty.generated_flits == 0
        assert empty.mean_delay_ns is None

    def test_lifetime_counters_survive_sampling(self):
        stats = StatsCollector()
        stats.on_packet_generated(Packet(0, 1, 4, 0, 0.0, measured=True))
        stats.take_sample(100, 100, 100.0, 1 * GHZ, 100.0, 2)
        assert stats.generated_flits == 4
        assert stats.measured_created == 1


class TestPowerWindow:
    def test_immutable_record(self):
        w = PowerWindow(duration_ns=10.0, cycles=10, freq_hz=1 * GHZ,
                        activity=ActivityCounters())
        with pytest.raises(AttributeError):
            w.duration_ns = 5.0
