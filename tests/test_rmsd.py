"""Unit tests for the RMSD policy (paper Sec. III)."""

import pytest

from conftest import sample
from repro.core import RmsdController, lambda_min_for, rmsd_frequency
from repro.noc import GHZ, NocConfig, PAPER_BASELINE


class TestFrequencyLaw:
    def test_eq2_inside_range(self):
        """Fnoc = Fnode * lambda / lambda_max (paper eq. (2))."""
        f = rmsd_frequency(PAPER_BASELINE, 0.2, lambda_max=0.4)
        assert f == pytest.approx(0.5 * GHZ)

    def test_clips_at_f_min(self):
        f = rmsd_frequency(PAPER_BASELINE, 0.01, lambda_max=0.4)
        assert f == pytest.approx(PAPER_BASELINE.f_min_hz)

    def test_clips_at_f_max(self):
        f = rmsd_frequency(PAPER_BASELINE, 0.9, lambda_max=0.4)
        assert f == pytest.approx(PAPER_BASELINE.f_max_hz)

    def test_at_lambda_max_runs_full_speed(self):
        f = rmsd_frequency(PAPER_BASELINE, 0.4, lambda_max=0.4)
        assert f == pytest.approx(PAPER_BASELINE.f_max_hz)

    def test_constant_network_rate_inside_range(self):
        """lambda_noc = lambda * Fnode/Fnoc stays at lambda_max."""
        for lam in (0.15, 0.2, 0.3, 0.38):
            f = rmsd_frequency(PAPER_BASELINE, lam, lambda_max=0.4)
            lam_noc = lam * PAPER_BASELINE.f_node_hz / f
            assert lam_noc == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            rmsd_frequency(PAPER_BASELINE, 0.2, lambda_max=0.0)
        with pytest.raises(ValueError):
            rmsd_frequency(PAPER_BASELINE, -0.1, lambda_max=0.4)


class TestLambdaMin:
    def test_paper_ratio(self):
        """lambda_min = lambda_max * Fmin/Fmax = lambda_max/3."""
        lam_min = lambda_min_for(PAPER_BASELINE, 0.42)
        assert lam_min == pytest.approx(0.14)

    def test_scales_with_f_min(self):
        cfg = NocConfig(f_min_hz=0.5 * GHZ)
        assert lambda_min_for(cfg, 0.4) == pytest.approx(0.2)


class TestController:
    def test_tracks_measured_rate(self):
        ctrl = RmsdController(lambda_max=0.4)
        ctrl.reset(PAPER_BASELINE)
        # 0.2 flits/node-cycle measured -> Fnoc = 0.5 GHz.
        f = ctrl.update(sample(node_lambda_flits=80, node_cycles=100,
                               num_nodes=4))
        assert f == pytest.approx(0.5 * GHZ)

    def test_starts_at_f_max(self):
        ctrl = RmsdController(lambda_max=0.4)
        assert ctrl.reset(PAPER_BASELINE) == PAPER_BASELINE.f_max_hz

    def test_smoothing_damps_jumps(self):
        smooth = RmsdController(lambda_max=0.4, smoothing=0.8)
        smooth.reset(PAPER_BASELINE)
        smooth.update(sample(node_lambda_flits=80, node_cycles=100,
                             num_nodes=4))          # estimate = 0.2
        f = smooth.update(sample(node_lambda_flits=160, node_cycles=100,
                                 num_nodes=4))      # measured jumps to 0.4
        # EWMA: 0.8*0.2 + 0.2*0.4 = 0.24 -> 0.6 GHz, not 1 GHz.
        assert f == pytest.approx(0.6 * GHZ)

    def test_memoryless_by_default(self):
        ctrl = RmsdController(lambda_max=0.4)
        ctrl.reset(PAPER_BASELINE)
        ctrl.update(sample(node_lambda_flits=80, node_cycles=100,
                           num_nodes=4))
        f = ctrl.update(sample(node_lambda_flits=160, node_cycles=100,
                               num_nodes=4))
        assert f == pytest.approx(1.0 * GHZ)

    def test_validation(self):
        with pytest.raises(ValueError):
            RmsdController(lambda_max=0.0)
        with pytest.raises(ValueError):
            RmsdController(lambda_max=0.4, smoothing=1.0)
