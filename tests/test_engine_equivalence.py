"""Differential equivalence harness: fast engine vs reference engine.

The fast struct-of-arrays engine (``repro.noc.fastsim``) is designed to
produce the *same flit-level schedule* as the reference object model
for the same arrival sequence — both engines share the kernel, the
clock domains and the RNG streams, and the vectorized allocation
mirrors the reference arbiters decision-for-decision.  The only
admissible divergence is float accumulation order in per-window
statistics.

This suite enforces that contract differentially: every test runs
matched (policy, traffic, config, seed) points on both engines and
compares the quantities the paper's figures are built from.

Tolerance contract (also documented in README "Simulation engines"):

* packet/flit counts, activity counters, accepted-rate curves — exact;
* mean/p99 delay, latency, hop counts — relative ``1e-9`` (float
  summation order);
* RMSD steady-state frequencies — exact (closed form, eq. (2));
* DMSD steady-state frequencies — relative ``1e-9`` (the bisection
  consumes simulated delays);
* DVFS frequency traces — same length, per-entry relative ``1e-9``.

Covered operating space: uniform / transpose / hotspot traffic, both
controllers (RMSD and DMSD, transient and steady-state forms), and
unsaturated as well as saturated operating points.
"""

import pytest

from repro.analysis import (DmsdSteadyState, RmsdSteadyState, run_sweep,
                            sweep_units)
from repro.core.dmsd import DmsdController
from repro.core.rmsd import RmsdController
from repro.noc import (NocConfig, SimBudget, Simulation, engine_names,
                       make_engine, run_fixed_point)
from repro.noc.fastsim import BatchPoint, run_fixed_batch
from repro.runner import ExecutionContext
from repro.traffic import PatternTraffic, make_pattern

#: Engines under differential comparison.
REFERENCE, FAST = "reference", "fast"

#: The ISSUE's three traffic patterns (random, permutation, congested).
PATTERNS = ("uniform", "transpose", "hotspot")

#: Relative tolerance for float-accumulated statistics.
REL = 1e-9

#: 4x4 (square, so transpose is defined), 2 VCs, short packets: small
#: enough that the whole matrix stays fast, large enough to contend.
CONFIG = NocConfig(width=4, height=4, num_vcs=2, vc_buf_depth=2,
                   packet_length=4)

BUDGET = SimBudget(150, 400, 1200)

#: Offered loads: comfortably below and well past saturation.
UNSATURATED, SATURATED = 0.08, 0.55


def traffic_for(pattern: str, rate: float,
                config: NocConfig = CONFIG) -> PatternTraffic:
    return PatternTraffic(make_pattern(pattern, config.make_mesh()), rate)


def matched_fixed_points(pattern: str, rate: float, seed: int = 11,
                         freq_hz: float | None = None):
    """The same fixed-frequency run on both engines."""
    freq = CONFIG.f_max_hz if freq_hz is None else freq_hz
    return tuple(
        run_fixed_point(CONFIG, traffic_for(pattern, rate), freq,
                        BUDGET, seed, engine=engine)
        for engine in (REFERENCE, FAST))


def assert_results_equivalent(ref, fast):
    """The tolerance contract, applied to one matched result pair."""
    assert fast.measured_created == ref.measured_created
    assert fast.measured_delivered == ref.measured_delivered
    assert fast.complete == ref.complete
    assert fast.accepted_node_rate == ref.accepted_node_rate
    assert fast.backlog_delta_flits == ref.backlog_delta_flits
    assert fast.measure_node_cycles == ref.measure_node_cycles
    for field in ("mean_delay_ns", "mean_latency_cycles", "p99_delay_ns",
                  "mean_hops"):
        ref_value, fast_value = getattr(ref, field), getattr(fast, field)
        if ref_value is None:
            assert fast_value is None
        else:
            assert fast_value == pytest.approx(ref_value, rel=REL)


class TestEngineRegistry:
    def test_both_engines_registered(self):
        assert set(engine_names()) == {"reference", "fast"}
        assert engine_names()[0] == "reference"   # the default leads

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_engine("warp", CONFIG)
        with pytest.raises(ValueError, match="unknown engine"):
            Simulation(CONFIG, traffic_for("uniform", 0.1),
                       engine="warp")


class TestFixedPointEquivalence:
    """Matched fixed-frequency points across patterns and load regimes."""

    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("rate", [UNSATURATED, SATURATED])
    def test_statistics_agree(self, pattern, rate):
        ref, fast = matched_fixed_points(pattern, rate)
        assert_results_equivalent(ref, fast)

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_saturated_points_actually_saturate(self, pattern):
        """The harness covers the regime it claims to cover."""
        ref, fast = matched_fixed_points(pattern, SATURATED)
        assert ref.saturated and fast.saturated

    def test_slow_network_clock(self):
        """The DVFS-relevant regime: network at Fmin, nodes at Fnode."""
        ref, fast = matched_fixed_points("uniform", UNSATURATED,
                                         freq_hz=CONFIG.f_min_hz)
        assert_results_equivalent(ref, fast)

    @pytest.mark.parametrize("overrides", [
        dict(route_latency=0),
        dict(va_latency=0),
        dict(route_latency=0, va_latency=0),
        dict(route_latency=2),
        dict(link_latency=2, credit_latency=2),
    ], ids=["rl0", "va0", "rl0-va0", "rl2", "ll2-cl2"])
    def test_pipeline_latency_variants(self, overrides):
        """The router-phase derivation from FIFO occupancy must hold
        for every pipeline timing, including the zero-latency
        fall-throughs."""
        config = CONFIG.with_(**overrides)
        ref, fast = (
            run_fixed_point(config, traffic_for("uniform", 0.25, config),
                            config.f_max_hz, BUDGET, 11, engine=engine)
            for engine in (REFERENCE, FAST))
        assert_results_equivalent(ref, fast)

    def test_activity_counters_agree(self):
        for engine_results in [
            tuple(Simulation(CONFIG, traffic_for("uniform", 0.2),
                             seed=5, engine=engine)
                  for engine in (REFERENCE, FAST))
        ]:
            ref_sim, fast_sim = engine_results
            ref_sim.run(100, 300, 800)
            fast_sim.run(100, 300, 800)
            assert (fast_sim.network.aggregate_activity().as_dict()
                    == ref_sim.network.aggregate_activity().as_dict())


class TestControllerEquivalence:
    """Transient RMSD/DMSD control loops drive both engines alike."""

    def run_controlled(self, controller, engine, seed=7):
        sim = Simulation(CONFIG, traffic_for("uniform", 0.2),
                         controller=controller,
                         control_period_node_cycles=400,
                         seed=seed, engine=engine)
        return sim.run(200, 1200, 3000)

    @pytest.mark.parametrize("make_controller", [
        lambda: RmsdController(lambda_max=0.35),
        lambda: DmsdController(target_delay_ns=60.0),
    ], ids=["rmsd", "dmsd"])
    def test_frequency_trace_agrees(self, make_controller):
        ref = self.run_controlled(make_controller(), REFERENCE)
        fast = self.run_controlled(make_controller(), FAST)
        assert len(fast.freq_trace) == len(ref.freq_trace)
        for (ref_t, ref_f), (fast_t, fast_f) in zip(ref.freq_trace,
                                                    fast.freq_trace):
            assert fast_t == pytest.approx(ref_t, rel=REL)
            assert fast_f == pytest.approx(ref_f, rel=REL)
        assert fast.mean_freq_hz == pytest.approx(ref.mean_freq_hz,
                                                  rel=REL)
        assert_results_equivalent(ref, fast)

    def test_power_windows_agree(self):
        ref = self.run_controlled(DmsdController(target_delay_ns=60.0),
                                  REFERENCE)
        fast = self.run_controlled(DmsdController(target_delay_ns=60.0),
                                   FAST)
        assert len(fast.power_windows) == len(ref.power_windows)
        for ref_win, fast_win in zip(ref.power_windows,
                                     fast.power_windows):
            assert fast_win.cycles == ref_win.cycles
            assert fast_win.freq_hz == pytest.approx(ref_win.freq_hz,
                                                     rel=REL)
            assert fast_win.activity == ref_win.activity


class TestSteadyStateEquivalence:
    """Steady-state frequencies and curves at matched seeds.

    With the seed held fixed, the engine is the only variable, so the
    tight (flit-exact) contract applies.
    """

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_dmsd_fixed_point_frequency(self, pattern):
        """The bisection consumes simulated delays on each engine."""
        strategy = DmsdSteadyState(target_delay_ns=40.0, iterations=5,
                                   search_budget=BUDGET)
        frequencies = [
            strategy.frequency_for(CONFIG, traffic_for(pattern, 0.18),
                                   BUDGET, seed=11, engine=engine)
            for engine in (REFERENCE, FAST)
        ]
        assert frequencies[1] == pytest.approx(frequencies[0], rel=REL)

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_rmsd_frequency_closed_form(self, pattern):
        """Eq. (2) never simulates: identical on every engine."""
        strategy = RmsdSteadyState(lambda_max=0.5)
        traffic = traffic_for(pattern, 0.18)
        assert (strategy.frequency_for(CONFIG, traffic, BUDGET, 11,
                                       engine=FAST)
                == strategy.frequency_for(CONFIG, traffic, BUDGET, 11,
                                          engine=REFERENCE))

    def test_accepted_rate_curve_through_saturation(self):
        """The throughput curve (accepted vs offered) matches exactly,
        including the post-saturation plateau."""
        rates = (0.1, 0.3, 0.5, 0.7)
        curves = {}
        for engine in (REFERENCE, FAST):
            curves[engine] = [
                run_fixed_point(CONFIG, traffic_for("uniform", rate),
                                CONFIG.f_max_hz, BUDGET, 3,
                                engine=engine).accepted_node_rate
                for rate in rates
            ]
        assert curves[FAST] == curves[REFERENCE]


class TestSweepPipelineEquivalence:
    """`run_sweep(engine="fast")` end to end, through units and cache.

    Here the engines run *different derived seeds* (the engine is part
    of every unit's spec digest by design), so the comparison is
    statistical: closed-form frequencies stay exact, self-averaging
    throughput stays within a few percent, and DMSD operating points
    land within the noise of the tiny search budget.
    """

    RATES = (0.06, 0.18, 0.30)

    def sweep(self, strategy, pattern, engine):
        context = ExecutionContext(backend="serial", jobs=1, cache=None,
                                   engine=engine)
        return run_sweep(CONFIG, lambda r: traffic_for(pattern, r),
                         list(self.RATES), strategy, BUDGET, seed=11,
                         context=context)

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_rmsd_series(self, pattern):
        ref = self.sweep(RmsdSteadyState(lambda_max=0.5), pattern,
                         REFERENCE)
        fast = self.sweep(RmsdSteadyState(lambda_max=0.5), pattern, FAST)
        assert ([p.freq_hz for p in fast.points]
                == [p.freq_hz for p in ref.points])
        for ref_point, fast_point in zip(ref.points, fast.points):
            assert fast_point.accepted_rate == pytest.approx(
                ref_point.accepted_rate, rel=0.10)
        # The low-load point's delay bound is a *seed-noise* bound (the
        # engines see different derived seeds here, and RMSD pins the
        # network near its operating edge); the engine-only bound is
        # the flit-exact REL above at matched seeds.
        assert fast.points[0].delay_ns == pytest.approx(
            ref.points[0].delay_ns, rel=0.25)

    def test_dmsd_series(self):
        strategy = DmsdSteadyState(target_delay_ns=40.0, iterations=5,
                                   search_budget=BUDGET)
        ref = self.sweep(strategy, "uniform", REFERENCE)
        fast = self.sweep(strategy, "uniform", FAST)
        for ref_point, fast_point in zip(ref.points, fast.points):
            assert fast_point.freq_hz == pytest.approx(
                ref_point.freq_hz, rel=0.08)
            if ref_point.delay_ns is not None:
                assert fast_point.delay_ns == pytest.approx(
                    ref_point.delay_ns, rel=0.15)


class TestUnitDigests:
    """Engine choice is part of the unit spec: caches never mix."""

    def factory(self, rate):
        return traffic_for("uniform", rate)

    def units(self, engine):
        return sweep_units(CONFIG, self.factory, [0.1],
                           RmsdSteadyState(0.4), BUDGET, seed=7,
                           engine=engine)

    def test_engines_have_distinct_digests(self):
        assert (self.units(REFERENCE)[0].digest()
                != self.units(FAST)[0].digest())

    def test_reference_digest_matches_pre_engine_spec(self):
        """Reference units keep their pre-engine-era spec keys, so
        recorded goldens and caches stay valid."""
        key = self.units(REFERENCE)[0].spec_key()
        assert not any(isinstance(part, tuple) and part
                       and part[0] == "engine" for part in key)
        assert any(isinstance(part, tuple) and part
                   and part[0] == "engine"
                   for part in self.units(FAST)[0].spec_key())

    def test_derived_seeds_differ_between_engines(self):
        assert self.units(REFERENCE)[0].seed() != self.units(FAST)[0].seed()


class TestBatchedEquivalence:
    """`run_fixed_batch` replicas equal standalone runs, per point."""

    def points(self):
        return [
            BatchPoint(traffic_for("uniform", 0.08), CONFIG.f_max_hz, 3),
            BatchPoint(traffic_for("transpose", 0.2), CONFIG.f_min_hz, 4),
            BatchPoint(traffic_for("hotspot", 0.55), CONFIG.f_max_hz, 5),
        ]

    def test_batch_equals_single_fast_runs(self):
        batched = run_fixed_batch(CONFIG, self.points(), BUDGET)
        for point, from_batch in zip(self.points(), batched):
            alone = run_fixed_point(CONFIG, point.traffic, point.freq_hz,
                                    BUDGET, point.seed, engine=FAST)
            assert from_batch.measured_created == alone.measured_created
            assert (from_batch.measured_delivered
                    == alone.measured_delivered)
            assert (from_batch.accepted_node_rate
                    == alone.accepted_node_rate)
            assert (from_batch.backlog_delta_flits
                    == alone.backlog_delta_flits)
            assert from_batch.complete == alone.complete
            assert (from_batch.measure_duration_ns
                    == alone.measure_duration_ns)
            if alone.mean_delay_ns is None:
                assert from_batch.mean_delay_ns is None
            else:
                assert from_batch.mean_delay_ns == alone.mean_delay_ns
                assert from_batch.p99_delay_ns == alone.p99_delay_ns

    def test_batch_agrees_with_reference(self):
        batched = run_fixed_batch(CONFIG, self.points(), BUDGET)
        for point, from_batch in zip(self.points(), batched):
            ref = run_fixed_point(CONFIG, point.traffic, point.freq_hz,
                                  BUDGET, point.seed, engine=REFERENCE)
            assert_results_equivalent(ref, from_batch)

    def test_power_windows_equal_single_fast_runs(self):
        """Per-replica power windows: same duration, cycles, frequency
        and (exactly) the same activity counters as running the point
        alone — what lets power figures run on the batched backend."""
        batched = run_fixed_batch(CONFIG, self.points(), BUDGET)
        for point, from_batch in zip(self.points(), batched):
            alone = run_fixed_point(CONFIG, point.traffic, point.freq_hz,
                                    BUDGET, point.seed, engine=FAST)
            assert (len(from_batch.power_windows)
                    == len(alone.power_windows) == 1)
            batch_win = from_batch.power_windows[0]
            alone_win = alone.power_windows[0]
            assert batch_win.duration_ns == alone_win.duration_ns
            assert batch_win.cycles == alone_win.cycles
            assert batch_win.freq_hz == alone_win.freq_hz
            assert batch_win.activity == alone_win.activity
            assert from_batch.mean_freq_hz == alone.mean_freq_hz

    def test_empty_batch(self):
        assert run_fixed_batch(CONFIG, [], BUDGET) == []

    def test_heterogeneous_node_clocks_rejected(self):
        config = CONFIG.with_(
            node_freqs_hz=tuple([1e9] * CONFIG.num_nodes))
        with pytest.raises(NotImplementedError):
            run_fixed_batch(config, self.points(), BUDGET)
