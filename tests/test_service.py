"""Tests for the sweep service (daemon, submissions, status, gc).

The contract under test is the ISSUE-9 acceptance gate: two clients
submitting *overlapping* scenario sweeps to one daemon both get
results bit-identical to a serial run of their own submission, while
the overlapping work executes exactly once — deduplicated against the
shared result store and against each other's in-flight tasks.  Plus
the service plumbing around it: the JSON wire format, the
atomic-rename inbox, per-submission status files, crash recovery,
graceful drain, and result-store gc.
"""

import json
import threading
import time

import pytest

from repro.noc.budget import SimBudget
from repro.noc.config import NocConfig
from repro.runner.distributed import (QueueError, ServiceDaemon,
                                      SubmissionStore, SweepSubmission,
                                      WorkQueue, gc_queue,
                                      list_submissions, read_status,
                                      service_state, submission_results,
                                      submit_sweep)
from repro.runner.distributed.service import SERVICE_SHARD_FANOUT
from repro.scenario import ScenarioSpec
from test_backends import fingerprint  # noqa: F401

#: Small but real simulation work: every daemon test runs the actual
#: fast engine end to end.
TINY = NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                 packet_length=3)
BUDGET = SimBudget(100, 200, 500)
RATES = (0.02, 0.05)

NO_DVFS = ScenarioSpec.build("no-dvfs", "uniform", config=TINY)
RMSD = ScenarioSpec.build("rmsd:lambda_max=0.4", "uniform", config=TINY)
DMSD = ScenarioSpec.build("dmsd:target_delay_ns=40.0,iterations=2",
                          "uniform", config=TINY)


def submission(scenarios, rates=RATES, seed=7, **kwargs):
    return SweepSubmission.build(scenarios, rates, seed=seed,
                                 engine="fast", budget=BUDGET, **kwargs)


def serial_digests(sub):
    """The unit digests of one submission, in submission order."""
    digests = []
    for spec in sub.scenarios:
        digests.extend(u.digest() for u in
                       spec.units(list(sub.rates), budget=sub.budget,
                                  seed=sub.seed, engine=sub.engine))
    return digests


#: Serial reference results, memoized on unit digests — the service
#: tests compare several submissions against the same tiny sweeps.
_serial_memo: dict = {}


def serial_results(sub):
    out = []
    for spec in sub.scenarios:
        for unit in spec.units(list(sub.rates), budget=sub.budget,
                               seed=sub.seed, engine=sub.engine):
            digest = unit.digest()
            if digest not in _serial_memo:
                _serial_memo[digest] = unit.execute()
            out.append(_serial_memo[digest])
    return out


def run_daemon_until_terminal(queue_dir, submission_ids, workers=0,
                              timeout_s=90.0, **daemon_kwargs):
    """Serve ``queue_dir`` on a thread until every listed submission
    is terminal (or the timeout trips); returns the stopped daemon."""
    daemon = ServiceDaemon(queue_dir, workers=workers, poll_s=0.01,
                           **daemon_kwargs)
    stop = threading.Event()
    thread = threading.Thread(target=daemon.run,
                              kwargs=dict(stop=stop, max_idle_s=30.0))
    thread.start()
    try:
        deadline = time.time() + timeout_s
        while time.time() < deadline:
            statuses = [read_status(queue_dir, submission_id)
                        for submission_id in submission_ids]
            if all(s is not None
                   and s.get("state") in ("done", "failed")
                   for s in statuses):
                break
            time.sleep(0.02)
        else:
            pytest.fail(f"submissions not terminal after {timeout_s}s: "
                        f"{statuses}")
    finally:
        stop.set()
        thread.join(timeout=30)
    assert not thread.is_alive()
    return daemon


# ---------------------------------------------------------------------
class TestSubmissionWireFormat:
    def test_payload_roundtrip(self):
        sub = submission([NO_DVFS, RMSD], submission_id="sub-x")
        back = SweepSubmission.from_payload(
            json.loads(json.dumps(sub.to_payload())))
        assert back == sub
        assert [s.digest() for s in back.scenarios] \
            == [s.digest() for s in sub.scenarios]

    def test_payload_is_json_not_pickle(self):
        payload = submission([DMSD], submission_id="sub-x").to_payload()
        text = json.dumps(payload, sort_keys=True)
        assert "dmsd" in text and "target_delay_ns" in text

    def test_malformed_payloads_fail_readably(self):
        with pytest.raises(ValueError, match="malformed submission"):
            SweepSubmission.from_payload({"id": "x"})
        with pytest.raises(ValueError, match="malformed submission"):
            SweepSubmission.from_payload(
                {"id": "x", "scenarios": [{"policy": "no-such"}],
                 "rates": [0.1]})

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one scenario"):
            SweepSubmission.build([], RATES)
        with pytest.raises(ValueError, match="at least one rate"):
            SweepSubmission.build([NO_DVFS], [])
        with pytest.raises(ValueError, match="positive"):
            SweepSubmission.build([NO_DVFS], [-0.1])
        with pytest.raises(ValueError, match="unknown engine"):
            SweepSubmission.build([NO_DVFS], RATES, engine="warp")
        with pytest.raises(ValueError, match="invalid submission id"):
            SweepSubmission("../escape", (NO_DVFS,), RATES)
        with pytest.raises(ValueError, match="invalid submission id"):
            SweepSubmission("", (NO_DVFS,), RATES)

    def test_minted_ids_are_unique_and_content_prefixed(self):
        a = submission([NO_DVFS])
        b = submission([NO_DVFS])
        assert a.submission_id != b.submission_id
        # Same content -> same digest prefix (log readability).
        assert a.submission_id.split("-")[1] \
            == b.submission_id.split("-")[1]


class TestSubmissionStore:
    def test_submit_lands_in_inbox_and_reads_as_queued(self, tmp_path):
        sub = submission([NO_DVFS], submission_id="sub-a")
        assert submit_sweep(tmp_path / "q", sub) == "sub-a"
        store = SubmissionStore(WorkQueue(tmp_path / "q"))
        assert store.pending_ids() == ("sub-a",)
        assert read_status(tmp_path / "q", "sub-a") \
            == {"id": "sub-a", "state": "queued"}
        assert read_status(tmp_path / "q", "nope") is None

    def test_accept_moves_exactly_once(self, tmp_path):
        sub = submission([NO_DVFS], submission_id="sub-a")
        submit_sweep(tmp_path / "q", sub)
        store = SubmissionStore(WorkQueue(tmp_path / "q")).ensure()
        accepted, error = store.accept("sub-a")
        assert error is None and accepted == sub
        assert store.pending_ids() == ()
        assert store.active_ids() == ("sub-a",)
        # A second daemon loses the rename race cleanly.
        assert store.accept("sub-a") == (None, None)

    def test_malformed_submission_reports_not_crashes(self, tmp_path):
        store = SubmissionStore(WorkQueue(tmp_path / "q")).ensure()
        inbox = tmp_path / "q" / "submissions" / "inbox"
        (inbox / "sub-bad.json").write_text('{"id": "sub-bad", trunc')
        daemon = ServiceDaemon(tmp_path / "q", poll_s=0.01)
        daemon.tick()
        daemon.close()
        status = read_status(tmp_path / "q", "sub-bad")
        assert status["state"] == "failed"
        assert "unreadable submission" in status["error"]

    def test_submission_file_must_name_its_own_id(self, tmp_path):
        store = SubmissionStore(WorkQueue(tmp_path / "q")).ensure()
        payload = submission([NO_DVFS],
                             submission_id="sub-real").to_payload()
        inbox = tmp_path / "q" / "submissions" / "inbox"
        (inbox / "sub-liar.json").write_text(json.dumps(payload))
        accepted, error = store.accept("sub-liar")
        assert accepted is None and "names id" in error


# ---------------------------------------------------------------------
class TestDaemonEndToEnd:
    def test_overlapping_submissions_dedupe_and_match_serial(
            self, tmp_path):
        """The acceptance gate: two clients with overlapping sweeps
        each get bit-identical-to-serial results, and the overlap
        (the rmsd scenario) executes exactly once."""
        queue_dir = tmp_path / "q"
        sub_a = submission([NO_DVFS, RMSD])
        sub_b = submission([RMSD, DMSD])
        id_a = submit_sweep(queue_dir, sub_a)
        id_b = submit_sweep(queue_dir, sub_b)
        daemon = run_daemon_until_terminal(queue_dir, [id_a, id_b])

        status_a = read_status(queue_dir, id_a)
        status_b = read_status(queue_dir, id_b)
        assert status_a["state"] == "done"
        assert status_b["state"] == "done"
        # Per-scenario planning makes the shared scenario share task
        # ids exactly; nothing executed twice.
        shared = set(status_a["task_ids"]) & set(status_b["task_ids"])
        assert shared, "overlapping scenario must share task ids"
        every_task = set(status_a["task_ids"]) | set(status_b["task_ids"])
        assert daemon._fallback.executed == len(every_task)
        assert daemon._fallback.failed == 0
        # Bit-identical to a serial run of each client's own sweep.
        for sub, submission_id in ((sub_a, id_a), (sub_b, id_b)):
            got = submission_results(queue_dir, submission_id)
            assert [fingerprint(r) for r in got] \
                == [fingerprint(r) for r in serial_results(sub)]
        assert status_a["units"] == len(serial_digests(sub_a))
        assert status_a["unit_digests"] == serial_digests(sub_a)

    def test_later_submission_is_served_from_cache(self, tmp_path):
        """Resubmitting finished work costs zero executions: every
        task is a cache hit against results/."""
        queue_dir = tmp_path / "q"
        first = submit_sweep(queue_dir, submission([RMSD]))
        daemon = run_daemon_until_terminal(queue_dir, [first])
        executed_before = daemon._fallback.executed
        again = submit_sweep(queue_dir, submission([RMSD]))
        assert again != first           # its own id, its own status
        daemon2 = run_daemon_until_terminal(queue_dir, [again])
        status = read_status(queue_dir, again)
        assert status["state"] == "done"
        assert status["cached"] == status["tasks"] > 0
        assert daemon2._fallback.executed == 0
        assert executed_before > 0

    def test_planning_error_fails_the_submission_not_the_daemon(
            self, tmp_path):
        """A submission naming a strategy without its required
        resource (rmsd needs lambda_max) fails in its own status file;
        the daemon keeps serving the next client."""
        queue_dir = tmp_path / "q"
        bad_spec = ScenarioSpec.build("rmsd", "uniform", config=TINY)
        bad = submit_sweep(queue_dir, submission([bad_spec]))
        good = submit_sweep(queue_dir, submission([NO_DVFS]))
        run_daemon_until_terminal(queue_dir, [bad, good])
        bad_status = read_status(queue_dir, bad)
        assert bad_status["state"] == "failed"
        assert "planning failed" in bad_status["error"]
        assert "lambda_max" in bad_status["error"]
        assert read_status(queue_dir, good)["state"] == "done"

    def test_crash_recovery_replans_active_submissions(self, tmp_path):
        """A submission a dead daemon was holding in active/ is
        re-planned (and completed) by the next daemon — publishing is
        idempotent and results are reused."""
        queue_dir = tmp_path / "q"
        sub = submission([NO_DVFS], submission_id="sub-orphan")
        store = SubmissionStore(WorkQueue(queue_dir)).ensure()
        active = queue_dir / "submissions" / "active"
        (active / "sub-orphan.json").write_text(
            json.dumps(sub.to_payload()))
        run_daemon_until_terminal(queue_dir, ["sub-orphan"])
        assert read_status(queue_dir, "sub-orphan")["state"] == "done"
        assert store.active_ids() == ()
        assert len(submission_results(queue_dir, "sub-orphan")) \
            == len(serial_digests(sub))

    def test_drain_finishes_inflight_before_exit(self, tmp_path):
        """A stop request drains the accepted submission to a
        terminal state instead of abandoning it mid-flight, and
        leaves still-queued submissions in the inbox untouched."""
        queue_dir = tmp_path / "q"
        accepted_id = submit_sweep(queue_dir, submission([NO_DVFS]))
        daemon = ServiceDaemon(queue_dir, poll_s=0.01)
        stop = threading.Event()
        thread = threading.Thread(
            target=daemon.run, kwargs={"stop": stop}, daemon=True)
        thread.start()
        try:
            deadline = time.time() + 60
            while time.time() < deadline:
                status = read_status(queue_dir, accepted_id)
                if status is not None and status["state"] != "queued":
                    break
                time.sleep(0.01)
            else:
                pytest.fail("daemon never accepted the submission")
            stop.set()
            while thread.is_alive() and not daemon._draining:
                time.sleep(0.005)
            # A submission arriving once the drain has begun must
            # stay queued for the next daemon, not block the drain.
            queued_id = submit_sweep(
                queue_dir, submission([NO_DVFS, RMSD]))
            thread.join(timeout=60)
            assert not thread.is_alive()
        finally:
            stop.set()
        assert read_status(queue_dir, accepted_id)["state"] == "done"
        assert read_status(queue_dir, queued_id)["state"] == "queued"

    def test_service_state_lifecycle(self, tmp_path):
        queue_dir = tmp_path / "q"
        assert service_state(queue_dir) is None
        submission_id = submit_sweep(queue_dir, submission([NO_DVFS]))
        run_daemon_until_terminal(queue_dir, [submission_id])
        state = service_state(queue_dir)
        assert state["state"] == "stopped"
        assert state["accepted"] == state["completed"] == 1
        assert state["failed"] == 0

    def test_fanout_defaults(self, tmp_path):
        assert ServiceDaemon(tmp_path / "a").fanout \
            == SERVICE_SHARD_FANOUT
        assert ServiceDaemon(tmp_path / "b", workers=3).fanout == 3
        assert ServiceDaemon(tmp_path / "c", workers=3,
                             jobs=5).fanout == 5

    def test_daemon_validates_knobs(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            ServiceDaemon(tmp_path / "q", workers=-1)
        with pytest.raises(ValueError, match="claim_batch"):
            ServiceDaemon(tmp_path / "q", claim_batch=0)
        with pytest.raises(ValueError, match="jobs"):
            ServiceDaemon(tmp_path / "q", jobs=0)

    def test_from_context_requires_distributed(self, tmp_path):
        from repro.runner import ExecutionContext

        with pytest.raises(ValueError, match="distributed"):
            ServiceDaemon.from_context(ExecutionContext())
        context = ExecutionContext(backend="distributed",
                                   queue=str(tmp_path / "q"),
                                   workers=2, pool=True, claim_batch=3)
        daemon = ServiceDaemon.from_context(context)
        assert daemon.workers == 2 and daemon.claim_batch == 3
        daemon.close()


# ---------------------------------------------------------------------
class TestSubmissionResults:
    def test_unknown_and_unfinished_submissions_raise(self, tmp_path):
        queue_dir = tmp_path / "q"
        with pytest.raises(QueueError, match="unknown submission"):
            submission_results(queue_dir, "sub-nope")
        submission_id = submit_sweep(queue_dir, submission([NO_DVFS]))
        with pytest.raises(QueueError, match="queued.*not done"):
            submission_results(queue_dir, submission_id)

    def test_evicted_results_raise_instead_of_truncating(
            self, tmp_path):
        queue_dir = tmp_path / "q"
        submission_id = submit_sweep(queue_dir, submission([NO_DVFS]))
        run_daemon_until_terminal(queue_dir, [submission_id])
        status = read_status(queue_dir, submission_id)
        queue = WorkQueue(queue_dir)
        queue.result_path(status["task_ids"][0]).unlink()
        with pytest.raises(QueueError, match="no result recorded"):
            submission_results(queue_dir, submission_id)

    def test_list_submissions_orders_and_includes_queued(
            self, tmp_path):
        queue_dir = tmp_path / "q"
        done_id = submit_sweep(queue_dir, submission([NO_DVFS]))
        run_daemon_until_terminal(queue_dir, [done_id])
        queued_id = submit_sweep(
            queue_dir, submission([RMSD], submission_id="sub-waiting"))
        listed = {s["id"]: s["state"]
                  for s in list_submissions(queue_dir)}
        assert listed[done_id] == "done"
        assert listed[queued_id] == "queued"


# ---------------------------------------------------------------------
class TestGc:
    def run_one(self, queue_dir):
        submission_id = submit_sweep(queue_dir, submission([NO_DVFS]))
        run_daemon_until_terminal(queue_dir, [submission_id])
        return submission_id, read_status(queue_dir, submission_id)

    def test_keep_days_spares_recent_results(self, tmp_path):
        queue_dir = tmp_path / "q"
        submission_id, status = self.run_one(queue_dir)
        report = gc_queue(queue_dir, keep_days=7)
        assert report.eviction.total == 0
        assert report.submissions == ()
        assert read_status(queue_dir, submission_id)["state"] == "done"

    def test_zero_retention_evicts_terminal_everything(self, tmp_path):
        queue_dir = tmp_path / "q"
        submission_id, status = self.run_one(queue_dir)
        dry = gc_queue(queue_dir, keep_days=0, dry_run=True)
        assert set(dry.eviction.results) == set(status["task_ids"])
        assert dry.submissions == (submission_id,)
        # Dry run deleted nothing.
        assert read_status(queue_dir, submission_id) is not None
        report = gc_queue(queue_dir, keep_days=0)
        assert set(report.eviction.results) == set(status["task_ids"])
        assert set(report.eviction.payloads) == set(status["task_ids"])
        assert report.submissions == (submission_id,)
        assert read_status(queue_dir, submission_id) is None
        assert WorkQueue(queue_dir).result_ids() == set()

    def test_live_submissions_results_are_spared(self, tmp_path):
        """Results a non-terminal submission references survive gc
        regardless of age — gc against a serving daemon is safe."""
        queue_dir = tmp_path / "q"
        submission_id, status = self.run_one(queue_dir)
        # Rewind the submission to "running", as if the daemon were
        # mid-collection when the gc cron fired.
        status_path = (queue_dir / "submissions" / "status" /
                       f"{submission_id}.json")
        live = dict(status)
        live["state"] = "running"
        status_path.write_text(json.dumps(live))
        report = gc_queue(queue_dir, keep_days=0)
        assert report.eviction.results == ()
        assert report.submissions == ()
        assert WorkQueue(queue_dir).result_ids() \
            == set(status["task_ids"])

    def test_keep_days_validates(self, tmp_path):
        with pytest.raises(ValueError, match="keep_days"):
            gc_queue(tmp_path / "q", keep_days=-1)
