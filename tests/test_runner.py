"""Tests for the parallel sweep runner (``repro.runner``).

The contract under test: execution mode (serial, process pool, cache)
can never change a result.  Seeds derive from the run seed and the
unit spec only, results are keyed by the spec hash, and a host without
multiprocessing still completes every unit.
"""

import pytest

from repro.analysis import (DmsdSteadyState, NoDvfsSteadyState,
                            RmsdSteadyState, run_sweep, sweep_units)
from repro.noc import GHZ, SimBudget
from repro.runner import (ExecutionContext, SweepRunner, UnitCache,
                          WorkUnit, derive_unit_seed, unit_generator)
from repro.runner import executor as executor_mod
from repro.traffic import PatternTraffic, make_pattern

TINY_BUDGET = SimBudget(200, 500, 1500)


@pytest.fixture
def factory(tiny_config):
    mesh = tiny_config.make_mesh()
    pattern = make_pattern("uniform", mesh)
    return lambda rate: PatternTraffic(pattern, rate)


def make_units(config, factory, rates=(0.05, 0.1, 0.15), seed=7,
               strategy=None):
    return sweep_units(config, factory, list(rates),
                       strategy or NoDvfsSteadyState(), TINY_BUDGET, seed)


def result_fingerprint(unit_result):
    """Everything that should be schedule-independent."""
    r = unit_result.result
    return (unit_result.policy, unit_result.x, unit_result.freq_hz,
            unit_result.seed, r.mean_latency_cycles, r.mean_delay_ns,
            r.p99_delay_ns, r.measured_created, r.measured_delivered,
            r.accepted_node_rate, r.backlog_delta_flits)


class TestSeedDerivation:
    def test_deterministic(self):
        assert (derive_unit_seed(3, "ab" * 32)
                == derive_unit_seed(3, "ab" * 32))

    def test_varies_with_run_seed_and_digest(self):
        assert derive_unit_seed(3, "ab" * 32) != derive_unit_seed(4, "ab" * 32)
        assert derive_unit_seed(3, "ab" * 32) != derive_unit_seed(3, "cd" * 32)

    def test_generator_streams_differ(self):
        a = unit_generator(1, "ab" * 32).random(4)
        b = unit_generator(1, "cd" * 32).random(4)
        assert (a != b).any()

    def test_unit_seed_stable_across_orderings(self, tiny_config, factory):
        forward = make_units(tiny_config, factory)
        backward = make_units(tiny_config, factory)[::-1]
        seeds_fwd = {u.x: u.seed() for u in forward}
        seeds_bwd = {u.x: u.seed() for u in backward}
        assert seeds_fwd == seeds_bwd

    def test_unit_seeds_pairwise_distinct(self, tiny_config, factory):
        units = make_units(tiny_config, factory)
        seeds = [u.seed() for u in units]
        assert len(set(seeds)) == len(seeds)

    def test_digest_ignores_object_identity(self, tiny_config):
        """Two separately built but equal specs share one digest."""
        def build():
            mesh = tiny_config.make_mesh()
            traffic = PatternTraffic(make_pattern("uniform", mesh), 0.1)
            return WorkUnit("rmsd", 0.1, tiny_config, traffic,
                            RmsdSteadyState(0.4), TINY_BUDGET, 7)
        assert build().digest() == build().digest()

    def test_digest_sees_strategy_params(self, tiny_config, factory):
        a = make_units(tiny_config, factory, rates=(0.1,),
                       strategy=RmsdSteadyState(0.4))[0]
        b = make_units(tiny_config, factory, rates=(0.1,),
                       strategy=RmsdSteadyState(0.5))[0]
        assert a.digest() != b.digest()

    def test_digest_sees_run_seed(self, tiny_config, factory):
        a = make_units(tiny_config, factory, rates=(0.1,), seed=1)[0]
        b = make_units(tiny_config, factory, rates=(0.1,), seed=2)[0]
        assert a.digest() != b.digest()


class TestSerialParallelEquivalence:
    def test_identical_results(self, tiny_config, factory):
        units = make_units(tiny_config, factory)
        serial = SweepRunner(jobs=1).run(units)
        parallel = SweepRunner(jobs=3).run(units)
        assert ([result_fingerprint(r) for r in serial]
                == [result_fingerprint(r) for r in parallel])

    def test_order_preserved(self, tiny_config, factory):
        units = make_units(tiny_config, factory)
        out = SweepRunner(jobs=3).run(units)
        assert [r.x for r in out] == [u.x for u in units]

    def test_submission_order_irrelevant(self, tiny_config, factory):
        units = make_units(tiny_config, factory)
        fwd = SweepRunner(jobs=1).run(units)
        bwd = SweepRunner(jobs=1).run(units[::-1])
        assert ([result_fingerprint(r) for r in fwd]
                == [result_fingerprint(r) for r in bwd][::-1])

    def test_run_sweep_equivalence_with_dmsd(self, tiny_config, factory):
        """The full sweep API, with the multi-simulation DMSD search."""
        strat = DmsdSteadyState(target_delay_ns=40.0, iterations=4,
                                search_budget=TINY_BUDGET)
        xs = [0.05, 0.15]
        serial = run_sweep(tiny_config, factory, xs, strat, TINY_BUDGET,
                           seed=9, context=ExecutionContext(
                               backend="serial", jobs=1, cache=None))
        parallel = run_sweep(tiny_config, factory, xs, strat, TINY_BUDGET,
                             seed=9, context=ExecutionContext(
                                 backend="pool", jobs=2, cache=None))
        assert ([(p.freq_hz, p.delay_ns, p.latency_cycles)
                 for p in serial.points]
                == [(p.freq_hz, p.delay_ns, p.latency_cycles)
                    for p in parallel.points])


class TestCache:
    def test_second_run_is_served_from_cache(self, tiny_config, factory):
        cache = UnitCache()
        runner = SweepRunner(jobs=1, cache=cache)
        units = make_units(tiny_config, factory)
        first = runner.run(units)
        second = runner.run(units)
        assert not any(r.from_cache for r in first)
        assert all(r.from_cache for r in second)
        assert ([result_fingerprint(r) for r in first]
                == [result_fingerprint(r) for r in second])
        assert runner.last_report.cache_hits == len(units)
        assert runner.last_report.executed == 0

    def test_hit_miss_accounting(self, tiny_config, factory):
        cache = UnitCache()
        runner = SweepRunner(jobs=1, cache=cache)
        units = make_units(tiny_config, factory)
        runner.run(units)
        assert cache.stats.misses == len(units)
        assert cache.stats.hits == 0
        runner.run(units)
        assert cache.stats.hits == len(units)
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert len(cache) == len(units)

    def test_duplicate_units_in_one_batch_run_once(self, tiny_config,
                                                   factory):
        cache = UnitCache()
        runner = SweepRunner(jobs=1, cache=cache)
        units = make_units(tiny_config, factory, rates=(0.1, 0.1, 0.1))
        out = runner.run(units)
        assert runner.last_report.executed == 1
        assert len({result_fingerprint(r) for r in out}) == 1

    def test_shared_across_equal_specs(self, tiny_config):
        """A rebuilt-but-equal unit hits the cache (cross-figure reuse)."""
        cache = UnitCache()
        runner = SweepRunner(jobs=1, cache=cache)

        def units():
            mesh = tiny_config.make_mesh()
            pattern = make_pattern("uniform", mesh)
            return make_units(tiny_config,
                              lambda r: PatternTraffic(pattern, r))
        runner.run(units())
        again = runner.run(units())
        assert all(r.from_cache for r in again)

    def test_no_cache_runner_reruns(self, tiny_config, factory):
        runner = SweepRunner(jobs=1, cache=None)
        units = make_units(tiny_config, factory, rates=(0.05,))
        runner.run(units)
        runner.run(units)
        assert runner.totals.executed == 2
        assert runner.totals.cache_hits == 0

    def test_clear_resets(self, tiny_config, factory):
        cache = UnitCache()
        runner = SweepRunner(jobs=1, cache=cache)
        runner.run(make_units(tiny_config, factory, rates=(0.05,)))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0


class TestSerialFallback:
    def test_jobs_1_never_uses_a_pool(self, tiny_config, factory,
                                      monkeypatch):
        def boom(*a, **k):
            raise AssertionError("jobs=1 must not create a pool")
        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", boom)
        runner = SweepRunner(jobs=1)
        out = runner.run(make_units(tiny_config, factory))
        assert len(out) == 3
        assert runner.last_report.parallel is False

    def test_falls_back_when_pool_unavailable(self, tiny_config, factory,
                                              monkeypatch):
        """No multiprocessing on the host: same results, serially."""
        def no_pool(*a, **k):
            raise OSError("no semaphores here")
        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", no_pool)
        units = make_units(tiny_config, factory)
        degraded = SweepRunner(jobs=4)
        out = degraded.run(units)
        assert degraded.last_report.parallel is False
        clean = SweepRunner(jobs=1).run(units)
        assert ([result_fingerprint(r) for r in out]
                == [result_fingerprint(r) for r in clean])

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)


class TestReporting:
    def test_report_accounting(self, tiny_config, factory):
        runner = SweepRunner(jobs=1, cache=UnitCache())
        units = make_units(tiny_config, factory)
        runner.run(units)
        rep = runner.last_report
        assert rep.total_units == 3
        assert rep.executed == 3
        assert rep.cache_hits == 0
        assert rep.elapsed_s > 0
        assert rep.busy_s > 0
        assert rep.units_per_s > 0
        assert "3 units" in rep.render()
        assert runner.totals.total_units == 3

    def test_progress_callback_sees_every_unit(self, tiny_config, factory):
        seen = []
        runner = SweepRunner(
            jobs=1, progress=lambda done, total, res: seen.append(
                (done, total, res.x)))
        runner.run(make_units(tiny_config, factory))
        assert [s[0] for s in seen] == [1, 2, 3]
        assert all(s[1] == 3 for s in seen)
