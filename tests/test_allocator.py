"""Unit tests for the round-robin arbitration primitives."""

import pytest

from repro.noc.allocator import MatrixArbiterPool, RoundRobinArbiter


class TestRoundRobinArbiter:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)

    def test_no_requests_no_grant(self):
        assert RoundRobinArbiter(4).grant([]) is None

    def test_single_request_granted(self):
        assert RoundRobinArbiter(4).grant([2]) == 2

    def test_rotates_after_grant(self):
        arb = RoundRobinArbiter(3)
        assert arb.grant([0, 1, 2]) == 0
        assert arb.grant([0, 1, 2]) == 1
        assert arb.grant([0, 1, 2]) == 2
        assert arb.grant([0, 1, 2]) == 0

    def test_skips_non_requesting_lines(self):
        arb = RoundRobinArbiter(4)
        arb.grant([0])          # pointer now at 1
        assert arb.grant([3]) == 3

    def test_no_starvation_under_contention(self):
        """Every continuously-requesting line is granted once per round."""
        arb = RoundRobinArbiter(5)
        grants = [arb.grant([0, 2, 4]) for _ in range(9)]
        for line in (0, 2, 4):
            assert grants.count(line) == 3

    def test_fairness_two_requesters(self):
        arb = RoundRobinArbiter(2)
        grants = [arb.grant([0, 1]) for _ in range(10)]
        assert grants.count(0) == grants.count(1) == 5

    def test_reset_restores_pointer(self):
        arb = RoundRobinArbiter(3)
        arb.grant([0, 1, 2])
        arb.reset()
        assert arb.grant([0, 1, 2]) == 0

    def test_accepts_any_iterable(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant({1: "x", 3: "y"}) in (1, 3)


class TestMatrixArbiterPool:
    def test_independent_pointers(self):
        pool = MatrixArbiterPool(num_resources=2, num_requesters=3)
        assert pool.grant(0, [0, 1, 2]) == 0
        # Resource 1 has its own pointer, still at 0.
        assert pool.grant(1, [0, 1, 2]) == 0
        assert pool.grant(0, [0, 1, 2]) == 1

    def test_reset_all(self):
        pool = MatrixArbiterPool(2, 3)
        pool.grant(0, [0, 1])
        pool.reset()
        assert pool.grant(0, [0, 1]) == 0
