"""Unit tests for the activity-based power model."""

import pytest

from repro.noc import NocConfig, PAPER_BASELINE
from repro.noc.stats import ActivityCounters, PowerWindow
from repro.power import (DEFAULT_28NM, EnergyParameters, PowerBreakdown,
                         PowerModel)
from repro.power.report import breakdown_table, comparison_row

GHZ = 1e9


def window(freq_hz=1 * GHZ, duration_ns=1000.0, **activity):
    return PowerWindow(duration_ns=duration_ns,
                       cycles=int(duration_ns * freq_hz / 1e9),
                       freq_hz=freq_hz,
                       activity=ActivityCounters(**activity))


@pytest.fixture
def model():
    return PowerModel(PAPER_BASELINE)


class TestWindowPower:
    def test_idle_window_is_clock_plus_leakage(self, model):
        p = model.window_power(window())
        assert p.buffer_mw == 0.0
        assert p.xbar_mw == 0.0
        assert p.clock_mw > 0.0
        assert p.leakage_mw > 0.0
        assert p.total_mw == pytest.approx(model.idle_power_mw(1 * GHZ))

    def test_activity_adds_dynamic_power(self, model):
        idle = model.window_power(window()).total_mw
        busy = model.window_power(
            window(buffer_writes=10_000, buffer_reads=10_000,
                   xbar_traversals=10_000, link_flits=8_000)).total_mw
        assert busy > idle

    def test_power_scales_down_with_frequency(self, model):
        """Same event count over the same wall time, lower V and f."""
        hi = model.window_power(window(freq_hz=1 * GHZ,
                                       buffer_writes=10_000))
        lo = model.window_power(window(freq_hz=GHZ / 3,
                                       buffer_writes=10_000))
        assert lo.total_mw < hi.total_mw
        # Event energy scales with (V/Vnom)^2 ~ (0.56/0.9)^2 ~ 0.39.
        v_lo = model.technology.voltage_for(GHZ / 3)
        assert lo.buffer_mw / hi.buffer_mw == pytest.approx(
            (v_lo / 0.9) ** 2, rel=1e-6)
        assert v_lo == pytest.approx(0.56, abs=0.005)

    def test_leakage_always_present(self, model):
        p = model.window_power(window(freq_hz=GHZ / 3))
        assert p.leakage_mw > 0.0

    def test_rejects_empty_window(self, model):
        with pytest.raises(ValueError):
            model.window_power(window(duration_ns=0.0))

    def test_linear_in_event_count(self, model):
        one = model.window_power(window(link_flits=1000)).link_mw
        two = model.window_power(window(link_flits=2000)).link_mw
        assert two == pytest.approx(2 * one)


class TestEvaluate:
    def test_single_window_passthrough(self, model):
        w = window(buffer_writes=5000)
        assert model.evaluate([w]).total_mw \
            == pytest.approx(model.window_power(w).total_mw)

    def test_time_weighted_average(self, model):
        w1 = window(duration_ns=1000.0, freq_hz=1 * GHZ)
        w2 = window(duration_ns=3000.0, freq_hz=GHZ / 3)
        avg = model.evaluate([w1, w2]).total_mw
        p1 = model.window_power(w1).total_mw
        p2 = model.window_power(w2).total_mw
        assert avg == pytest.approx((p1 * 1000 + p2 * 3000) / 4000)

    def test_rejects_no_windows(self, model):
        with pytest.raises(ValueError):
            model.evaluate([])


class TestCalibration:
    def test_idle_floor_magnitude(self, model):
        """5x5 idle at 1 GHz: tens of mW (paper Fig. 6 low-load zone)."""
        idle = model.idle_power_mw(1 * GHZ)
        assert 30.0 < idle < 90.0

    def test_power_scales_with_mesh_size(self):
        small = PowerModel(NocConfig(width=4, height=4))
        large = PowerModel(NocConfig(width=8, height=8))
        assert large.idle_power_mw(1 * GHZ) \
            > 2 * small.idle_power_mw(1 * GHZ)

    def test_min_freq_idle_well_below_max(self, model):
        assert model.idle_power_mw(GHZ / 3) < 0.25 * model.idle_power_mw(GHZ)


class TestEnergyParameters:
    def test_rejects_negative_energy(self):
        with pytest.raises(ValueError):
            EnergyParameters(e_link_pj=-1.0)

    def test_rejects_weak_leakage_exponent(self):
        with pytest.raises(ValueError):
            EnergyParameters(leak_exponent=0.5)

    def test_with_replaces(self):
        p = DEFAULT_28NM.with_(e_link_pj=9.0)
        assert p.e_link_pj == 9.0
        assert p.e_xbar_pj == DEFAULT_28NM.e_xbar_pj


class TestBreakdown:
    def test_total_is_sum(self):
        b = PowerBreakdown(1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
        assert b.total_mw == pytest.approx(21.0)
        assert b.dynamic_mw == pytest.approx(15.0)

    def test_add_and_scale(self):
        b = PowerBreakdown(1, 1, 1, 1, 1, 1)
        assert (b + b).total_mw == pytest.approx(12.0)
        assert b.scaled(0.5).total_mw == pytest.approx(3.0)

    def test_report_renders(self):
        b = PowerBreakdown(1, 2, 3, 4, 5, 6)
        text = breakdown_table(b)
        assert "crossbar" in text
        assert "21.00 mW" in text

    def test_comparison_row(self):
        row = comparison_row("NoDVFS vs DMSD", 200.0, 100.0)
        assert "2.00x" in row
