"""Tests for the execution-backend API (plan, backends, context).

The contract under test: the planner only changes *how* units execute
(cache service, batch grouping, sharding), never *what* they compute —
``backend="batched"`` is bit-identical to serial per-unit execution,
group accounting is correct, and the pre-context spellings keep
working.
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (DmsdSteadyState, NoDvfsSteadyState,
                            RmsdSteadyState, run_sweep, sweep_units)
from repro.experiments import Workbench
from repro.experiments.common import Profile
from repro.noc import NocConfig, SimBudget
from repro.runner import (BatchGroup, ExecutionContext, ExecutionPlan,
                          SweepRunner, UnitCache, WorkUnit,
                          backend_names, batch_eligible, make_backend)
from repro.traffic import PatternTraffic, make_pattern

TINY_BUDGET = SimBudget(200, 500, 1500)
OTHER_BUDGET = SimBudget(150, 400, 1200)

POLICY_STRATEGIES = (
    NoDvfsSteadyState(),
    RmsdSteadyState(lambda_max=0.4),
    DmsdSteadyState(target_delay_ns=40.0, iterations=3,
                    search_budget=OTHER_BUDGET),
)


@pytest.fixture
def factory(tiny_config):
    mesh = tiny_config.make_mesh()
    pattern = make_pattern("uniform", mesh)
    return lambda rate: PatternTraffic(pattern, rate)


def make_units(config, factory, rates=(0.05, 0.1, 0.15), seed=7,
               strategy=None, engine="fast", budget=TINY_BUDGET):
    return sweep_units(config, factory, list(rates),
                       strategy or NoDvfsSteadyState(), budget, seed,
                       engine)


def fingerprint(unit_result):
    r = unit_result.result
    return (unit_result.policy, unit_result.x, unit_result.freq_hz,
            unit_result.seed, unit_result.digest,
            r.mean_latency_cycles, r.mean_delay_ns, r.p99_delay_ns,
            r.measured_created, r.measured_delivered,
            r.accepted_node_rate, r.backlog_delta_flits,
            r.measure_duration_ns,
            tuple((w.duration_ns, w.cycles, w.freq_hz,
                   tuple(sorted(w.activity.as_dict().items())))
                  for w in r.power_windows))


class TestBackendRegistry:
    def test_all_backends_registered(self):
        assert set(backend_names()) == {"serial", "pool", "batched",
                                        "distributed"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("warp")
        with pytest.raises(ValueError, match="unknown backend"):
            ExecutionContext(backend="warp")


class TestExecutionContext:
    def test_auto_resolves_batched_for_fast_engine(self):
        assert (ExecutionContext(engine="fast").resolved_backend()
                == "batched")

    def test_auto_resolves_pool_then_serial_for_reference(self):
        assert (ExecutionContext(jobs=4).resolved_backend() == "pool")
        assert ExecutionContext().resolved_backend() == "serial"

    def test_explicit_backend_wins_over_auto_rule(self):
        ctx = ExecutionContext(backend="serial", engine="fast")
        assert ctx.resolved_backend() == "serial"

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionContext(jobs=0)
        with pytest.raises(ValueError):
            ExecutionContext(engine="warp")

    def test_context_runner_is_shared(self):
        ctx = ExecutionContext()
        assert ctx.runner is ctx.runner
        runner = SweepRunner(context=ctx)
        # A runner constructed on a fresh context becomes its runner.
        ctx2 = ExecutionContext()
        runner2 = SweepRunner(context=ctx2)
        assert ctx2.runner is runner2
        assert runner.context is ctx


class TestPlanner:
    def test_cache_hits_leave_plan_empty(self, tiny_config, factory):
        cache = UnitCache()
        units = make_units(tiny_config, factory)
        ExecutionContext(backend="serial", cache=cache).run(units)
        plan = ExecutionPlan(units, cache)
        assert plan.cache_hits == len(units)
        assert plan.todo == []
        plan.group_batches()
        assert plan.groups == [] and plan.singles == []

    def test_duplicates_collapse(self, tiny_config, factory):
        units = make_units(tiny_config, factory, rates=(0.1, 0.1, 0.1))
        plan = ExecutionPlan(units, None)
        assert len(plan.todo) == 1
        assert plan.pending[units[0].digest()] == [0, 1, 2]

    def test_fast_units_group_reference_units_stay_single(
            self, tiny_config, factory):
        fast = make_units(tiny_config, factory, engine="fast")
        ref = make_units(tiny_config, factory, engine="reference")
        plan = ExecutionPlan(fast + ref, None)
        plan.group_batches()
        assert [len(g.units) for g in plan.groups] == [len(fast)]
        assert plan.singles == plan.todo[len(fast):]
        assert all(not batch_eligible(u) for u in plan.singles)

    def test_heterogeneous_clocks_fall_back_to_per_unit(
            self, tiny_config, factory):
        hetero = tiny_config.with_(
            node_freqs_hz=tuple([1e9] * tiny_config.num_nodes))
        mesh = hetero.make_mesh()
        pattern = make_pattern("uniform", mesh)
        units = make_units(hetero, lambda r: PatternTraffic(pattern, r),
                           engine="fast")
        plan = ExecutionPlan(units, None)
        plan.group_batches()
        assert plan.groups == []
        assert len(plan.singles) == len(units)

    def test_mixed_budgets_split_groups(self, tiny_config, factory):
        a = make_units(tiny_config, factory, budget=TINY_BUDGET)
        b = make_units(tiny_config, factory, budget=OTHER_BUDGET)
        plan = ExecutionPlan(a + b, None)
        plan.group_batches()
        assert len(plan.groups) == 2
        assert {g.budget for g in plan.groups} == {TINY_BUDGET,
                                                  OTHER_BUDGET}

    def test_lone_eligible_unit_stays_single(self, tiny_config, factory):
        units = make_units(tiny_config, factory, rates=(0.1,))
        plan = ExecutionPlan(units, None)
        plan.group_batches()
        assert plan.groups == []
        assert len(plan.singles) == 1

    def test_sharding_caps_width(self, tiny_config, factory):
        rates = tuple(0.01 + 0.002 * i for i in range(10))
        units = make_units(tiny_config, factory, rates=rates)
        plan = ExecutionPlan(units, None)
        plan.group_batches(jobs=1, max_shard=4)
        # Balanced split: 10 units under a 4-wide cap give [4, 3, 3],
        # not [4, 4, 2] — no shard is ever more than one unit wider
        # than another.
        assert [len(g.units) for g in plan.groups] == [4, 3, 3]
        flattened = [u for g in plan.groups for u in g.units]
        assert flattened == plan.todo      # submission order preserved

    def test_sharding_balances_across_jobs(self, tiny_config, factory):
        rates = tuple(0.01 + 0.015 * i for i in range(24))
        units = make_units(tiny_config, factory, rates=rates)
        plan = ExecutionPlan(units, None)
        plan.group_batches(jobs=3)
        assert [len(g.units) for g in plan.groups] == [8, 8, 8]

    def test_sharding_respects_batch_floor(self, tiny_config, factory):
        # The PR-6 regression: jobs far above the group size used to
        # shred the group into 1-unit shards, destroying the batched
        # kernel's vectorization win.  The MIN_SHARD_POINTS floor keeps
        # shards at an efficient width no matter the fan-out.
        rates = tuple(0.01 + 0.015 * i for i in range(24))
        units = make_units(tiny_config, factory, rates=rates)
        for jobs in (4, 24, 200):
            plan = ExecutionPlan(units, None)
            plan.group_batches(jobs=jobs)
            widths = [len(g.units) for g in plan.groups]
            assert widths == [6, 6, 6, 6], (jobs, widths)

    def test_sharding_floor_never_exceeds_group(self, tiny_config,
                                                factory):
        # Groups smaller than the floor still shard as one whole
        # group (the floor clamps, it never pads).
        rates = tuple(0.01 + 0.002 * i for i in range(4))
        units = make_units(tiny_config, factory, rates=rates)
        plan = ExecutionPlan(units, None)
        plan.group_batches(jobs=16)
        assert [len(g.units) for g in plan.groups] == [4]

    def test_group_split_validates(self, tiny_config, factory):
        units = make_units(tiny_config, factory)
        group = BatchGroup(tiny_config, TINY_BUDGET, "fast", list(units))
        with pytest.raises(ValueError):
            group.split(0)


# --- property-based planner invariants (hypothesis) -------------------

#: Planner-property unit pool: two engines, two budgets, and configs
#: with and without heterogeneous node clocks (the batch-eligibility
#: boundary), drawn with heavy duplication so cache collapse triggers.
PROP_CONFIGS = (
    NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
              packet_length=3),
    NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
              packet_length=3).with_(node_freqs_hz=tuple([1e9] * 9)),
    NocConfig(width=4, height=3, num_vcs=2, vc_buf_depth=2,
              packet_length=4),
)
_PROP_PATTERNS = tuple(make_pattern("uniform", config.make_mesh())
                       for config in PROP_CONFIGS)
PROP_RATES = (0.02, 0.05, 0.08, 0.1, 0.12, 0.15)

#: Sentinel a stub cache serves (the planner only checks ``is not
#: None``; no simulation ever runs in these tests).
CACHE_HIT = object()

PLANNER_SETTINGS = settings(max_examples=50, deadline=None)


@st.composite
def unit_lists(draw):
    n = draw(st.integers(min_value=0, max_value=24))
    units = []
    for _ in range(n):
        i = draw(st.integers(0, len(PROP_CONFIGS) - 1))
        rate = draw(st.sampled_from(PROP_RATES))
        units.append(WorkUnit(
            policy="no-dvfs", x=rate, config=PROP_CONFIGS[i],
            traffic=PatternTraffic(_PROP_PATTERNS[i], rate),
            strategy=NoDvfsSteadyState(),
            budget=draw(st.sampled_from((TINY_BUDGET, OTHER_BUDGET))),
            run_seed=draw(st.sampled_from((3, 7))),
            engine=draw(st.sampled_from(("fast", "reference")))))
    return units


class _StubCache:
    """Serves a hit for a deterministic pseudo-random digest subset."""

    def __init__(self, modulus):
        self.modulus = modulus

    def hits(self, digest):
        return int(digest[:8], 16) % self.modulus == 0

    def get(self, digest):
        return CACHE_HIT if self.hits(digest) else None


class TestPlannerProperties:
    """Hypothesis: the planner invariants the example tests above probe
    hold for *every* random submission — each unit lands in exactly one
    of cache-hit / pending, batch groups never mix (config, budget,
    engine), and shard sizes respect the cap."""

    @PLANNER_SETTINGS
    @given(units=unit_lists())
    def test_every_submission_is_served_or_pending_once(self, units):
        plan = ExecutionPlan(units, None)
        indices = sorted(i for idxs in plan.pending.values()
                         for i in idxs)
        assert indices == list(range(len(units)))
        digests = [u.digest() for u in units]
        # exactly one executing unit per distinct digest
        assert sorted(u.digest() for u in plan.todo) == sorted(set(digests))
        for digest, idxs in plan.pending.items():
            assert all(digests[i] == digest for i in idxs)

    @PLANNER_SETTINGS
    @given(units=unit_lists(), modulus=st.integers(2, 5))
    def test_cache_hits_and_pending_partition_the_submission(
            self, units, modulus):
        cache = _StubCache(modulus)
        plan = ExecutionPlan(units, cache)
        hits = 0
        for i, unit in enumerate(units):
            if cache.hits(unit.digest()):
                assert plan.results[i] is CACHE_HIT
                hits += 1
            else:
                assert plan.results[i] is None
                assert i in plan.pending[unit.digest()]
        assert plan.cache_hits == hits
        assert not any(cache.hits(u.digest()) for u in plan.todo)

    @PLANNER_SETTINGS
    @given(units=unit_lists(), jobs=st.integers(1, 6),
           max_shard=st.integers(1, 8))
    def test_grouping_partitions_todo_without_mixing(self, units, jobs,
                                                     max_shard):
        plan = ExecutionPlan(units, None)
        plan.group_batches(jobs=jobs, max_shard=max_shard)
        grouped = [u for g in plan.groups for u in g.units]
        # every pending unit in exactly one shard or on the unit path
        assert (sorted(u.digest() for u in grouped + plan.singles)
                == sorted(u.digest() for u in plan.todo))
        for group in plan.groups:
            assert 1 <= len(group.units) <= max_shard
            assert all(batch_eligible(u) for u in group.units)
            assert all((u.config, u.budget, u.engine)
                       == (group.config, group.budget, group.engine)
                       for u in group.units)

    @PLANNER_SETTINGS
    @given(units=unit_lists(), jobs=st.integers(1, 6),
           max_shard=st.integers(1, 8))
    def test_grouping_preserves_order_and_strands_no_one(self, units,
                                                         jobs,
                                                         max_shard):
        plan = ExecutionPlan(units, None)
        plan.group_batches(jobs=jobs, max_shard=max_shard)
        eligible = [u for u in plan.todo if batch_eligible(u)]
        by_class: dict = {}
        for u in eligible:
            by_class.setdefault((u.config, u.budget, u.engine),
                                []).append(u)
        for key, members in by_class.items():
            sharded = [u for g in plan.groups
                       if (g.config, g.budget, g.engine) == key
                       for u in g.units]
            if len(members) == 1:
                # a lone eligible unit gains nothing from batching
                assert sharded == []
                assert members[0] in plan.singles
            else:
                # shards concatenate back to submission order
                assert [u.digest() for u in sharded] \
                    == [u.digest() for u in members]
        assert all(not batch_eligible(u) or
                   len(by_class[(u.config, u.budget, u.engine)]) == 1
                   for u in plan.singles)


class TestBatchedDifferential:
    """The acceptance gate: batched == serial, bit for bit."""

    def sweep_results(self, config, factory, backend, jobs=1):
        ctx = ExecutionContext(backend=backend, jobs=jobs, cache=None,
                               engine="fast")
        units = []
        for strategy in POLICY_STRATEGIES:
            units.extend(make_units(config, factory,
                                    rates=(0.05, 0.1, 0.15),
                                    strategy=strategy))
        return ctx.run(units)

    def test_three_policy_sweep_bit_identical(self, tiny_config, factory):
        serial = self.sweep_results(tiny_config, factory, "serial")
        batched = self.sweep_results(tiny_config, factory, "batched")
        assert ([fingerprint(r) for r in serial]
                == [fingerprint(r) for r in batched])

    def test_batched_with_workers_bit_identical(self, tiny_config,
                                                factory):
        serial = self.sweep_results(tiny_config, factory, "serial")
        sharded = self.sweep_results(tiny_config, factory, "batched",
                                     jobs=3)
        assert ([fingerprint(r) for r in serial]
                == [fingerprint(r) for r in sharded])

    def test_batched_results_carry_power_windows(self, tiny_config,
                                                 factory):
        batched = self.sweep_results(tiny_config, factory, "batched")
        for result in batched:
            assert len(result.result.power_windows) == 1
            window = result.result.power_windows[0]
            assert window.activity.total_events() > 0
            assert window.freq_hz == result.freq_hz

    def test_run_sweep_auto_context_batches(self, tiny_config, factory):
        ctx = ExecutionContext(engine="fast")   # backend="auto"
        series = run_sweep(tiny_config, factory, [0.05, 0.1],
                           NoDvfsSteadyState(), TINY_BUDGET, seed=9,
                           context=ctx)
        assert ctx.runner.last_report.batched_units == 2
        assert ctx.runner.last_report.groups == 1
        serial_ctx = ExecutionContext(backend="serial", cache=None,
                                      engine="fast")
        serial = run_sweep(tiny_config, factory, [0.05, 0.1],
                           NoDvfsSteadyState(), TINY_BUDGET, seed=9,
                           context=serial_ctx)
        assert ([(p.freq_hz, p.delay_ns, p.power_mw)
                 for p in series.points]
                == [(p.freq_hz, p.delay_ns, p.power_mw)
                    for p in serial.points])


class TestBatchedAccounting:
    def test_report_counts_groups_and_units(self, tiny_config, factory):
        ctx = ExecutionContext(backend="batched", cache=UnitCache(),
                               engine="fast")
        units = make_units(tiny_config, factory)
        ctx.run(units)
        report = ctx.runner.last_report
        assert report.backend == "batched"
        assert report.total_units == 3
        assert report.executed == 3
        assert report.groups == 1
        assert report.batched_units == 3
        assert report.parallel is False
        assert report.elapsed_s > 0 and report.busy_s > 0
        assert "batched" in report.render()
        totals = ctx.runner.totals
        assert totals.groups == 1 and totals.batched_units == 3
        assert "batched" in totals.render()

    def test_progress_fires_per_unit_in_batched_group(self, tiny_config,
                                                      factory):
        seen = []
        ctx = ExecutionContext(
            backend="batched", cache=None, engine="fast",
            progress=lambda done, total, res: seen.append((done, total)))
        ctx.run(make_units(tiny_config, factory))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_cache_entries_shared_with_serial_backend(self, tiny_config,
                                                      factory):
        """A batched run fills the cache with per-unit entries that a
        serial context recognizes (same digests)."""
        cache = UnitCache()
        units = make_units(tiny_config, factory)
        ExecutionContext(backend="batched", cache=cache,
                         engine="fast").run(units)
        serial = ExecutionContext(backend="serial", cache=cache,
                                  engine="fast")
        again = serial.run(units)
        assert all(r.from_cache for r in again)
        assert serial.runner.last_report.executed == 0

    def test_mixed_plan_executes_everything(self, tiny_config, factory):
        """Groups + singles in one submission, order preserved."""
        fast = make_units(tiny_config, factory, engine="fast")
        ref = make_units(tiny_config, factory, engine="reference",
                         rates=(0.05,))
        ctx = ExecutionContext(backend="batched", cache=None,
                               engine="fast")
        out = ctx.run(fast + ref)
        assert [r.x for r in out] == [u.x for u in fast + ref]
        report = ctx.runner.last_report
        assert report.batched_units == 3
        assert report.executed == 4


class TestBackwardCompatShims:
    def test_run_sweep_old_and_new_spellings_identical(self, tiny_config,
                                                       factory):
        with pytest.warns(DeprecationWarning):
            old = run_sweep(tiny_config, factory, [0.05, 0.1],
                            RmsdSteadyState(0.4), TINY_BUDGET, seed=5,
                            runner=SweepRunner(jobs=1), engine="fast")
        new = run_sweep(tiny_config, factory, [0.05, 0.1],
                        RmsdSteadyState(0.4), TINY_BUDGET, seed=5,
                        context=ExecutionContext(backend="serial",
                                                 cache=None,
                                                 engine="fast"))
        assert ([(p.x, p.freq_hz, p.delay_ns, p.power_mw)
                 for p in old.points]
                == [(p.x, p.freq_hz, p.delay_ns, p.power_mw)
                    for p in new.points])

    def test_run_sweep_rejects_both_spellings(self, tiny_config, factory):
        with pytest.raises(TypeError):
            run_sweep(tiny_config, factory, [0.05],
                      NoDvfsSteadyState(), TINY_BUDGET,
                      runner=SweepRunner(jobs=1),
                      context=ExecutionContext())

    def test_workbench_old_spelling_warns_and_matches(self, tiny_config):
        profile = Profile("tiny", TINY_BUDGET, sweep_points=2,
                          dmsd_iterations=2, saturation_iterations=2)
        with pytest.warns(DeprecationWarning):
            old = Workbench(profile=profile, seed=5, jobs=1,
                            unit_cache=True, engine="fast")
        new = Workbench(profile=profile, seed=5,
                        context=ExecutionContext(engine="fast"))
        assert old.engine == new.engine == "fast"
        rates = (0.05, 0.1)
        old_series = old.pattern_sweep(tiny_config, "uniform", "no-dvfs",
                                       rates)
        new_series = new.pattern_sweep(tiny_config, "uniform", "no-dvfs",
                                       rates)
        assert ([(p.x, p.freq_hz, p.delay_ns, p.power_mw)
                 for p in old_series.points]
                == [(p.x, p.freq_hz, p.delay_ns, p.power_mw)
                    for p in new_series.points])

    def test_workbench_rejects_both_spellings(self):
        with pytest.raises(TypeError):
            Workbench(jobs=2, context=ExecutionContext())

    def test_new_spellings_do_not_warn(self, tiny_config, factory):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_sweep(tiny_config, factory, [0.05], NoDvfsSteadyState(),
                      TINY_BUDGET, seed=5,
                      context=ExecutionContext(backend="serial",
                                               cache=None))
            Workbench(context=ExecutionContext())
