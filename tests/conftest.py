"""Shared fixtures for the test suite.

Tests use deliberately tiny configurations so the whole suite stays
fast; the paper-scale 5x5/8x8 configurations are exercised by the
benchmark harness instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.noc import GHZ, Mesh, NocConfig
from repro.noc.stats import MeasurementSample


def sample(delay_ns=100.0, node_lambda_flits=50, node_cycles=100,
           num_nodes=4, freq_hz=1 * GHZ) -> MeasurementSample:
    """One synthetic controller measurement window.

    Shared by the policy/controller unit tests (``test_policy``,
    ``test_rmsd``, ``test_dmsd``, ``test_quantize``); import it with
    ``from conftest import sample``.
    """
    return MeasurementSample(
        window_cycles=100, window_node_cycles=node_cycles,
        window_ns=100.0, generated_flits=node_lambda_flits,
        delivered_packets=10, mean_delay_ns=delay_ns,
        mean_latency_cycles=delay_ns, freq_hz=freq_hz, time_ns=1000.0,
        num_nodes=num_nodes)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def mesh3() -> Mesh:
    return Mesh(3, 3)


@pytest.fixture
def mesh4() -> Mesh:
    return Mesh(4, 4)


@pytest.fixture
def tiny_config() -> NocConfig:
    """3x3 mesh, 2 VCs, short packets: the fastest useful simulator."""
    return NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                     packet_length=3)


@pytest.fixture
def small_config() -> NocConfig:
    """4x4 mesh with paper-like knobs scaled down."""
    return NocConfig(width=4, height=4, num_vcs=4, vc_buf_depth=4,
                     packet_length=5)
