"""Shared fixtures for the test suite.

Tests use deliberately tiny configurations so the whole suite stays
fast; the paper-scale 5x5/8x8 configurations are exercised by the
benchmark harness instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.noc import Mesh, NocConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def mesh3() -> Mesh:
    return Mesh(3, 3)


@pytest.fixture
def mesh4() -> Mesh:
    return Mesh(4, 4)


@pytest.fixture
def tiny_config() -> NocConfig:
    """3x3 mesh, 2 VCs, short packets: the fastest useful simulator."""
    return NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                     packet_length=3)


@pytest.fixture
def small_config() -> NocConfig:
    """4x4 mesh with paper-like knobs scaled down."""
    return NocConfig(width=4, height=4, num_vcs=4, vc_buf_depth=4,
                     packet_length=5)
