"""Unit tests for NocConfig validation and derived quantities."""

import pytest

from repro.noc import GHZ, NocConfig, PAPER_BASELINE


class TestValidation:
    def test_paper_baseline_matches_paper(self):
        cfg = PAPER_BASELINE
        assert (cfg.width, cfg.height) == (5, 5)
        assert cfg.num_vcs == 8
        assert cfg.vc_buf_depth == 4
        assert cfg.packet_length == 20
        assert cfg.f_node_hz == pytest.approx(1 * GHZ)
        assert cfg.f_min_hz == pytest.approx(GHZ / 3)
        assert cfg.f_max_hz == pytest.approx(1 * GHZ)

    def test_rejects_tiny_mesh(self):
        with pytest.raises(ValueError):
            NocConfig(width=1, height=5)

    def test_rejects_zero_vcs(self):
        with pytest.raises(ValueError):
            NocConfig(num_vcs=0)

    def test_rejects_zero_buffers(self):
        with pytest.raises(ValueError):
            NocConfig(vc_buf_depth=0)

    def test_rejects_zero_packet_length(self):
        with pytest.raises(ValueError):
            NocConfig(packet_length=0)

    def test_rejects_inverted_freq_range(self):
        with pytest.raises(ValueError):
            NocConfig(f_min_hz=2 * GHZ, f_max_hz=1 * GHZ)

    def test_rejects_unknown_routing(self):
        with pytest.raises(ValueError):
            NocConfig(routing="magic")

    def test_rejects_zero_link_latency(self):
        with pytest.raises(ValueError):
            NocConfig(link_latency=0)


class TestDerived:
    def test_num_nodes(self):
        assert NocConfig(width=4, height=6).num_nodes == 24

    def test_slowdown_ratio(self):
        assert PAPER_BASELINE.slowdown_ratio == pytest.approx(3.0)

    def test_with_replaces_fields(self):
        cfg = PAPER_BASELINE.with_(num_vcs=2)
        assert cfg.num_vcs == 2
        assert cfg.width == PAPER_BASELINE.width

    def test_with_validates(self):
        with pytest.raises(ValueError):
            PAPER_BASELINE.with_(num_vcs=0)

    def test_config_is_hashable(self):
        """Configs key caches, so they must hash and compare by value."""
        assert PAPER_BASELINE == NocConfig()
        assert hash(PAPER_BASELINE) == hash(NocConfig())

    def test_zero_load_latency_scales_with_mesh(self):
        small = NocConfig(width=4, height=4).zero_load_latency_cycles()
        large = NocConfig(width=8, height=8).zero_load_latency_cycles()
        assert large > small

    def test_zero_load_latency_includes_serialization(self):
        short = NocConfig(packet_length=1).zero_load_latency_cycles()
        long = NocConfig(packet_length=20).zero_load_latency_cycles()
        assert long == pytest.approx(short + 19)

    def test_make_mesh_dimensions(self):
        mesh = NocConfig(width=3, height=4).make_mesh()
        assert mesh.width == 3
        assert mesh.height == 4
