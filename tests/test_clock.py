"""Unit tests for the clock domains — the paper's key mechanism."""

import pytest

from repro.noc.clock import NetworkClock, NodeClockBridge

GHZ = 1e9


class TestNetworkClock:
    def test_initial_state(self):
        clk = NetworkClock(1 * GHZ, GHZ / 3, 1 * GHZ)
        assert clk.cycle == 0
        assert clk.time_ns == 0.0
        assert clk.freq_hz == 1 * GHZ

    def test_tick_advances_by_period(self):
        clk = NetworkClock(1 * GHZ, GHZ / 3, 1 * GHZ)
        clk.tick()
        assert clk.cycle == 1
        assert clk.time_ns == pytest.approx(1.0)

    def test_period_reflects_frequency(self):
        clk = NetworkClock(GHZ / 2, GHZ / 3, 1 * GHZ)
        assert clk.period_ns == pytest.approx(2.0)

    def test_set_frequency_clips_low(self):
        clk = NetworkClock(1 * GHZ, GHZ / 3, 1 * GHZ)
        applied = clk.set_frequency(0.1 * GHZ)
        assert applied == pytest.approx(GHZ / 3)

    def test_set_frequency_clips_high(self):
        clk = NetworkClock(GHZ / 2, GHZ / 3, 1 * GHZ)
        applied = clk.set_frequency(5 * GHZ)
        assert applied == pytest.approx(1 * GHZ)

    def test_set_frequency_rejects_nonpositive(self):
        clk = NetworkClock(1 * GHZ, GHZ / 3, 1 * GHZ)
        with pytest.raises(ValueError):
            clk.set_frequency(0.0)

    def test_initial_frequency_is_clipped(self):
        clk = NetworkClock(5 * GHZ, GHZ / 3, 1 * GHZ)
        assert clk.freq_hz == 1 * GHZ

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            NetworkClock(GHZ, 2 * GHZ, GHZ)

    def test_time_integrates_mixed_frequencies(self):
        clk = NetworkClock(1 * GHZ, GHZ / 4, 1 * GHZ)
        clk.tick()                       # +1 ns
        clk.set_frequency(GHZ / 2)
        clk.tick()                       # +2 ns
        clk.tick()                       # +2 ns
        assert clk.time_ns == pytest.approx(5.0)
        assert clk.cycle == 3


class TestNodeClockBridge:
    def test_equal_frequencies_one_tick_per_cycle(self):
        bridge = NodeClockBridge(1 * GHZ)
        assert list(bridge.elapsed_node_cycles(0.0)) == [0]
        assert list(bridge.elapsed_node_cycles(1.0)) == [1]
        assert list(bridge.elapsed_node_cycles(2.0)) == [2]

    def test_slow_network_gets_bursts(self):
        """At Fnoc = Fnode/3 each network cycle delivers ~3 node ticks."""
        bridge = NodeClockBridge(1 * GHZ)
        assert list(bridge.elapsed_node_cycles(0.0)) == [0]
        assert list(bridge.elapsed_node_cycles(3.0)) == [1, 2, 3]
        assert list(bridge.elapsed_node_cycles(6.0)) == [4, 5, 6]

    def test_each_node_cycle_delivered_once(self):
        bridge = NodeClockBridge(1 * GHZ)
        seen = []
        t = 0.0
        for _ in range(100):
            t += 1.7  # irrational-ish period
            seen.extend(bridge.elapsed_node_cycles(t))
        assert seen == sorted(set(seen))
        assert seen[0] == 0
        assert seen == list(range(len(seen)))

    def test_node_time(self):
        bridge = NodeClockBridge(2 * GHZ)
        assert bridge.node_time_ns(4) == pytest.approx(2.0)

    def test_no_ticks_before_edge(self):
        bridge = NodeClockBridge(1 * GHZ)
        bridge.elapsed_node_cycles(0.0)
        assert list(bridge.elapsed_node_cycles(0.4)) == []

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            NodeClockBridge(0.0)

    def test_total_ticks_track_elapsed_time(self):
        """Over a long window, delivered ticks == floor(t * f) + 1."""
        bridge = NodeClockBridge(1 * GHZ)
        count = 0
        t = 0.0
        for _ in range(1000):
            t += 1 / 3
            count += len(bridge.elapsed_node_cycles(t))
        assert count == pytest.approx(t * 1.0, abs=2)
