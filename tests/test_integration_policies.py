"""Closed-loop integration tests: real controllers inside the simulator.

These validate the paper's control architectures end to end: the
measurement path (Fig. 1 / Fig. 3), the control actuation, and the
steady states they converge to.
"""

import pytest

from repro.core import DmsdController, NoDvfs, QuantizedPolicy, \
    RmsdController
from repro.noc import NocConfig, Simulation
from repro.traffic import PatternTraffic, make_pattern


@pytest.fixture
def cfg():
    # 3x3, short packets: fast but still a real multi-hop NoC.
    return NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                     packet_length=3)


def traffic(cfg, rate):
    return PatternTraffic(make_pattern("uniform", cfg.make_mesh()), rate)


class TestClosedLoopRmsd:
    def test_converges_to_eq2_frequency(self, cfg):
        """Measured-rate control settles on Fnode*lambda/lambda_max."""
        lam, lam_max = 0.2, 0.5
        ctrl = RmsdController(lambda_max=lam_max)
        sim = Simulation(cfg, traffic(cfg, lam), controller=ctrl, seed=11,
                         control_period_node_cycles=400)
        res = sim.run(2500, 2500)
        expected = cfg.f_node_hz * lam / lam_max
        # Late-run frequency fluctuates around the open-loop value with
        # the measurement noise of the finite window.
        late = [f for _, f in res.freq_trace[-5:]]
        mean_late = sum(late) / len(late)
        assert mean_late == pytest.approx(expected, rel=0.2)

    def test_clips_at_f_min_for_low_rate(self, cfg):
        ctrl = RmsdController(lambda_max=0.5)
        sim = Simulation(cfg, traffic(cfg, 0.02), controller=ctrl, seed=11,
                         control_period_node_cycles=400)
        res = sim.run(1500, 1500)
        assert res.freq_trace[-1][1] == pytest.approx(cfg.f_min_hz)

    def test_network_load_pinned_near_lambda_max(self, cfg):
        """Latency under RMSD ~ latency at lambda_max under No-DVFS."""
        lam_max = 0.5
        ctrl = RmsdController(lambda_max=lam_max)
        rmsd = Simulation(cfg, traffic(cfg, 0.25), controller=ctrl,
                          seed=11, control_period_node_cycles=400
                          ).run(2500, 2500)
        ref = Simulation(cfg, traffic(cfg, lam_max), controller=None,
                         seed=11).run(1500, 1500)
        assert rmsd.mean_latency_cycles == pytest.approx(
            ref.mean_latency_cycles, rel=0.35)


class TestClosedLoopDmsd:
    def test_tracks_reachable_target(self, cfg):
        zero_load = cfg.zero_load_latency_cycles()
        target = 2.0 * zero_load  # ns, reachable inside [Fmin, Fmax]
        ctrl = DmsdController(target_delay_ns=target, ki=0.2, kp=0.1)
        sim = Simulation(cfg, traffic(cfg, 0.1), controller=ctrl, seed=13,
                         control_period_node_cycles=300)
        res = sim.run(6000, 3000)
        assert res.mean_delay_ns == pytest.approx(target, rel=0.25)

    def test_clips_at_f_min_for_loose_target(self, cfg):
        ctrl = DmsdController(target_delay_ns=10_000.0, ki=0.2, kp=0.1)
        sim = Simulation(cfg, traffic(cfg, 0.05), controller=ctrl, seed=13,
                         control_period_node_cycles=300)
        res = sim.run(4000, 1500)
        assert res.freq_trace[-1][1] == pytest.approx(cfg.f_min_hz)

    def test_paper_gains_walk_down_gradually(self, cfg):
        """With the paper's KI = 0.025 a -100% error moves U by ~0.025
        per control period — the slow, stable descent the paper chose."""
        ctrl = DmsdController(target_delay_ns=10_000.0)
        sim = Simulation(cfg, traffic(cfg, 0.05), controller=ctrl, seed=13,
                         control_period_node_cycles=300)
        res = sim.run(4000, 1500)
        n_updates = len(res.samples)
        u_expected = max(0.0, 1.0 - 0.025 * n_updates)
        f_expected = cfg.f_min_hz + u_expected * (cfg.f_max_hz
                                                  - cfg.f_min_hz)
        assert res.freq_trace[-1][1] == pytest.approx(f_expected, rel=0.1)

    def test_paper_gains_are_stable(self, cfg):
        """With KI=0.025/KP=0.0125 the loop must not oscillate wildly:
        late-phase frequency excursions stay well inside the range."""
        zero_load = cfg.zero_load_latency_cycles()
        ctrl = DmsdController(target_delay_ns=2.0 * zero_load)
        sim = Simulation(cfg, traffic(cfg, 0.1), controller=ctrl, seed=13,
                         control_period_node_cycles=200)
        res = sim.run(12_000, 3000)
        late = [f for t, f in res.freq_trace if t > res.freq_trace[-1][0]
                * 0.7]
        if len(late) >= 2:
            span = (max(late) - min(late)) / cfg.f_max_hz
            assert span < 0.5

    def test_quantized_dmsd_still_tracks(self, cfg):
        zero_load = cfg.zero_load_latency_cycles()
        target = 2.0 * zero_load
        ctrl = QuantizedPolicy(
            DmsdController(target_delay_ns=target, ki=0.2, kp=0.1),
            num_levels=8)
        sim = Simulation(cfg, traffic(cfg, 0.1), controller=ctrl, seed=13,
                         control_period_node_cycles=300)
        res = sim.run(6000, 3000)
        # Quantization rounds the frequency up, so the achieved delay
        # may only beat the target (never exceed it by much).
        assert res.mean_delay_ns < target * 1.2


class TestPolicyOrdering:
    def test_rmsd_slowest_dmsd_between(self, cfg):
        """Frequency order: RMSD <= DMSD <= No-DVFS (paper Fig. 4(a))."""
        lam, lam_max = 0.15, 0.5
        zero_load = cfg.zero_load_latency_cycles()
        target = 1.8 * zero_load

        rmsd = Simulation(cfg, traffic(cfg, lam),
                          controller=RmsdController(lambda_max=lam_max),
                          seed=17, control_period_node_cycles=400
                          ).run(3000, 2000)
        dmsd = Simulation(cfg, traffic(cfg, lam),
                          controller=DmsdController(target, ki=0.2, kp=0.1),
                          seed=17, control_period_node_cycles=400
                          ).run(6000, 2000)
        nod = Simulation(cfg, traffic(cfg, lam), controller=NoDvfs(),
                         seed=17).run(1000, 1500)
        assert rmsd.mean_freq_hz <= dmsd.mean_freq_hz * 1.05
        assert dmsd.mean_freq_hz <= nod.mean_freq_hz
        # and the delay order is reversed
        assert nod.mean_delay_ns <= dmsd.mean_delay_ns * 1.1
        assert dmsd.mean_delay_ns <= rmsd.mean_delay_ns * 1.1
