"""Unit tests for injection processes and traffic specs."""

import numpy as np
import pytest

from repro.noc import Mesh
from repro.traffic import (InjectionProcess, MatrixTraffic, PatternTraffic,
                           TrafficMatrix, make_pattern)


def uniform_spec(mesh, rate):
    return PatternTraffic(make_pattern("uniform", mesh), rate)


class TestPatternTraffic:
    def test_node_rates_shared(self, mesh4):
        spec = uniform_spec(mesh4, 0.25)
        assert np.allclose(spec.node_rates(), 0.25)

    def test_mean_node_rate(self, mesh4):
        assert uniform_spec(mesh4, 0.3).mean_node_rate() \
            == pytest.approx(0.3)

    def test_rejects_negative_rate(self, mesh4):
        with pytest.raises(ValueError):
            uniform_spec(mesh4, -0.1)

    def test_self_targeting_nodes_muted(self):
        """Deterministic fixed points generate no traffic (Booksim)."""
        mesh = Mesh(5, 5)
        spec = PatternTraffic(make_pattern("bitcomp", mesh), 0.2)
        rates = spec.node_rates()
        assert rates[12] == 0.0            # centre of the 5x5 complement
        assert rates[0] == pytest.approx(0.2)

    def test_scaled_preserves_pattern(self, mesh4):
        spec = uniform_spec(mesh4, 0.2).scaled(0.5)
        assert spec.mean_node_rate() == pytest.approx(0.1)

    def test_draw_dest_never_self(self, mesh4, rng):
        spec = uniform_spec(mesh4, 0.2)
        assert all(spec.draw_dest(3, rng) != 3 for _ in range(200))


class TestMatrixTrafficSpec:
    def test_node_rates_from_matrix(self):
        m = TrafficMatrix.from_pairs(4, [(1, 2, 0.3)])
        spec = MatrixTraffic(m)
        assert spec.node_rates()[1] == pytest.approx(0.3)
        assert spec.mean_node_rate() == pytest.approx(0.3 / 4)

    def test_draw_dest_respects_matrix(self, rng):
        m = TrafficMatrix.from_pairs(4, [(1, 2, 0.3)])
        spec = MatrixTraffic(m)
        assert spec.draw_dest(1, rng) == 2
        assert spec.draw_dest(0, rng) is None


class TestInjectionProcess:
    def test_rate_statistics(self, mesh4, rng):
        spec = uniform_spec(mesh4, 0.2)
        proc = InjectionProcess(spec, packet_length=4, rng=rng)
        cycles = 8000
        arrivals = proc.arrivals(cycles)
        flit_rate = len(arrivals) * 4 / (cycles * mesh4.num_nodes)
        assert flit_rate == pytest.approx(0.2, rel=0.1)

    def test_zero_rate_no_arrivals(self, mesh4, rng):
        proc = InjectionProcess(uniform_spec(mesh4, 0.0), 4, rng)
        assert proc.arrivals(1000) == []

    def test_zero_cycles_no_arrivals(self, mesh4, rng):
        proc = InjectionProcess(uniform_spec(mesh4, 0.5), 4, rng)
        assert proc.arrivals(0) == []

    def test_offsets_within_range(self, mesh4, rng):
        proc = InjectionProcess(uniform_spec(mesh4, 0.4), 2, rng)
        for offset, src, dst in proc.arrivals(50):
            assert 0 <= offset < 50
            assert src != dst

    def test_rate_cap_enforced(self, mesh4, rng):
        """More than one packet per node cycle cannot be drawn."""
        with pytest.raises(ValueError, match="exceeds"):
            InjectionProcess(uniform_spec(mesh4, 3.0), 2, rng)

    def test_packet_length_validation(self, mesh4, rng):
        with pytest.raises(ValueError):
            InjectionProcess(uniform_spec(mesh4, 0.1), 0, rng)

    def test_reproducible_for_seed(self, mesh4):
        a = InjectionProcess(uniform_spec(mesh4, 0.3), 4,
                             np.random.default_rng(3)).arrivals(500)
        b = InjectionProcess(uniform_spec(mesh4, 0.3), 4,
                             np.random.default_rng(3)).arrivals(500)
        assert a == b

    def test_muted_sources_never_appear(self, rng):
        mesh = Mesh(5, 5)
        spec = PatternTraffic(make_pattern("bitcomp", mesh), 0.5)
        proc = InjectionProcess(spec, 2, rng)
        sources = {src for _, src, _ in proc.arrivals(2000)}
        assert 12 not in sources
