"""Tests for the figure-regeneration CLI."""

import pytest

from repro.experiments.__main__ import FIGURES, main, run_figure
from repro.experiments.common import Workbench


class TestCli:
    def test_fig5_prints_table(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "regenerated in" in out

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_bad_profile_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--profile", "hero", "fig5"])

    def test_run_figure_unknown_name(self):
        with pytest.raises(ValueError):
            run_figure("fig99", Workbench())

    def test_all_known_figures_listed(self):
        assert set(FIGURES) == {"fig2", "fig4", "fig5", "fig6", "fig7",
                                "fig8", "fig10", "headline"}
