"""Tests for the figure-regeneration CLI."""

import pytest

from repro.experiments.__main__ import FIGURES, main, run_figure
from repro.experiments.common import Workbench


class TestCli:
    def test_fig5_prints_table(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "regenerated in" in out

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_bad_profile_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--profile", "hero", "fig5"])

    def test_run_figure_unknown_name(self):
        with pytest.raises(ValueError):
            run_figure("fig99", Workbench())

    def test_all_known_figures_listed(self):
        assert set(FIGURES) == {"fig2", "fig4", "fig5", "fig6", "fig7",
                                "fig8", "fig10", "headline"}


class TestBadArgumentDiagnostics:
    """Bad flag values exit through argparse with a clear message —
    never a traceback."""

    def _error_output(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2      # argparse usage error
        err = capsys.readouterr().err
        assert "Traceback" not in err
        return err

    def test_bad_engine_name(self, capsys):
        err = self._error_output(["--engine", "warp", "fig5"], capsys)
        assert "--engine" in err
        assert "invalid choice" in err and "warp" in err
        # The message teaches the valid values.
        assert "reference" in err and "fast" in err

    def test_non_integer_jobs(self, capsys):
        err = self._error_output(["--jobs", "many", "fig5"], capsys)
        assert "--jobs" in err
        assert "invalid int value" in err

    def test_negative_jobs(self, capsys):
        err = self._error_output(["--jobs", "-3", "fig5"], capsys)
        assert "--jobs must be >= 0" in err

    def test_engine_flag_reaches_workbench(self, capsys, monkeypatch):
        """`--engine fast` must reach the Workbench's execution context
        (fig5 is analytic, so the run itself stays instant)."""
        import repro.experiments.__main__ as cli

        captured = {}

        class SpyWorkbench(Workbench):
            def __init__(self, **kwargs):
                captured.update(kwargs)
                super().__init__(**kwargs)

        monkeypatch.setattr(cli, "Workbench", SpyWorkbench)
        assert main(["--engine", "fast", "fig5"]) == 0
        assert captured["context"].engine == "fast"
        assert captured["context"].resolved_backend() == "batched"
        assert "fig5" in capsys.readouterr().out

    def test_bad_backend_name(self, capsys):
        err = self._error_output(["--backend", "warp", "fig5"], capsys)
        assert "--backend" in err
        assert "invalid choice" in err and "warp" in err
        assert "serial" in err and "batched" in err
