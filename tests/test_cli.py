"""Tests for the figure-regeneration CLI (and the worker CLI)."""

import sys
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, strategies as st

from repro.core import policy_names
from repro.experiments.__main__ import (FIGURES, list_scenarios_main,
                                        main, run_figure, worker_main)
from repro.traffic import pattern_names
from repro.experiments.common import Profile, Workbench
from repro.noc import SimBudget
from repro.runner import ExecutionPlan, Worker, WorkQueue
from repro.runner.distributed import publish_plan
from test_backends import factory, make_units  # noqa: F401


class TestCli:
    def test_fig5_prints_table(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "regenerated in" in out

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_bad_profile_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--profile", "hero", "fig5"])

    def test_run_figure_unknown_name(self):
        with pytest.raises(ValueError):
            run_figure("fig99", Workbench())

    def test_all_known_figures_listed(self):
        assert set(FIGURES) == {"fig2", "fig4", "fig5", "fig6", "fig7",
                                "fig8", "fig10", "headline"}


class TestBadArgumentDiagnostics:
    """Bad flag values exit through argparse with a clear message —
    never a traceback."""

    def _error_output(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2      # argparse usage error
        err = capsys.readouterr().err
        assert "Traceback" not in err
        return err

    def test_bad_engine_name(self, capsys):
        err = self._error_output(["--engine", "warp", "fig5"], capsys)
        assert "--engine" in err
        assert "invalid choice" in err and "warp" in err
        # The message teaches the valid values.
        assert "reference" in err and "fast" in err

    def test_non_integer_jobs(self, capsys):
        err = self._error_output(["--jobs", "many", "fig5"], capsys)
        assert "--jobs" in err
        assert "invalid int value" in err

    def test_negative_jobs(self, capsys):
        err = self._error_output(["--jobs", "-3", "fig5"], capsys)
        assert "--jobs must be >= 0" in err

    def test_engine_flag_reaches_workbench(self, capsys, monkeypatch):
        """`--engine fast` must reach the Workbench's execution context
        (fig5 is analytic, so the run itself stays instant)."""
        import repro.experiments.__main__ as cli

        captured = {}

        class SpyWorkbench(Workbench):
            def __init__(self, **kwargs):
                captured.update(kwargs)
                super().__init__(**kwargs)

        monkeypatch.setattr(cli, "Workbench", SpyWorkbench)
        assert main(["--engine", "fast", "fig5"]) == 0
        assert captured["context"].engine == "fast"
        assert captured["context"].resolved_backend() == "batched"
        assert "fig5" in capsys.readouterr().out

    def test_bad_backend_name(self, capsys):
        err = self._error_output(["--backend", "warp", "fig5"], capsys)
        assert "--backend" in err
        assert "invalid choice" in err and "warp" in err
        assert "serial" in err and "batched" in err
        assert "distributed" in err

    def test_distributed_requires_queue(self, capsys):
        err = self._error_output(
            ["--backend", "distributed", "fig5"], capsys)
        assert "--backend distributed requires --queue" in err

    def test_bad_queue_dir_reports_usable_message(self, capsys,
                                                  tmp_path):
        """A queue root that cannot be a directory fails with a clear
        argparse error, never a traceback."""
        not_a_dir = tmp_path / "occupied"
        not_a_dir.write_text("this is a file")
        err = self._error_output(
            ["--backend", "distributed", "--queue", str(not_a_dir),
             "fig5"], capsys)
        assert "not a directory" in err
        err = self._error_output(
            ["--backend", "distributed", "--queue",
             str(not_a_dir / "nested"), "fig5"], capsys)
        assert "cannot initialise work queue" in err

    def test_queue_and_workers_need_distributed_backend(self, capsys,
                                                        tmp_path):
        err = self._error_output(
            ["--queue", str(tmp_path / "q"), "fig5"], capsys)
        assert "only meaningful with --backend distributed" in err
        err = self._error_output(["--workers", "2", "fig5"], capsys)
        assert "only meaningful with --backend distributed" in err

    def test_negative_workers(self, capsys, tmp_path):
        err = self._error_output(
            ["--backend", "distributed", "--queue", str(tmp_path / "q"),
             "--workers", "-1", "fig5"], capsys)
        assert "--workers must be >= 0" in err

    def test_pool_and_claim_batch_need_distributed_backend(
            self, capsys):
        err = self._error_output(["--pool", "fig5"], capsys)
        assert "only meaningful with --backend distributed" in err
        err = self._error_output(["--claim-batch", "2", "fig5"],
                                 capsys)
        assert "only meaningful with --backend distributed" in err

    def test_pool_needs_self_spawned_workers(self, capsys, tmp_path):
        err = self._error_output(
            ["--backend", "distributed", "--queue", str(tmp_path / "q"),
             "--pool", "fig5"], capsys)
        assert "--pool needs self-spawned workers" in err

    def test_claim_batch_must_be_positive(self, capsys, tmp_path):
        err = self._error_output(
            ["--backend", "distributed", "--queue", str(tmp_path / "q"),
             "--claim-batch", "0", "fig5"], capsys)
        assert "--claim-batch must be >= 1" in err


class TestScenarioFlags:
    """--policy/--pattern/--register and the list-scenarios command."""

    def _error_output(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "Traceback" not in err
        return err

    def test_list_scenarios_prints_registries(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("no-dvfs", "rmsd", "dmsd", "fixed"):
            assert name in out
        for name in ("uniform", "tornado", "hotspot"):
            assert name in out
        assert "target_delay_ns" in out      # dmsd's parameters
        assert "transient only" in out       # fixed has no strategy

    def test_unknown_policy_lists_known(self, capsys):
        err = self._error_output(["--policy", "warp", "fig5"], capsys)
        assert "--policy" in err and "unknown policy" in err
        assert "rmsd" in err and "dmsd" in err

    def test_bad_policy_param_reported(self, capsys):
        err = self._error_output(
            ["--policy", "dmsd:bogus=1", "fig5"], capsys)
        assert "does not accept parameter" in err
        assert "target_delay_ns" in err

    def test_malformed_policy_spelling_reported(self, capsys):
        err = self._error_output(["--policy", "dmsd:", "fig5"], capsys)
        assert "--policy" in err

    def test_sweep_incapable_policy_is_a_usage_error(self, capsys):
        # 'fixed' is registered but has no sweep strategy: must fail at
        # parse time, not as a mid-run traceback.
        err = self._error_output(["--policy", "fixed", "fig5"], capsys)
        assert "no steady-state sweep strategy" in err

    def test_controller_only_param_is_a_usage_error(self, capsys):
        # 'smoothing' exists on the RmsdController but not on the sweep
        # strategy --policy feeds; reject it up front.
        err = self._error_output(
            ["--policy", "rmsd:smoothing=0.5", "fig5"], capsys)
        assert "does not accept parameter" in err
        assert "lambda_max" in err

    def test_unknown_pattern_lists_known(self, capsys):
        err = self._error_output(["--pattern", "warp", "fig5"], capsys)
        assert "unknown traffic pattern" in err and "uniform" in err

    def test_unimportable_register_module(self, capsys):
        err = self._error_output(
            ["--register", "no.such.module", "fig5"], capsys)
        assert "cannot import" in err and "no.such.module" in err

    @given(name=st.text(alphabet="abcdefghijklmnop", min_size=1,
                        max_size=10)
           .filter(lambda s: s not in set(policy_names())))
    def test_any_unknown_policy_name_is_a_usage_error(self, name):
        with pytest.raises(SystemExit) as excinfo:
            main(["--policy", name, "fig5"])
        assert excinfo.value.code == 2

    @given(name=st.text(alphabet="abcdefghijklmnop", min_size=1,
                        max_size=10)
           .filter(lambda s: s not in set(pattern_names())))
    def test_any_unknown_pattern_name_is_a_usage_error(self, name):
        with pytest.raises(SystemExit) as excinfo:
            main(["--pattern", name, "fig5"])
        assert excinfo.value.code == 2


EXAMPLES_DIR = str(Path(__file__).resolve().parent.parent / "examples")


class TestScenarioPluginEndToEnd:
    """The example plugin through the real CLI path."""

    @pytest.fixture
    def plugin_on_path(self, monkeypatch):
        from repro.core import POLICY_REGISTRY
        from repro.traffic import PATTERN_REGISTRY

        monkeypatch.syspath_prepend(EXAMPLES_DIR)
        yield
        sys.modules.pop("scenario_plugin", None)
        if "deadband" in POLICY_REGISTRY:
            POLICY_REGISTRY.remove("deadband")
        if "diagonal" in PATTERN_REGISTRY:
            PATTERN_REGISTRY.remove("diagonal")

    def test_list_scenarios_shows_registered_plugin(self, capsys,
                                                    plugin_on_path):
        assert list_scenarios_main(["--register",
                                    "scenario_plugin"]) == 0
        out = capsys.readouterr().out
        assert "deadband" in out and "diagonal" in out

    def test_custom_policy_and_pattern_reach_a_figure(
            self, capsys, monkeypatch, plugin_on_path):
        """`--register ... --policy deadband --pattern diagonal` runs a
        real (stripped-down) fig4 sweep with the plugin policy next to
        the paper's rmsd."""
        import repro.experiments.__main__ as cli
        from repro.experiments.common import Profile
        from repro.noc import SimBudget

        monkeypatch.setattr(cli, "QUICK", Profile(
            "cli-smoke", SimBudget(100, 250, 600), sweep_points=2,
            dmsd_iterations=2, saturation_iterations=2))
        assert main(["--tiny", "--engine", "fast",
                     "--register", "scenario_plugin",
                     "--policy", "rmsd",
                     "--policy", "deadband:target_delay_ns=60",
                     "--pattern", "diagonal", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "deadband:target_delay_ns=60" in out
        assert "rmsd" in out
        assert "regenerated in" in out


class TestWorkerCli:
    """`python -m repro.experiments worker`: the worker-loop CLI."""

    def test_queue_flag_is_required(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["worker"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--queue" in err and "Traceback" not in err

    def test_bad_queue_dir(self, capsys, tmp_path):
        not_a_dir = tmp_path / "occupied"
        not_a_dir.write_text("x")
        with pytest.raises(SystemExit) as excinfo:
            worker_main(["--queue", str(not_a_dir)])
        assert excinfo.value.code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_bad_lease_ttl_and_attempts(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            worker_main(["--queue", str(tmp_path / "q"),
                         "--lease-ttl", "0"])
        assert "--lease-ttl" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            worker_main(["--queue", str(tmp_path / "q"),
                         "--max-attempts", "0"])
        assert "--max-attempts" in capsys.readouterr().err

    def test_bad_claim_batch(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            worker_main(["--queue", str(tmp_path / "q"),
                         "--claim-batch", "0"])
        assert "--claim-batch must be >= 1" in capsys.readouterr().err

    def test_worker_cli_claim_batch_drains_in_one_round(
            self, capsys, tmp_path, tiny_config, factory):
        """`--claim-batch N` reaches the worker loop: every published
        shard completes through multi-claim rounds."""
        queue = WorkQueue(tmp_path / "q").ensure()
        plan = ExecutionPlan(
            make_units(tiny_config, factory,
                       rates=(0.04, 0.06, 0.08, 0.1)), None)
        plan.group_batches(jobs=4, max_shard=1, min_shard=1)
        tasks, _ = publish_plan(queue, plan)
        assert len(tasks) >= 2
        assert worker_main(["--queue", str(tmp_path / "q"),
                            "--claim-batch", str(len(tasks)),
                            "--max-tasks", str(len(tasks))]) == 0
        assert all(queue.has_result(t.task_id) for t in tasks)

    def test_worker_cli_drains_published_tasks(self, capsys, tmp_path,
                                               tiny_config, factory):
        """The worker loop claims, executes and completes real tasks
        published by a driver-side plan."""
        queue = WorkQueue(tmp_path / "q").ensure()
        plan = ExecutionPlan(
            make_units(tiny_config, factory, rates=(0.05, 0.1)), None)
        plan.group_batches()
        tasks, _ = publish_plan(queue, plan)
        assert worker_main(["--queue", str(tmp_path / "q"),
                            "--max-tasks", str(len(tasks))]) == 0
        assert all(queue.has_result(t.task_id) for t in tasks)
        assert "task(s) handled" in capsys.readouterr().err

    def test_worker_cli_exit_code_signals_exhausted_tasks(
            self, capsys, tmp_path, tiny_config, factory):
        """A worker that exhausted a task's retry budget exits
        non-zero so supervisors notice."""
        from test_distributed import ExplodingStrategy

        queue = WorkQueue(tmp_path / "q").ensure()
        plan = ExecutionPlan(
            make_units(tiny_config, factory, rates=(0.1,),
                       strategy=ExplodingStrategy(),
                       engine="reference"), None)
        plan.group_batches()
        publish_plan(queue, plan)
        assert worker_main(["--queue", str(tmp_path / "q"),
                            "--max-tasks", "1",
                            "--max-attempts", "1"]) == 1
        assert "1 failed" in capsys.readouterr().err


class TestServiceCli:
    """serve/submit/status/gc: the sweep-as-a-service subcommands."""

    def _error_output(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "Traceback" not in err
        return err

    def test_serve_queue_is_required(self, capsys):
        assert "--queue" in self._error_output(["serve"], capsys)

    def test_serve_rejects_bad_knobs(self, capsys, tmp_path):
        q = str(tmp_path / "q")
        assert "--workers must be >= 0" in self._error_output(
            ["serve", "--queue", q, "--workers", "-1"], capsys)
        assert "--pool needs self-spawned workers" in self._error_output(
            ["serve", "--queue", q, "--pool"], capsys)
        assert "--claim-batch must be >= 1" in self._error_output(
            ["serve", "--queue", q, "--claim-batch", "0"], capsys)
        assert "--jobs must be >= 1" in self._error_output(
            ["serve", "--queue", q, "--jobs", "0"], capsys)
        assert "--poll must be > 0" in self._error_output(
            ["serve", "--queue", q, "--poll", "0"], capsys)
        assert "--lease-ttl must be > 0" in self._error_output(
            ["serve", "--queue", q, "--lease-ttl", "0"], capsys)

    def test_submit_required_flags(self, capsys, tmp_path):
        err = self._error_output(
            ["submit", "--queue", str(tmp_path / "q")], capsys)
        assert "--policy" in err and "--rates" in err

    def test_submit_bad_rates(self, capsys, tmp_path):
        q = str(tmp_path / "q")
        err = self._error_output(
            ["submit", "--queue", q, "--policy", "no-dvfs",
             "--rates", "0.02,lots"], capsys)
        assert "not a comma-separated list of numbers" in err
        err = self._error_output(
            ["submit", "--queue", q, "--policy", "no-dvfs",
             "--rates", "0.02,-0.05"], capsys)
        assert "must be positive" in err
        err = self._error_output(
            ["submit", "--queue", q, "--policy", "no-dvfs",
             "--rates", ","], capsys)
        assert "at least one value" in err

    def test_submit_bad_budget(self, capsys, tmp_path):
        err = self._error_output(
            ["submit", "--queue", str(tmp_path / "q"),
             "--policy", "no-dvfs", "--rates", "0.02",
             "--budget", "huge"], capsys)
        assert "fast, default, thorough or" in err

    def test_submit_unknown_policy_lists_known(self, capsys, tmp_path):
        err = self._error_output(
            ["submit", "--queue", str(tmp_path / "q"),
             "--policy", "warp", "--rates", "0.02"], capsys)
        assert "unknown policy" in err and "rmsd" in err

    def test_status_unknown_submission(self, capsys, tmp_path):
        err = self._error_output(
            ["status", "--queue", str(tmp_path / "q"), "sub-nope"],
            capsys)
        assert "unknown submission" in err and "sub-nope" in err

    def test_status_empty_queue(self, capsys, tmp_path):
        assert main(["status", "--queue", str(tmp_path / "q")]) == 0
        out = capsys.readouterr().out
        assert "no daemon has served this queue" in out
        assert "todo=0" in out

    def test_gc_rejects_negative_window(self, capsys, tmp_path):
        err = self._error_output(
            ["gc", "--queue", str(tmp_path / "q"),
             "--keep-days", "-1"], capsys)
        assert "--keep-days must be >= 0" in err

    def test_submit_serve_status_gc_roundtrip(self, capsys, tmp_path):
        """The whole service surface through the real CLI: submit a
        tiny sweep, serve it to completion with --max-idle, read the
        status back, then gc the retired queue."""
        q = str(tmp_path / "q")
        assert main(["submit", "--queue", q, "--policy", "no-dvfs",
                     "--rates", "0.02,0.05", "--tiny",
                     "--budget", "100:250:600"]) == 0
        submission_id = capsys.readouterr().out.strip()
        assert submission_id.startswith("sub-")
        assert main(["status", "--queue", q, submission_id]) == 0
        assert (f"{submission_id} queued"
                in capsys.readouterr().out)
        assert main(["serve", "--queue", q, "--poll", "0.01",
                     "--max-idle", "0.2"]) == 0
        assert "[serve]" in capsys.readouterr().err
        assert main(["status", "--queue", q, submission_id]) == 0
        out = capsys.readouterr().out
        assert "[daemon stopped" in out
        assert f"{submission_id} done" in out
        assert main(["gc", "--queue", q, "--keep-days", "0"]) == 0
        assert "[gc removed" in capsys.readouterr().out
        assert main(["status", "--queue", q]) == 0
        assert "results=0" in capsys.readouterr().out


class TestDistributedDriverCli:
    def test_workers_zero_with_prestarted_external_worker(
            self, capsys, monkeypatch, tmp_path):
        """`--backend distributed --workers 0` completes when an
        external worker (started before the driver) drains the queue."""
        import repro.experiments.__main__ as cli

        # A stripped-down profile: same code paths, minimal cycles.
        monkeypatch.setattr(cli, "QUICK", Profile(
            "cli-smoke", SimBudget(100, 250, 600), sweep_points=2,
            dmsd_iterations=2, saturation_iterations=2))
        queue = WorkQueue(tmp_path / "q").ensure()
        stop = threading.Event()

        def external_worker():
            worker = Worker(queue)
            while not stop.is_set():
                if not worker.run_once():
                    time.sleep(0.02)

        thread = threading.Thread(target=external_worker, daemon=True)
        thread.start()
        try:
            assert main(["--tiny", "--engine", "fast", "--backend",
                         "distributed", "--queue", str(tmp_path / "q"),
                         "--workers", "0", "fig2"]) == 0
        finally:
            stop.set()
            thread.join(timeout=10)
        out = capsys.readouterr().out
        assert "fig2" in out and "regenerated in" in out
