"""Tests for heterogeneous node clocks (paper footnote 1)."""

import numpy as np
import pytest

from repro.noc import NocConfig, Simulation
from repro.noc.clock import MultiNodeClockBridge
from repro.traffic import (InjectionProcess, PatternTraffic,
                           PiecewiseRateTraffic, make_pattern)

GHZ = 1e9


class TestMultiNodeClockBridge:
    def test_validates_frequencies(self):
        with pytest.raises(ValueError):
            MultiNodeClockBridge([1e9, 0.0])
        with pytest.raises(ValueError):
            MultiNodeClockBridge([])

    def test_equal_frequencies_tick_together(self):
        bridge = MultiNodeClockBridge([1 * GHZ, 1 * GHZ])
        starts, counts = bridge.elapsed_counts(0.0)
        assert list(counts) == [1, 1]
        starts, counts = bridge.elapsed_counts(1.0)
        assert list(starts) == [1, 1]
        assert list(counts) == [1, 1]

    def test_fast_node_ticks_more(self):
        bridge = MultiNodeClockBridge([1 * GHZ, 2 * GHZ])
        bridge.elapsed_counts(0.0)
        __, counts = bridge.elapsed_counts(4.0)
        assert counts[1] == 2 * counts[0]

    def test_every_cycle_delivered_once(self):
        bridge = MultiNodeClockBridge([1 * GHZ, 1.7 * GHZ, 0.4 * GHZ])
        seen = [[] for _ in range(3)]
        t = 0.0
        for _ in range(200):
            t += 0.9
            starts, counts = bridge.elapsed_counts(t)
            for n in range(3):
                seen[n].extend(range(starts[n], starts[n] + counts[n]))
        for n in range(3):
            assert seen[n] == list(range(len(seen[n])))

    def test_node_time(self):
        bridge = MultiNodeClockBridge([1 * GHZ, 2 * GHZ])
        assert bridge.node_time_ns(0, 3) == pytest.approx(3.0)
        assert bridge.node_time_ns(1, 3) == pytest.approx(1.5)


class TestArrivalsPerNode:
    def test_counts_shape_validated(self, rng):
        mesh = NocConfig(width=3, height=3).make_mesh()
        spec = PatternTraffic(make_pattern("uniform", mesh), 0.2)
        proc = InjectionProcess(spec, 4, rng)
        with pytest.raises(ValueError):
            proc.arrivals_per_node(np.array([1, 2]))

    def test_zero_counts_no_arrivals(self, rng):
        mesh = NocConfig(width=3, height=3).make_mesh()
        spec = PatternTraffic(make_pattern("uniform", mesh), 0.5)
        proc = InjectionProcess(spec, 4, rng)
        assert proc.arrivals_per_node(np.zeros(9, dtype=int)) == []

    def test_rate_proportional_to_counts(self, rng):
        """A node given 3x the cycles generates ~3x the packets."""
        mesh = NocConfig(width=3, height=3).make_mesh()
        spec = PatternTraffic(make_pattern("uniform", mesh), 0.4)
        proc = InjectionProcess(spec, 2, rng)
        counts = np.full(9, 2000)
        counts[0] = 6000
        arrivals = proc.arrivals_per_node(counts)
        from_node0 = sum(1 for n, _, _ in arrivals if n == 0)
        from_node1 = sum(1 for n, _, _ in arrivals if n == 1)
        assert from_node0 == pytest.approx(3 * from_node1, rel=0.25)

    def test_offsets_within_node_range(self, rng):
        mesh = NocConfig(width=3, height=3).make_mesh()
        spec = PatternTraffic(make_pattern("uniform", mesh), 0.5)
        proc = InjectionProcess(spec, 2, rng)
        counts = np.arange(1, 10) * 50
        for node, offset, _dst in proc.arrivals_per_node(counts):
            assert 0 <= offset < counts[node]

    def test_piecewise_unsupported(self, rng):
        mesh = NocConfig(width=3, height=3).make_mesh()
        base = PatternTraffic(make_pattern("uniform", mesh), 0.2)
        spec = PiecewiseRateTraffic(base, [(0, 1.0)])
        proc = InjectionProcess(spec, 4, rng)
        with pytest.raises(NotImplementedError):
            proc.arrivals_per_node(np.ones(9, dtype=int))


class TestHeterogeneousSimulation:
    def make_config(self, freqs):
        return NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                         packet_length=3, node_freqs_hz=tuple(freqs))

    def test_config_validation(self):
        with pytest.raises(ValueError, match="all 9"):
            NocConfig(width=3, height=3, node_freqs_hz=(1e9, 2e9))
        with pytest.raises(ValueError):
            NocConfig(width=3, height=3,
                      node_freqs_hz=tuple([1e9] * 8 + [0.0]))

    def test_uniform_heterogeneous_matches_homogeneous_rates(self):
        """All node clocks = Fnode: same offered load as the fast path."""
        freqs = [1 * GHZ] * 9
        cfg_het = self.make_config(freqs)
        cfg_hom = NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                            packet_length=3)
        traffic = PatternTraffic(
            make_pattern("uniform", cfg_hom.make_mesh()), 0.1)
        het = Simulation(cfg_het, traffic, seed=5).run(300, 900)
        hom = Simulation(cfg_hom, traffic, seed=5).run(300, 900)
        assert het.measured_created == pytest.approx(hom.measured_created,
                                                     rel=0.2)

    def test_fast_nodes_generate_more_traffic(self):
        """Nodes clocked 3x faster offer ~3x the flits per second."""
        freqs = [1 * GHZ] * 9
        freqs[0] = 3 * GHZ
        cfg = self.make_config(freqs)
        traffic = PatternTraffic(
            make_pattern("uniform", cfg.make_mesh()), 0.08)
        sim = Simulation(cfg, traffic, seed=5)
        res = sim.run(500, 2000)
        assert res.complete
        # Node 0 generates ~3x the packets per second of 1 GHz nodes.
        by_src = [0] * 9
        for packet in sim.network.delivered:
            by_src[packet.src] += 1
        others = sum(by_src[1:]) / 8
        assert by_src[0] > 2.0 * others

    def test_delays_still_measured(self):
        freqs = [0.5 * GHZ if i % 2 else 1 * GHZ for i in range(9)]
        cfg = self.make_config(freqs)
        traffic = PatternTraffic(
            make_pattern("uniform", cfg.make_mesh()), 0.1)
        res = Simulation(cfg, traffic, seed=5).run(400, 1200)
        assert res.complete
        assert res.mean_delay_ns is not None
        assert res.mean_delay_ns > 0
