"""Golden regression tests for sweep steady-state frequencies.

Pins the operating points the sweeps converge to, so silent changes to
the steady-state machinery (eq. (2), the DMSD bisection, per-unit seed
derivation) show up as test failures rather than as drifting figures.

* RMSD: the open-loop law of paper eq. (2) is a pure function —
  goldens are exact.
* DMSD: the bisection fixed point ``delay(F*) = target`` depends on
  the simulator and the derived seeds; goldens were recorded from the
  runner-era implementation on the tiny 3x3 configuration and carry a
  small tolerance for float-ordering differences across platforms.
"""

import pytest

from repro.analysis import (DmsdSteadyState, NoDvfsSteadyState,
                            RmsdSteadyState, run_fixed_point, run_sweep)
from repro.core import rmsd_frequency
from repro.noc import GHZ, NocConfig, PAPER_BASELINE, SimBudget
from repro.runner import ExecutionContext
from repro.traffic import (MatrixTraffic, PatternTraffic, h264_encoder,
                           make_pattern)

TINY_BUDGET = SimBudget(200, 500, 1500)

#: DMSD target used for every golden below (ns), tiny 3x3 config.
DMSD_TARGET_NS = 40.0
GOLDEN_SEED = 11
GOLDEN_RATES = (0.05, 0.15, 0.25)

#: Steady-state frequencies (GHz) of ``run_sweep`` at GOLDEN_RATES,
#: DMSD with 6 bisection iterations, recorded at the runner rollout.
DMSD_GOLDEN_GHZ = (0.333333333, 0.416666667, 0.541666667)

#: And the measured delays (ns) at those operating points.
DMSD_GOLDEN_DELAY_NS = (33.7897, 36.3779, 39.9364)

#: RMSD steady-state frequencies (GHz) for lambda_max = 0.5: eq. (2)
#: with clipping at Fmin (exact, simulator-independent).
RMSD_GOLDEN_GHZ = (1 / 3, 1 / 3, 0.5)


@pytest.fixture
def factory(tiny_config):
    mesh = tiny_config.make_mesh()
    pattern = make_pattern("uniform", mesh)
    return lambda rate: PatternTraffic(pattern, rate)


class TestRmsdOpenLoopLaw:
    """Paper eq. (2) on the 5x5 baseline: exact goldens."""

    @pytest.mark.parametrize("rate,golden_ghz", [
        (0.05, 1 / 3),          # clipped at Fmin
        (0.10, 1 / 3),          # boundary: 0.1/0.378 GHz < Fmin
        (0.20, 0.2 / 0.378),    # interior of the law
        (0.30, 0.3 / 0.378),
        (0.378, 1.0),           # lambda_max -> Fmax
        (0.50, 1.0),            # clipped at Fmax
    ])
    def test_eq2_golden(self, rate, golden_ghz):
        f = rmsd_frequency(PAPER_BASELINE, rate, lambda_max=0.378)
        assert f == pytest.approx(golden_ghz * GHZ, rel=1e-12)

    def test_sweep_records_eq2_frequencies(self, tiny_config, factory):
        series = run_sweep(tiny_config, factory, list(GOLDEN_RATES),
                           RmsdSteadyState(lambda_max=0.5), TINY_BUDGET,
                           seed=GOLDEN_SEED)
        for point, golden in zip(series.points, RMSD_GOLDEN_GHZ):
            assert point.freq_hz == pytest.approx(golden * GHZ, rel=1e-9)


class TestDmsdFixedPoint:
    """The bisection fixed point ``delay(F*) = target`` (eq. Fig. 3)."""

    def _strategy(self):
        return DmsdSteadyState(target_delay_ns=DMSD_TARGET_NS,
                               iterations=6, search_budget=TINY_BUDGET)

    def _sweep(self, tiny_config, factory, jobs=1):
        context = ExecutionContext(
            backend="pool" if jobs > 1 else "serial", jobs=jobs,
            cache=None)
        return run_sweep(tiny_config, factory, list(GOLDEN_RATES),
                         self._strategy(), TINY_BUDGET, seed=GOLDEN_SEED,
                         context=context)

    def test_steady_state_frequencies_pinned(self, tiny_config, factory):
        series = self._sweep(tiny_config, factory)
        for point, golden in zip(series.points, DMSD_GOLDEN_GHZ):
            # One bisection step of the 6-iteration search resolves
            # ~1% of the frequency range; allow half a step of drift.
            assert point.freq_hz == pytest.approx(golden * GHZ, rel=0.006)

    def test_delays_pinned(self, tiny_config, factory):
        series = self._sweep(tiny_config, factory)
        for point, golden in zip(series.points, DMSD_GOLDEN_DELAY_NS):
            assert point.delay_ns == pytest.approx(golden, rel=0.02)

    def test_fixed_point_meets_target(self, tiny_config, factory):
        """delay(F*) tracks the target wherever F* is interior."""
        series = self._sweep(tiny_config, factory)
        for point in series.points:
            if point.freq_hz > tiny_config.f_min_hz * 1.001:
                assert point.delay_ns == pytest.approx(DMSD_TARGET_NS,
                                                       rel=0.25)

    def test_low_load_clips_at_f_min(self, tiny_config, factory):
        """Even Fmin beats the target at near-zero load -> clamp."""
        series = self._sweep(tiny_config, factory)
        assert series.points[0].freq_hz == pytest.approx(
            tiny_config.f_min_hz)

    def test_golden_holds_under_parallel_execution(self, tiny_config,
                                                   factory):
        """The pinned operating points are jobs-independent."""
        serial = self._sweep(tiny_config, factory, jobs=1)
        parallel = self._sweep(tiny_config, factory, jobs=2)
        assert ([p.freq_hz for p in serial.points]
                == [p.freq_hz for p in parallel.points])
        assert ([p.delay_ns for p in serial.points]
                == [p.delay_ns for p in parallel.points])

    def test_strategy_fixed_point_directly(self, tiny_config, factory):
        """Outside the sweep: bisect, then verify delay(F*) ~ target."""
        strat = self._strategy()
        f_star = strat.frequency_for(tiny_config, factory(0.15),
                                     TINY_BUDGET, seed=GOLDEN_SEED)
        res = run_fixed_point(tiny_config, factory(0.15), f_star,
                              TINY_BUDGET, seed=GOLDEN_SEED)
        assert res.mean_delay_ns == pytest.approx(DMSD_TARGET_NS, rel=0.25)


def _pattern_factory(config, pattern):
    mesh = config.make_mesh()
    pat = make_pattern(pattern, mesh)
    return lambda rate: PatternTraffic(pat, rate)


def _dmsd_strategy():
    return DmsdSteadyState(target_delay_ns=DMSD_TARGET_NS, iterations=6,
                          search_budget=TINY_BUDGET)


class TestFig7PatternGoldens:
    """Fig. 7's per-pattern operating points on the tiny 3x3 mesh.

    Transpose (permutation) and tornado (adversarial shift) exercise
    different link loads than uniform, so their DMSD fixed points pin
    the routing/saturation interplay that Fig. 7 is about.
    """

    #: DMSD steady-state frequencies (GHz) and measured delays (ns) at
    #: GOLDEN_RATES, recorded at the engine-selection rollout.
    GOLDEN = {
        "transpose": ((0.34375, 0.489583333, 0.666666667),
                      (39.3997, 39.2779, 38.9839)),
        "tornado": ((0.333333333, 0.395833333, 0.53125),
                    (39.2523, 38.61, 38.2792)),
    }

    @pytest.mark.parametrize("pattern", sorted(GOLDEN))
    def test_dmsd_operating_points_pinned(self, tiny_config, pattern):
        series = run_sweep(tiny_config,
                           _pattern_factory(tiny_config, pattern),
                           list(GOLDEN_RATES), _dmsd_strategy(),
                           TINY_BUDGET, seed=GOLDEN_SEED)
        golden_ghz, golden_ns = self.GOLDEN[pattern]
        for point, freq, delay in zip(series.points, golden_ghz,
                                      golden_ns):
            assert point.freq_hz == pytest.approx(freq * GHZ, rel=0.006)
            assert point.delay_ns == pytest.approx(delay, rel=0.02)

    def test_tornado_cheaper_than_transpose(self, tiny_config):
        """Sanity on the ordering Fig. 7 shows: tornado's short paths
        need less frequency than transpose at the same offered load."""
        results = {}
        for pattern in ("transpose", "tornado"):
            series = run_sweep(tiny_config,
                               _pattern_factory(tiny_config, pattern),
                               [GOLDEN_RATES[-1]], _dmsd_strategy(),
                               TINY_BUDGET, seed=GOLDEN_SEED)
            results[pattern] = series.points[0].freq_hz
        assert results["tornado"] < results["transpose"]


class TestFig8SensitivityGoldens:
    """Fig. 8's sensitivity knobs on the tiny mesh: more VCs or deeper
    buffers shift the DMSD fixed points down (better networks need
    less frequency for the same delay target)."""

    #: (config change, DMSD GHz golden, delay ns golden) per case.
    CASES = {
        "num_vcs=4": (dict(num_vcs=4),
                      (0.333333333, 0.385416667, 0.510416667),
                      (36.7034, 38.8898, 38.1452)),
        "vc_buf_depth=4": (dict(vc_buf_depth=4),
                           (0.333333333, 0.364583333, 0.458333333),
                           (32.6166, 38.13, 37.7963)),
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_dmsd_operating_points_pinned(self, tiny_config, case):
        changes, golden_ghz, golden_ns = self.CASES[case]
        config = tiny_config.with_(**changes)
        series = run_sweep(config, _pattern_factory(config, "uniform"),
                           list(GOLDEN_RATES), _dmsd_strategy(),
                           TINY_BUDGET, seed=GOLDEN_SEED)
        for point, freq, delay in zip(series.points, golden_ghz,
                                      golden_ns):
            assert point.freq_hz == pytest.approx(freq * GHZ, rel=0.006)
            assert point.delay_ns == pytest.approx(delay, rel=0.02)


class TestFig10MultimediaGoldens:
    """Fig. 10's multimedia sweep, tiny-knob edition: the H.264 app
    matrix on its 4x4 mesh with small buffers, swept over app speed."""

    CONFIG = NocConfig(width=4, height=4, num_vcs=2, vc_buf_depth=2,
                       packet_length=3)
    SPEEDS = (0.2, 0.5, 0.8)
    RMSD_LAMBDA_MAX = 0.3

    #: Mean offered node rate of the scaled H.264 matrix per speed —
    #: pure function of the app graph, exact.
    MEAN_RATES = (0.032388, 0.080971, 0.129554)

    #: No-DVFS delays (ns) and accepted rates at SPEEDS.
    NO_DVFS_DELAY_NS = (8.1667, 9.5022, 9.5337)
    NO_DVFS_ACCEPTED = (0.027625, 0.0835, 0.121375)

    #: RMSD accepted rates at SPEEDS (the delay explodes past the
    #: eq. (2) clip at higher speeds, exactly as Fig. 10 shows).
    RMSD_ACCEPTED = (0.02975, 0.070208, 0.095585)

    def _sweep(self, strategy):
        app = h264_encoder()
        config = self.CONFIG

        def factory(speed):
            return MatrixTraffic(app.traffic_at_speed(config, speed))

        return run_sweep(config, factory, list(self.SPEEDS), strategy,
                         TINY_BUDGET, seed=GOLDEN_SEED)

    def test_mean_rates_exact(self):
        app = h264_encoder()
        for speed, golden in zip(self.SPEEDS, self.MEAN_RATES):
            traffic = MatrixTraffic(
                app.traffic_at_speed(self.CONFIG, speed))
            assert traffic.mean_node_rate() == pytest.approx(golden,
                                                             abs=5e-7)

    def test_no_dvfs_series_pinned(self):
        series = self._sweep(NoDvfsSteadyState())
        for point, delay, accepted in zip(series.points,
                                          self.NO_DVFS_DELAY_NS,
                                          self.NO_DVFS_ACCEPTED):
            assert point.freq_hz == self.CONFIG.f_max_hz
            assert point.delay_ns == pytest.approx(delay, rel=0.02)
            assert point.accepted_rate == pytest.approx(accepted,
                                                        rel=0.02)

    def test_rmsd_series_pinned(self):
        series = self._sweep(
            RmsdSteadyState(lambda_max=self.RMSD_LAMBDA_MAX))
        for point, mean_rate, accepted in zip(series.points,
                                              self.MEAN_RATES,
                                              self.RMSD_ACCEPTED):
            golden_hz = rmsd_frequency(self.CONFIG, mean_rate,
                                       self.RMSD_LAMBDA_MAX)
            assert point.freq_hz == pytest.approx(golden_hz, rel=1e-5)
            assert point.accepted_rate == pytest.approx(accepted,
                                                        rel=0.02)
