"""Unit tests for the injection source state machine."""

import pytest

from repro.noc import Network, NocConfig
from repro.noc.flit import Packet


@pytest.fixture
def net(tiny_config):
    return Network(tiny_config)


def make_packet(cfg, src=0, dst=2):
    return Packet(src, dst, cfg.packet_length, 0, 0.0)


class TestSourceQueueing:
    def test_starts_idle(self, net):
        src = net.sources[0]
        assert not src.has_work
        assert src.backlog_flits() == 0

    def test_enqueue_creates_work(self, net, tiny_config):
        src = net.sources[0]
        src.enqueue(make_packet(tiny_config))
        assert src.has_work
        assert src.backlog_flits() == tiny_config.packet_length
        assert src.queued_packets() == 1

    def test_one_flit_per_cycle(self, net, tiny_config):
        src = net.sources[0]
        src.enqueue(make_packet(tiny_config))
        src.step(0)
        assert src.backlog_flits() == tiny_config.packet_length - 1
        src.step(1)
        assert src.backlog_flits() == tiny_config.packet_length - 2

    def test_injection_stalls_without_credits(self, net, tiny_config):
        """Once the local VC fills and no credits return, the source
        must hold the remaining flits."""
        src = net.sources[0]
        long_packet = Packet(0, 2, 10, 0, 0.0)
        src.enqueue(long_packet)
        # Step the source alone (the router never drains).
        for cycle in range(10):
            src.step(cycle)
        assert src.backlog_flits() == 10 - tiny_config.vc_buf_depth

    def test_draining_router_unstalls_source(self, net, tiny_config):
        """With the router running, credits return and the whole
        packet injects despite the shallow local buffer."""
        src = net.sources[0]
        src.enqueue(Packet(0, 2, 10, 0, 0.0))
        for cycle in range(200):
            src.step(cycle)
            net.step_cycle(cycle, float(cycle))
        assert src.backlog_flits() == 0
        assert not src.has_work

    def test_head_flit_records_injection_cycle(self, net, tiny_config):
        src = net.sources[0]
        p = make_packet(tiny_config)
        src.enqueue(p)
        src.step(7)
        assert p.injected_cycle == 7

    def test_vcs_rotate_between_packets(self, net, tiny_config):
        """Consecutive packets start on different local VCs."""
        src = net.sources[0]
        cfg = tiny_config
        p1, p2 = make_packet(cfg), make_packet(cfg)
        src.enqueue(p1)
        src.enqueue(p2)
        cycle = 0
        used_vcs = []
        while src.has_work and cycle < 500:
            before = src._vc if src._flits is not None else None
            src.step(cycle)
            net.step_cycle(cycle, float(cycle))
            if src._flits is not None and src._vc not in used_vcs:
                used_vcs.append(src._vc)
            cycle += 1
        assert len(set(used_vcs)) >= min(2, cfg.num_vcs)
