"""Unit tests for the multimedia application graphs (paper Fig. 9)."""

import pytest

from repro.noc import NocConfig
from repro.traffic import (H264_PUBLISHED_WEIGHTS, VCE_PUBLISHED_WEIGHTS,
                           h264_encoder, vce_encoder)
from repro.traffic.apps import ApplicationGraph, TaskEdge


class TestPublishedWeights:
    def test_h264_weight_multiset_matches_paper(self):
        assert h264_encoder().weight_multiset() == H264_PUBLISHED_WEIGHTS

    def test_vce_weight_multiset_matches_paper(self):
        assert vce_encoder().weight_multiset() == VCE_PUBLISHED_WEIGHTS

    def test_h264_edge_count(self):
        assert len(h264_encoder().edges) == 19

    def test_vce_edge_count(self):
        assert len(vce_encoder().edges) == 31


class TestMapping:
    def test_h264_fits_4x4(self):
        app = h264_encoder()
        assert (app.mesh_width, app.mesh_height) == (4, 4)
        assert all(0 <= n < 16 for n in app.mapping.values())

    def test_vce_fills_5x5(self):
        app = vce_encoder()
        assert (app.mesh_width, app.mesh_height) == (5, 5)
        assert len(app.mapping) == 25
        assert sorted(app.mapping.values()) == list(range(25))

    def test_no_two_tasks_share_a_node(self):
        for app in (h264_encoder(), vce_encoder()):
            nodes = list(app.mapping.values())
            assert len(nodes) == len(set(nodes))

    def test_validation_rejects_double_mapping(self):
        with pytest.raises(ValueError, match="two tasks"):
            ApplicationGraph("bad", [TaskEdge("a", "b", 1.0)],
                             {"a": 0, "b": 0}, 2, 2)

    def test_validation_rejects_unmapped_task(self):
        with pytest.raises(ValueError, match="unmapped"):
            ApplicationGraph("bad", [TaskEdge("a", "zz", 1.0)],
                             {"a": 0, "b": 1}, 2, 2)

    def test_validation_rejects_self_edge(self):
        with pytest.raises(ValueError, match="self-edge"):
            ApplicationGraph("bad", [TaskEdge("a", "a", 1.0)],
                             {"a": 0}, 2, 2)


class TestTrafficDerivation:
    def test_matrix_scales_linearly_with_fps(self):
        app = h264_encoder()
        cfg = NocConfig(width=4, height=4)
        slow = app.traffic_matrix(cfg, 10.0)
        fast = app.traffic_matrix(cfg, 20.0)
        assert fast.total_rate() == pytest.approx(2 * slow.total_rate())

    def test_matrix_requires_matching_mesh(self):
        app = h264_encoder()
        with pytest.raises(ValueError, match="4x4"):
            app.traffic_matrix(NocConfig(width=5, height=5), 10.0)

    def test_matrix_rejects_same_node_count_different_shape(self):
        # Regression: a 2x8 mesh has 16 nodes like the 4x4 the app is
        # mapped on, but flat node indices mean different coordinates
        # there — it must be rejected, not silently remapped.
        app = h264_encoder()
        with pytest.raises(ValueError, match="4x4"):
            app.traffic_matrix(NocConfig(width=2, height=8), 10.0)
        with pytest.raises(ValueError, match="4x4"):
            app.traffic_matrix(NocConfig(width=8, height=2), 10.0)

    def test_speed1_hits_peak_node_rate(self):
        app = vce_encoder()
        cfg = NocConfig(width=5, height=5)
        matrix = app.traffic_at_speed(cfg, 1.0, peak_node_rate=0.4)
        assert matrix.max_node_rate() == pytest.approx(0.4)

    def test_speed_scales_traffic(self):
        app = vce_encoder()
        cfg = NocConfig(width=5, height=5)
        half = app.traffic_at_speed(cfg, 0.5, peak_node_rate=0.4)
        assert half.max_node_rate() == pytest.approx(0.2)

    def test_traffic_follows_edge_weights(self):
        app = h264_encoder()
        cfg = NocConfig(width=4, height=4)
        matrix = app.traffic_matrix(cfg, 10.0)
        src = app.mapping["video_in"]
        dst = app.mapping["yuv_gen"]
        expected = 840 * 10.0 * cfg.packet_length / cfg.f_node_hz
        assert matrix.rates[src, dst] == pytest.approx(expected)

    def test_total_packets_per_frame(self):
        assert h264_encoder().total_packets_per_frame() \
            == pytest.approx(sum(H264_PUBLISHED_WEIGHTS))

    def test_zero_fps_means_zero_traffic(self):
        app = h264_encoder()
        cfg = NocConfig(width=4, height=4)
        assert app.traffic_matrix(cfg, 0.0).total_rate() == 0.0
