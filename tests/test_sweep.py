"""Tests for the steady-state sweep machinery."""

import pytest

from repro.analysis import (DmsdSteadyState, FAST, NoDvfsSteadyState,
                            RmsdSteadyState, SimBudget, run_fixed_point,
                            run_sweep)
from repro.noc import GHZ
from repro.power import PowerModel
from repro.traffic import PatternTraffic, make_pattern

TINY_BUDGET = SimBudget(200, 500, 1500)


@pytest.fixture
def factory(tiny_config):
    mesh = tiny_config.make_mesh()
    pattern = make_pattern("uniform", mesh)
    return lambda rate: PatternTraffic(pattern, rate)


class TestRunFixedPoint:
    def test_runs_at_requested_frequency(self, tiny_config, factory):
        res = run_fixed_point(tiny_config, factory(0.05), 0.5 * GHZ,
                              TINY_BUDGET, seed=1)
        assert res.mean_freq_hz == pytest.approx(0.5 * GHZ)

    def test_budget_respected(self, tiny_config, factory):
        res = run_fixed_point(tiny_config, factory(0.05),
                              tiny_config.f_max_hz, TINY_BUDGET, seed=1)
        assert res.warmup_cycles == TINY_BUDGET.warmup_cycles
        assert res.measure_cycles == TINY_BUDGET.measure_cycles


class TestStrategies:
    def test_no_dvfs_is_f_max(self, tiny_config, factory):
        strat = NoDvfsSteadyState()
        f = strat.frequency_for(tiny_config, factory(0.1), TINY_BUDGET, 1)
        assert f == tiny_config.f_max_hz

    def test_rmsd_applies_eq2(self, tiny_config, factory):
        strat = RmsdSteadyState(lambda_max=0.4)
        f = strat.frequency_for(tiny_config, factory(0.2), TINY_BUDGET, 1)
        assert f == pytest.approx(0.5 * GHZ)

    def test_dmsd_low_target_goes_fast(self, tiny_config, factory):
        """A target below the Fmax delay forces Fmax."""
        strat = DmsdSteadyState(target_delay_ns=5.0, iterations=3,
                                search_budget=TINY_BUDGET)
        f = strat.frequency_for(tiny_config, factory(0.1), TINY_BUDGET, 1)
        assert f == tiny_config.f_max_hz

    def test_dmsd_loose_target_goes_slow(self, tiny_config, factory):
        """A target above the Fmin delay allows Fmin."""
        strat = DmsdSteadyState(target_delay_ns=5000.0, iterations=3,
                                search_budget=TINY_BUDGET)
        f = strat.frequency_for(tiny_config, factory(0.05), TINY_BUDGET, 1)
        assert f == tiny_config.f_min_hz

    def test_dmsd_mid_target_meets_it(self, tiny_config, factory):
        """The bisected frequency lands the delay near the target."""
        zero_load = tiny_config.zero_load_latency_cycles()
        target = 2.2 * zero_load  # ns; reachable between Fmin and Fmax
        strat = DmsdSteadyState(target_delay_ns=target, iterations=6,
                                search_budget=TINY_BUDGET)
        f = strat.frequency_for(tiny_config, factory(0.05), TINY_BUDGET, 1)
        assert tiny_config.f_min_hz < f < tiny_config.f_max_hz
        res = run_fixed_point(tiny_config, factory(0.05), f,
                              TINY_BUDGET, seed=1)
        assert res.mean_delay_ns == pytest.approx(target, rel=0.25)

    def test_strategy_validation(self):
        with pytest.raises(ValueError):
            RmsdSteadyState(lambda_max=0.0)
        with pytest.raises(ValueError):
            DmsdSteadyState(target_delay_ns=-1.0)
        with pytest.raises(ValueError):
            DmsdSteadyState(target_delay_ns=10.0, iterations=0)


class TestRunSweep:
    def test_sweep_shape(self, tiny_config, factory):
        series = run_sweep(tiny_config, factory, [0.05, 0.1],
                           NoDvfsSteadyState(), TINY_BUDGET, seed=1)
        assert series.policy == "no-dvfs"
        assert series.xs == [0.05, 0.1]
        assert len(series.points) == 2

    def test_sweep_has_power(self, tiny_config, factory):
        pm = PowerModel(tiny_config)
        series = run_sweep(tiny_config, factory, [0.05],
                           NoDvfsSteadyState(), TINY_BUDGET, 1, pm)
        point = series.points[0]
        assert point.power is not None
        assert point.power_mw > 0

    def test_delay_grows_with_rate(self, tiny_config, factory):
        series = run_sweep(tiny_config, factory, [0.03, 0.25],
                           NoDvfsSteadyState(), TINY_BUDGET, seed=1)
        d = series.delays_ns()
        assert d[1] > d[0]

    def test_point_at_picks_nearest(self, tiny_config, factory):
        series = run_sweep(tiny_config, factory, [0.05, 0.2],
                           NoDvfsSteadyState(), TINY_BUDGET, seed=1)
        assert series.point_at(0.19).x == 0.2
        assert series.point_at(0.01).x == 0.05

    def test_rmsd_frequency_recorded(self, tiny_config, factory):
        series = run_sweep(tiny_config, factory, [0.1],
                           RmsdSteadyState(0.4), TINY_BUDGET, seed=1)
        assert series.points[0].freq_hz == pytest.approx(0.25 * GHZ * 1.3333333, rel=0.05)
        assert series.points[0].voltage_v < 0.9


class TestSimBudget:
    def test_scaled(self):
        b = SimBudget(1000, 2000, 4000).scaled(0.5)
        assert b.warmup_cycles == 500
        assert b.measure_cycles == 1000

    def test_scaled_floors(self):
        b = SimBudget(1000, 2000, 4000).scaled(0.01)
        assert b.warmup_cycles >= 200
        assert b.measure_cycles >= 400

    def test_validated_on_construction(self):
        """One validation point for every execution path — including
        the drain_cycles >= 0 case the batched kernel used to miss."""
        with pytest.raises(ValueError, match="warmup"):
            SimBudget(warmup_cycles=-1)
        with pytest.raises(ValueError, match="measure"):
            SimBudget(measure_cycles=0)
        with pytest.raises(ValueError, match="drain"):
            SimBudget(drain_cycles=-5)

    def test_zero_drain_is_valid(self):
        assert SimBudget(0, 1, 0).drain_cycles == 0
