"""Tests for per-packet trace export/analysis and ASCII charts."""

import pytest

from repro.analysis import (DelayDistribution, delay_distribution,
                            packet_records, per_flow_mean_delay,
                            read_trace_csv, write_trace_csv)
from repro.experiments import FigureResult, Series, ascii_chart
from repro.noc import Simulation
from repro.traffic import PatternTraffic, make_pattern


@pytest.fixture
def finished_sim(tiny_config):
    traffic = PatternTraffic(
        make_pattern("uniform", tiny_config.make_mesh()), 0.1)
    sim = Simulation(tiny_config, traffic, seed=3)
    result = sim.run(300, 800)
    return sim, result


class TestPacketRecords:
    def test_measured_records_match_result(self, finished_sim):
        sim, result = finished_sim
        records = packet_records(sim.network)
        assert len(records) == result.measured_delivered

    def test_all_records_include_warmup(self, finished_sim):
        sim, result = finished_sim
        all_records = packet_records(sim.network, measured_only=False)
        assert len(all_records) > result.measured_delivered

    def test_record_fields_consistent(self, finished_sim):
        sim, _ = finished_sim
        for record in packet_records(sim.network):
            assert record["latency_cycles"] == (record["ejected_cycle"]
                                                - record["created_cycle"])
            assert record["delay_ns"] == pytest.approx(
                record["ejected_ns"] - record["created_ns"])
            assert record["src"] != record["dst"]


class TestCsvRoundTrip:
    def test_round_trip(self, finished_sim, tmp_path):
        sim, _ = finished_sim
        records = packet_records(sim.network)
        path = tmp_path / "trace.csv"
        write_trace_csv(records, path)
        loaded = read_trace_csv(path)
        assert len(loaded) == len(records)
        assert loaded[0]["pid"] == records[0]["pid"]
        assert loaded[0]["delay_ns"] == pytest.approx(
            records[0]["delay_ns"])
        assert isinstance(loaded[0]["src"], int)


class TestDistribution:
    def test_summary_ordering(self, finished_sim):
        sim, _ = finished_sim
        dist = delay_distribution(packet_records(sim.network))
        assert dist.p50_ns <= dist.p95_ns <= dist.p99_ns <= dist.max_ns
        assert dist.count > 0
        assert "p99" in dist.render()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DelayDistribution.from_delays([])

    def test_per_flow_means(self, finished_sim):
        sim, _ = finished_sim
        flows = per_flow_mean_delay(packet_records(sim.network))
        assert flows
        for (src, dst), mean in flows.items():
            assert src != dst
            assert mean > 0


class TestAsciiChart:
    def test_chart_renders_all_series(self):
        fig = FigureResult("figX", "demo", "rate", "delay", [
            Series("a", [0.1, 0.2, 0.3], [10.0, 20.0, 30.0]),
            Series("b", [0.1, 0.2, 0.3], [30.0, 20.0, 10.0]),
        ])
        chart = ascii_chart(fig, width=30, height=8)
        assert "o=a" in chart and "x=b" in chart
        assert "o" in chart and "x" in chart

    def test_chart_requires_data(self):
        fig = FigureResult("figX", "demo", "x", "y",
                           [Series("a", [0.1], [None])])
        with pytest.raises(ValueError):
            ascii_chart(fig)

    def test_flat_series_handled(self):
        fig = FigureResult("figX", "demo", "x", "y",
                           [Series("a", [0.1, 0.2], [5.0, 5.0])])
        chart = ascii_chart(fig, width=20, height=5)
        assert "o" in chart
