"""Simulations on boundary configurations.

The library must stay correct at the edges of its parameter space:
single-flit packets, a single virtual channel, the minimum 2x2 mesh,
YX routing, deep/shallow buffers and long link latencies.
"""

import pytest

from repro.noc import NocConfig, Simulation
from repro.traffic import PatternTraffic, make_pattern


def run(cfg, rate=0.1, seed=1, warmup=300, measure=700):
    traffic = PatternTraffic(make_pattern("uniform", cfg.make_mesh()),
                             rate)
    return Simulation(cfg, traffic, seed=seed).run(warmup, measure)


class TestSingleFlitPackets:
    def test_delivery(self):
        cfg = NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                        packet_length=1)
        res = run(cfg)
        assert res.complete
        assert res.measured_delivered == res.measured_created

    def test_lower_latency_than_long_packets(self):
        short = run(NocConfig(width=3, height=3, num_vcs=2,
                              vc_buf_depth=2, packet_length=1))
        long = run(NocConfig(width=3, height=3, num_vcs=2,
                             vc_buf_depth=2, packet_length=8))
        assert short.mean_latency_cycles < long.mean_latency_cycles


class TestSingleVirtualChannel:
    def test_wormhole_without_vcs_works(self):
        cfg = NocConfig(width=3, height=3, num_vcs=1, vc_buf_depth=4,
                        packet_length=4)
        res = run(cfg, rate=0.05)
        assert res.complete

    def test_single_vc_saturates_earlier(self):
        one = run(NocConfig(width=3, height=3, num_vcs=1, vc_buf_depth=4,
                            packet_length=4), rate=0.3, measure=1000)
        four = run(NocConfig(width=3, height=3, num_vcs=4, vc_buf_depth=4,
                             packet_length=4), rate=0.3, measure=1000)
        assert four.mean_latency_cycles <= one.mean_latency_cycles * 1.1


class TestMinimumMesh:
    def test_2x2_mesh(self):
        cfg = NocConfig(width=2, height=2, num_vcs=2, vc_buf_depth=2,
                        packet_length=3)
        res = run(cfg, rate=0.2)
        assert res.complete
        assert res.mean_hops <= 3.0


class TestRectangularMesh:
    def test_non_square_mesh(self):
        cfg = NocConfig(width=5, height=2, num_vcs=2, vc_buf_depth=2,
                        packet_length=3)
        res = run(cfg)
        assert res.complete


class TestYxRouting:
    def test_yx_delivers(self):
        cfg = NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                        packet_length=3, routing="dor_yx")
        res = run(cfg)
        assert res.complete

    def test_yx_and_xy_same_zero_load_latency(self):
        xy = run(NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                           packet_length=3, routing="dor_xy"), rate=0.02)
        yx = run(NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                           packet_length=3, routing="dor_yx"), rate=0.02)
        assert xy.mean_latency_cycles == pytest.approx(
            yx.mean_latency_cycles, rel=0.2)


class TestLinkLatency:
    def test_longer_links_raise_latency(self):
        fast = run(NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                             packet_length=3, link_latency=1), rate=0.05)
        slow = run(NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                             packet_length=3, link_latency=4), rate=0.05)
        assert slow.mean_latency_cycles > fast.mean_latency_cycles + 2


class TestDeepBuffers:
    def test_deep_buffers_do_not_break_credits(self):
        cfg = NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=16,
                        packet_length=4)
        res = run(cfg, rate=0.3, measure=1000)
        assert res.measured_delivered == res.measured_created


class TestAsymmetricFrequencies:
    def test_node_clock_slower_than_network(self):
        """Fnode < Fmax is legal: the network idles between node ticks."""
        cfg = NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                        packet_length=3, f_node_hz=0.5e9)
        res = run(cfg)
        assert res.complete
        # Delay in ns ~ latency cycles at 1 GHz network clock.
        assert res.mean_delay_ns == pytest.approx(
            res.mean_latency_cycles, rel=0.15)
