"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.analysis import SingleServerDvfs
from repro.core import PiController, rmsd_frequency
from repro.noc import GHZ, Mesh, NocConfig
from repro.noc.allocator import RoundRobinArbiter
from repro.noc.clock import NodeClockBridge
from repro.noc.routing import route_path, xy_route
from repro.noc.stats import ACTIVITY_FIELDS, ActivityCounters
from repro.power import FDSOI_28NM
from repro.traffic import TrafficMatrix

# Simulation-free properties can afford many examples.
FAST_SETTINGS = settings(max_examples=200, deadline=None)
SLOW_SETTINGS = settings(max_examples=25, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])


class TestArbiterProperties:
    @FAST_SETTINGS
    @given(size=st.integers(1, 16), data=st.data())
    def test_grant_is_always_a_requester(self, size, data):
        arb = RoundRobinArbiter(size)
        for _ in range(10):
            requests = data.draw(st.lists(st.integers(0, size - 1),
                                          max_size=size))
            grant = arb.grant(requests)
            if requests:
                assert grant in requests
            else:
                assert grant is None

    @FAST_SETTINGS
    @given(size=st.integers(2, 12),
           requesters=st.sets(st.integers(0, 11), min_size=1))
    def test_round_robin_fairness(self, size, requesters):
        requesters = {r for r in requesters if r < size}
        assume(requesters)
        arb = RoundRobinArbiter(size)
        rounds = 6
        grants = [arb.grant(requesters)
                  for _ in range(rounds * len(requesters))]
        for r in requesters:
            assert grants.count(r) == rounds


class TestMeshProperties:
    @FAST_SETTINGS
    @given(w=st.integers(2, 9), h=st.integers(2, 9), data=st.data())
    def test_xy_route_path_minimal_and_in_mesh(self, w, h, data):
        mesh = Mesh(w, h)
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        dst = data.draw(st.integers(0, mesh.num_nodes - 1))
        assume(src != dst)
        path = route_path(mesh, xy_route, src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(path) - 1 == mesh.hop_distance(src, dst)
        assert all(0 <= n < mesh.num_nodes for n in path)

    @FAST_SETTINGS
    @given(w=st.integers(2, 9), h=st.integers(2, 9))
    def test_triangle_inequality(self, w, h):
        mesh = Mesh(w, h)
        rng = np.random.default_rng(0)
        nodes = rng.integers(0, mesh.num_nodes, size=(10, 3))
        for a, b, c in nodes:
            assert (mesh.hop_distance(a, c) <= mesh.hop_distance(a, b)
                    + mesh.hop_distance(b, c))


class TestPiProperties:
    @FAST_SETTINGS
    @given(ki=st.floats(0.0, 1.0), kp=st.floats(0.0, 1.0),
           errors=st.lists(st.floats(-100, 100, allow_nan=False),
                           min_size=1, max_size=50))
    def test_output_always_clamped(self, ki, kp, errors):
        pi = PiController(ki=ki, kp=kp, u_min=0.0, u_max=1.0, u_init=0.5)
        for e in errors:
            u = pi.step(e)
            assert 0.0 <= u <= 1.0

    @FAST_SETTINGS
    @given(errors=st.lists(st.floats(0.001, 10, allow_nan=False),
                           min_size=1, max_size=30))
    def test_positive_errors_never_decrease_u(self, errors):
        pi = PiController(ki=0.05, kp=0.0, u_init=0.0)
        prev = pi.u
        for e in errors:
            u = pi.step(e)
            assert u >= prev
            prev = u


class TestRmsdLawProperties:
    @FAST_SETTINGS
    @given(lam=st.floats(0.0, 1.0), lam_max=st.floats(0.05, 0.9))
    def test_frequency_always_in_range(self, lam, lam_max):
        cfg = NocConfig()
        f = rmsd_frequency(cfg, lam, lam_max)
        assert cfg.f_min_hz <= f <= cfg.f_max_hz

    @FAST_SETTINGS
    @given(lam_max=st.floats(0.1, 0.9), frac=st.floats(0.34, 1.0))
    def test_network_rate_pinned_inside_band(self, lam_max, frac):
        """For lambda in [lambda_min, lambda_max], lambda_noc == lambda_max."""
        cfg = NocConfig()
        lam = lam_max * frac
        f = rmsd_frequency(cfg, lam, lam_max)
        assume(cfg.f_min_hz < f < cfg.f_max_hz)
        lam_noc = lam * cfg.f_node_hz / f
        assert lam_noc == pytest.approx(lam_max, rel=1e-9)


class TestTechnologyProperties:
    @FAST_SETTINGS
    @given(f=st.floats(334e6, 999e6))
    def test_voltage_frequency_inverse(self, f):
        v = FDSOI_28NM.voltage_for(f)
        assert FDSOI_28NM.frequency_at(v) == pytest.approx(f, rel=1e-5)
        assert 0.56 <= v <= 0.90

    @FAST_SETTINGS
    @given(v1=st.floats(0.56, 0.9), v2=st.floats(0.56, 0.9))
    def test_frequency_monotone_in_voltage(self, v1, v2):
        assume(abs(v1 - v2) > 1e-6)
        lo, hi = sorted((v1, v2))
        assert FDSOI_28NM.frequency_at(lo) < FDSOI_28NM.frequency_at(hi)


class TestClockBridgeProperties:
    @FAST_SETTINGS
    @given(periods=st.lists(st.floats(0.5, 5.0), min_size=1, max_size=100))
    def test_every_node_cycle_delivered_exactly_once(self, periods):
        """For any network-frequency trajectory, node ticks are a gapless
        increasing sequence starting at 0."""
        bridge = NodeClockBridge(1 * GHZ)
        t = 0.0
        seen = []
        for p in periods:
            t += p
            seen.extend(bridge.elapsed_node_cycles(t))
        assert seen == list(range(len(seen)))


class TestTrafficMatrixProperties:
    @FAST_SETTINGS
    @given(n=st.integers(2, 10), data=st.data())
    def test_draw_dest_only_hits_nonzero_entries(self, n, data):
        pairs = data.draw(st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1),
                      st.floats(0.01, 1.0)),
            min_size=1, max_size=12))
        pairs = [(s, d, r) for s, d, r in pairs if s != d]
        assume(pairs)
        matrix = TrafficMatrix.from_pairs(n, pairs)
        rng = np.random.default_rng(0)
        allowed = {s: {d for ss, d, _ in pairs if ss == s}
                   for s, _, _ in pairs}
        for s in allowed:
            for _ in range(20):
                assert matrix.draw_dest(s, rng) in allowed[s]

    @FAST_SETTINGS
    @given(n=st.integers(2, 8), factor=st.floats(0.1, 10.0))
    def test_scaling_scales_all_rates(self, n, factor):
        matrix = TrafficMatrix.uniform(n, 0.5)
        scaled = matrix.scaled(factor)
        for i in range(n):
            assert scaled.node_rate(i) == pytest.approx(0.5 * factor)


class TestActivityCounterProperties:
    @FAST_SETTINGS
    @given(values=st.lists(
        st.tuples(*[st.integers(0, 10_000)] * len(ACTIVITY_FIELDS)),
        min_size=2, max_size=2))
    def test_add_sub_roundtrip(self, values):
        a = ActivityCounters(**dict(zip(ACTIVITY_FIELDS, values[0])))
        b = ActivityCounters(**dict(zip(ACTIVITY_FIELDS, values[1])))
        assert (a + b) - b == a
        assert (a + b).total_events() == a.total_events() + b.total_events()


class TestQueueingProperties:
    @FAST_SETTINGS
    @given(phi_min=st.floats(0.1, 0.9), rho_max=st.floats(0.5, 0.95),
           lam=st.floats(0.01, 0.94))
    def test_delay_based_never_worse_than_rate_based(self, phi_min,
                                                     rho_max, lam):
        """With the target set at the rate-based top-of-range delay,
        delay-based control is never slower at any load (the paper's
        trade-off claim in its purest form)."""
        assume(lam < rho_max)
        model = SingleServerDvfs(phi_min=phi_min, rho_max=rho_max)
        target = model.rate_based_delay(rho_max)
        assume(np.isfinite(target))
        assert (model.delay_based_delay(lam, target)
                <= model.rate_based_delay(lam) * (1 + 1e-9))

    @FAST_SETTINGS
    @given(phi_min=st.floats(0.15, 0.8), rho_max=st.floats(0.5, 0.95))
    def test_rate_based_peak_is_global_max(self, phi_min, rho_max):
        model = SingleServerDvfs(phi_min=phi_min, rho_max=rho_max)
        lam_peak, peak = model.rate_based_peak()
        for lam in np.linspace(0.01, rho_max * 0.999, 50):
            assert model.rate_based_delay(float(lam)) <= peak * (1 + 1e-9)


class TestSimulatorConservation:
    """End-to-end property: flits are conserved for arbitrary seeds."""

    @SLOW_SETTINGS
    @given(seed=st.integers(0, 10_000), rate=st.floats(0.02, 0.25))
    def test_all_measured_packets_delivered(self, seed, rate):
        from repro.noc import Simulation
        from repro.traffic import PatternTraffic, make_pattern

        cfg = NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                        packet_length=2)
        traffic = PatternTraffic(make_pattern("uniform", cfg.make_mesh()),
                                 rate)
        res = Simulation(cfg, traffic, seed=seed).run(150, 300)
        assert res.complete
        assert res.measured_delivered == res.measured_created
