"""Unit tests for discrete frequency quantization (paper footnote 2)."""

import pytest

from conftest import sample
from repro.core import (DmsdController, FixedFrequency, NoDvfs,
                        QuantizedPolicy, uniform_levels)
from repro.noc import GHZ, PAPER_BASELINE


class TestUniformLevels:
    def test_spans_range(self):
        levels = uniform_levels(PAPER_BASELINE, 4)
        assert levels[0] == pytest.approx(PAPER_BASELINE.f_min_hz)
        assert levels[-1] == pytest.approx(PAPER_BASELINE.f_max_hz)
        assert len(levels) == 4

    def test_evenly_spaced(self):
        levels = uniform_levels(PAPER_BASELINE, 5)
        steps = [b - a for a, b in zip(levels, levels[1:])]
        assert all(s == pytest.approx(steps[0]) for s in steps)

    def test_rejects_single_level(self):
        with pytest.raises(ValueError):
            uniform_levels(PAPER_BASELINE, 1)


class TestSnap:
    def test_snaps_up_never_down(self):
        q = QuantizedPolicy(NoDvfs(), num_levels=4)
        q.reset(PAPER_BASELINE)
        for f in (0.4 * GHZ, 0.5 * GHZ, 0.7 * GHZ, 0.95 * GHZ):
            snapped = q.snap(f)
            assert snapped >= f - 1e-3
            assert snapped in q.levels or snapped == q.levels[-1]

    def test_exact_level_unchanged(self):
        q = QuantizedPolicy(NoDvfs(), num_levels=4)
        q.reset(PAPER_BASELINE)
        for level in q.levels:
            assert q.snap(level) == pytest.approx(level)

    def test_above_top_clips(self):
        q = QuantizedPolicy(NoDvfs(), num_levels=4)
        q.reset(PAPER_BASELINE)
        assert q.snap(2 * GHZ) == q.levels[-1]


class TestWrapping:
    def test_inner_policy_output_is_quantized(self):
        q = QuantizedPolicy(FixedFrequency(0.6 * GHZ), num_levels=3)
        f = q.reset(PAPER_BASELINE)
        # Levels: 1/3, 2/3, 1 GHz; 0.6 snaps up to 2/3.
        assert q.update(sample()) == pytest.approx(GHZ * 2 / 3)

    def test_reset_returns_snapped_initial(self):
        q = QuantizedPolicy(FixedFrequency(0.6 * GHZ), num_levels=3)
        assert q.reset(PAPER_BASELINE) == pytest.approx(GHZ * 2 / 3)

    def test_name_derives_from_inner(self):
        q = QuantizedPolicy(DmsdController(150.0))
        assert q.name == "dmsd-q"

    def test_explicit_levels_must_span(self):
        q = QuantizedPolicy(NoDvfs(), levels=[0.5 * GHZ, 1.0 * GHZ])
        with pytest.raises(ValueError, match="span"):
            q.reset(PAPER_BASELINE)
