"""Unit tests for the single-server DVFS queueing model (ref. [12])."""

import numpy as np
import pytest

from repro.analysis import SingleServerDvfs, mm1_sojourn


class TestMm1:
    def test_sojourn_formula(self):
        assert mm1_sojourn(0.5, 1.0) == pytest.approx(2.0)

    def test_infinite_at_saturation(self):
        assert mm1_sojourn(1.0, 1.0) == float("inf")
        assert mm1_sojourn(1.2, 1.0) == float("inf")

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            mm1_sojourn(-0.1, 1.0)


class TestRateBasedControl:
    def test_phi_clips_low(self):
        model = SingleServerDvfs(phi_min=1 / 3, rho_max=0.9)
        assert model.rate_based_phi(0.05) == pytest.approx(1 / 3)

    def test_phi_tracks_utilization(self):
        model = SingleServerDvfs(phi_min=1 / 3, rho_max=0.9)
        assert model.rate_based_phi(0.45) == pytest.approx(0.5)

    def test_phi_clips_high(self):
        model = SingleServerDvfs(phi_min=1 / 3, rho_max=0.9)
        assert model.rate_based_phi(0.95) == 1.0

    def test_lam_min_boundary(self):
        model = SingleServerDvfs(phi_min=1 / 3, rho_max=0.9)
        assert model.lam_min == pytest.approx(0.3)

    def test_delay_is_non_monotonic(self):
        """The anomaly: delay rises to lam_min then falls (Fig. 2(b))."""
        model = SingleServerDvfs(phi_min=1 / 3, rho_max=0.9)
        lam_peak, peak = model.rate_based_peak()
        below = model.rate_based_delay(lam_peak * 0.5)
        above = model.rate_based_delay(min(0.89, lam_peak * 1.8))
        assert peak > below
        assert peak > above

    def test_peak_at_clip_boundary(self):
        model = SingleServerDvfs(phi_min=1 / 3, rho_max=0.9)
        lam_peak, _ = model.rate_based_peak()
        assert lam_peak == pytest.approx(model.lam_min)

    def test_constant_utilization_inside_range(self):
        """Inside [lam_min, rho_max] the delay falls as 1/lam."""
        model = SingleServerDvfs(phi_min=1 / 3, rho_max=0.9)
        for lam in (0.35, 0.5, 0.7):
            phi = model.rate_based_phi(lam)
            assert lam / phi == pytest.approx(0.9)

    def test_peak_much_higher_than_no_dvfs(self):
        """The paper's ~9x blow-up has a queueing-theory analogue."""
        model = SingleServerDvfs(phi_min=1 / 3, rho_max=0.9)
        lam_peak, peak = model.rate_based_peak()
        assert peak / model.no_dvfs_delay(lam_peak) > 5.0


class TestDelayBasedControl:
    def test_meets_target_exactly_in_band(self):
        model = SingleServerDvfs(phi_min=1 / 3, rho_max=0.9)
        target = 5.0
        for lam in (0.3, 0.5, 0.7):
            phi = model.delay_based_phi(lam, target)
            if model.phi_min < phi < 1.0:
                assert model.delay_based_delay(lam, target) \
                    == pytest.approx(target)

    def test_beats_target_at_low_load(self):
        """When clipped at phi_min the delay is below target."""
        model = SingleServerDvfs(phi_min=1 / 3, rho_max=0.9)
        target = 30.0
        assert model.delay_based_delay(0.01, target) < target

    def test_delay_based_never_exceeds_rate_based(self):
        model = SingleServerDvfs(phi_min=1 / 3, rho_max=0.9)
        target = model.rate_based_delay(0.9)  # rate-based delay at top
        for lam in np.linspace(0.05, 0.85, 15):
            assert (model.delay_based_delay(lam, target)
                    <= model.rate_based_delay(lam) + 1e-9)

    def test_validation(self):
        model = SingleServerDvfs()
        with pytest.raises(ValueError):
            model.delay_based_phi(0.5, 0.0)


class TestCurvesAndPower:
    def test_delay_curves_keys(self):
        model = SingleServerDvfs()
        curves = model.delay_curves(np.linspace(0.05, 0.8, 5), target=5.0)
        assert set(curves) == {"no-dvfs", "rate-based", "delay-based"}

    def test_power_proxy_monotone(self):
        model = SingleServerDvfs()
        assert model.power_proxy(0.5) < model.power_proxy(1.0)

    def test_power_proxy_validation(self):
        with pytest.raises(ValueError):
            SingleServerDvfs().power_proxy(0.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SingleServerDvfs(phi_min=0.0)
        with pytest.raises(ValueError):
            SingleServerDvfs(rho_max=1.0)
