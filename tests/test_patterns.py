"""Unit tests for synthetic traffic patterns."""

import numpy as np
import pytest

from repro.noc import Mesh
from repro.traffic import make_pattern
from repro.traffic.patterns import (BitReverseTraffic, ComplementTraffic,
                                    HotspotTraffic, NeighborTraffic,
                                    PATTERNS, ShuffleTraffic,
                                    TornadoTraffic, TransposeTraffic,
                                    UniformTraffic)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestUniform:
    def test_never_self(self, mesh4, rng):
        pat = UniformTraffic(mesh4)
        for src in range(mesh4.num_nodes):
            for _ in range(50):
                assert pat.dest(src, rng) != src

    def test_covers_all_destinations(self, mesh4, rng):
        pat = UniformTraffic(mesh4)
        seen = {pat.dest(0, rng) for _ in range(2000)}
        assert seen == set(range(1, mesh4.num_nodes))

    def test_roughly_uniform(self, mesh4, rng):
        pat = UniformTraffic(mesh4)
        counts = np.zeros(mesh4.num_nodes)
        n = 6000
        for _ in range(n):
            counts[pat.dest(5, rng)] += 1
        expected = n / (mesh4.num_nodes - 1)
        assert counts[5] == 0
        others = np.delete(counts, 5)
        assert np.all(np.abs(others - expected) < 5 * np.sqrt(expected))

    def test_not_deterministic(self, mesh4):
        assert not UniformTraffic(mesh4).is_deterministic


class TestPermutations:
    def test_complement(self, rng):
        mesh = Mesh(4, 4)
        pat = ComplementTraffic(mesh)
        assert pat.dest(0, rng) == 15
        assert pat.dest(5, rng) == 10

    def test_complement_odd_mesh_center_maps_to_self(self, rng):
        mesh = Mesh(5, 5)
        pat = ComplementTraffic(mesh)
        assert pat.dest(12, rng) == 12  # the centre is a fixed point

    def test_transpose(self, rng):
        mesh = Mesh(4, 4)
        pat = TransposeTraffic(mesh)
        assert pat.dest(mesh.node_at(1, 3), rng) == mesh.node_at(3, 1)

    def test_transpose_requires_square(self):
        with pytest.raises(ValueError):
            TransposeTraffic(Mesh(4, 3))

    def test_transpose_diagonal_fixed_points(self, rng):
        mesh = Mesh(4, 4)
        pat = TransposeTraffic(mesh)
        for i in range(4):
            assert pat.dest(mesh.node_at(i, i), rng) == mesh.node_at(i, i)

    def test_tornado_shift(self, rng):
        mesh = Mesh(5, 5)
        pat = TornadoTraffic(mesh)
        # ceil(5/2) - 1 = 2: (0,0) -> (2,2)
        assert pat.dest(0, rng) == mesh.node_at(2, 2)

    def test_tornado_is_permutation(self, rng):
        mesh = Mesh(5, 5)
        pat = TornadoTraffic(mesh)
        dests = {pat.dest(s, rng) for s in range(mesh.num_nodes)}
        assert len(dests) == mesh.num_nodes

    def test_neighbor_wraps(self, rng):
        mesh = Mesh(4, 4)
        pat = NeighborTraffic(mesh)
        assert pat.dest(mesh.node_at(3, 2), rng) == mesh.node_at(0, 2)

    def test_bitrev(self, rng):
        mesh = Mesh(4, 4)  # 16 nodes, 4 bits
        pat = BitReverseTraffic(mesh)
        assert pat.dest(0b0001, rng) == 0b1000
        assert pat.dest(0b1010, rng) == 0b0101

    def test_bitrev_requires_power_of_two(self):
        with pytest.raises(ValueError):
            BitReverseTraffic(Mesh(5, 5))

    def test_shuffle(self, rng):
        mesh = Mesh(4, 4)
        pat = ShuffleTraffic(mesh)
        assert pat.dest(0b0110, rng) == 0b1100
        assert pat.dest(0b1001, rng) == 0b0011

    def test_permutations_are_deterministic(self):
        mesh = Mesh(4, 4)
        for cls in (ComplementTraffic, TransposeTraffic, TornadoTraffic,
                    NeighborTraffic):
            assert cls(mesh).is_deterministic


class TestHotspot:
    def test_hotspot_receives_extra_traffic(self, rng):
        mesh = Mesh(4, 4)
        pat = HotspotTraffic(mesh, hotspot=5, fraction=0.5)
        hits = sum(pat.dest(0, rng) == 5 for _ in range(2000))
        assert hits > 800  # ~50% + uniform share

    def test_hotspot_never_self_targets(self, rng):
        mesh = Mesh(4, 4)
        pat = HotspotTraffic(mesh, hotspot=5, fraction=1.0)
        assert all(pat.dest(5, rng) != 5 for _ in range(100))

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            HotspotTraffic(Mesh(4, 4), fraction=1.5)

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            HotspotTraffic(Mesh(4, 4), hotspot=99)


class TestRegistry:
    def test_all_paper_patterns_registered(self):
        for name in ("uniform", "tornado", "bitcomp", "transpose",
                     "neighbor"):
            assert name in PATTERNS

    def test_make_pattern(self, mesh4):
        pat = make_pattern("tornado", mesh4)
        assert isinstance(pat, TornadoTraffic)

    def test_make_pattern_unknown(self, mesh4):
        with pytest.raises(ValueError, match="uniform"):
            make_pattern("nonsense", mesh4)

    def test_make_pattern_kwargs(self, mesh4):
        pat = make_pattern("hotspot", mesh4, hotspot=3, fraction=0.1)
        assert pat.hotspot == 3
