"""Tests for time-varying (stepped-rate) traffic."""

import numpy as np
import pytest

from repro.core import DmsdController
from repro.noc import NocConfig, Simulation
from repro.traffic import (InjectionProcess, PatternTraffic,
                           PiecewiseRateTraffic, make_pattern)


@pytest.fixture
def base(tiny_config):
    mesh = tiny_config.make_mesh()
    return PatternTraffic(make_pattern("uniform", mesh), 0.1)


class TestValidation:
    def test_requires_steps(self, base):
        with pytest.raises(ValueError):
            PiecewiseRateTraffic(base, [])

    def test_first_step_at_zero(self, base):
        with pytest.raises(ValueError, match="cycle 0"):
            PiecewiseRateTraffic(base, [(100, 1.0)])

    def test_steps_strictly_increasing(self, base):
        with pytest.raises(ValueError):
            PiecewiseRateTraffic(base, [(0, 1.0), (100, 2.0), (100, 3.0)])

    def test_rejects_negative_factor(self, base):
        with pytest.raises(ValueError):
            PiecewiseRateTraffic(base, [(0, -0.5)])


class TestFactors:
    def test_factor_lookup(self, base):
        spec = PiecewiseRateTraffic(base, [(0, 1.0), (100, 2.0),
                                           (300, 0.5)])
        assert spec.factor_at(0) == 1.0
        assert spec.factor_at(99) == 1.0
        assert spec.factor_at(100) == 2.0
        assert spec.factor_at(299) == 2.0
        assert spec.factor_at(1000) == 0.5

    def test_rate_factors_vector(self, base):
        spec = PiecewiseRateTraffic(base, [(0, 1.0), (3, 2.0)])
        assert list(spec.rate_factors(1, 4)) == [1.0, 1.0, 2.0, 2.0]

    def test_max_factor(self, base):
        spec = PiecewiseRateTraffic(base, [(0, 1.0), (10, 3.0)])
        assert spec.max_factor() == 3.0

    def test_spatial_distribution_unchanged(self, base, rng):
        spec = PiecewiseRateTraffic(base, [(0, 2.0)])
        assert all(spec.draw_dest(0, rng) != 0 for _ in range(50))


class TestInjectionWithSteps:
    def test_rate_doubles_after_step(self, base, rng):
        spec = PiecewiseRateTraffic(base, [(0, 1.0), (5000, 2.0)])
        proc = InjectionProcess(spec, packet_length=4, rng=rng)
        before = len(proc.arrivals(5000))
        after = len(proc.arrivals(5000))
        assert after > before * 1.5

    def test_peak_rate_capped(self, base, rng):
        """The cap applies to the highest stepped rate, not the base."""
        hot = PatternTraffic(base.pattern, 0.9)
        spec = PiecewiseRateTraffic(hot, [(0, 1.0), (10, 5.0)])
        with pytest.raises(ValueError, match="exceeds"):
            InjectionProcess(spec, packet_length=4, rng=rng)


class TestClosedLoopLoadStep:
    def test_dmsd_retunes_after_load_step(self, tiny_config):
        """The PI loop raises frequency when the load steps up."""
        mesh = tiny_config.make_mesh()
        base = PatternTraffic(make_pattern("uniform", mesh), 0.08)
        spec = PiecewiseRateTraffic(base, [(0, 1.0), (6000, 3.0)])
        target = 2.0 * tiny_config.zero_load_latency_cycles()
        ctrl = DmsdController(target_delay_ns=target, ki=0.3, kp=0.15)
        sim = Simulation(tiny_config, spec, controller=ctrl, seed=21,
                         control_period_node_cycles=300)
        res = sim.run(10_000, 1500)
        # Frequency before the step (after settling) vs after the step.
        pre_step = [f for t, f in res.freq_trace if 3000 < t < 6000]
        post_step = [f for t, f in res.freq_trace if t > 8000]
        assert pre_step and post_step
        assert max(post_step) > min(pre_step)
