"""Tests for per-router activity tracking and the power map."""

import pytest

from repro.noc import Network, Simulation
from repro.noc.flit import Packet
from repro.power import PowerModel, power_heatmap
from repro.traffic import PatternTraffic, make_pattern


def drive(net, cycles):
    for c in range(cycles):
        net.step_cycle(c, float(c))


class TestPerRouterCounters:
    def test_only_path_routers_count_traffic(self, tiny_config):
        """A single 0 -> 2 packet touches only the routers on its path."""
        net = Network(tiny_config)
        net.enqueue_packet(Packet(0, 2, tiny_config.packet_length, 0, 0.0))
        drive(net, 200)
        # XY path 0 -> 1 -> 2 in a 3x3 mesh.
        touched = {r.node for r in net.routers
                   if r.activity.buffer_writes > 0}
        assert touched == {0, 1, 2}

    def test_aggregate_equals_sum_of_routers(self, tiny_config):
        net = Network(tiny_config)
        for dst in (2, 6, 8):
            net.enqueue_packet(Packet(0, dst, tiny_config.packet_length,
                                      0, 0.0))
        drive(net, 400)
        agg = net.aggregate_activity()
        manual = net.router_activity_map()[0]
        for other in net.router_activity_map()[1:]:
            manual = manual + other
        assert agg == manual

    def test_aggregate_buffer_writes_count_all_hops(self, tiny_config):
        net = Network(tiny_config)
        p = Packet(0, 8, tiny_config.packet_length, 0, 0.0)
        net.enqueue_packet(p)
        drive(net, 300)
        hops = net.mesh.hop_distance(0, 8) + 1
        assert net.aggregate_activity().buffer_writes \
            == hops * tiny_config.packet_length

    def test_activity_map_is_a_copy(self, tiny_config):
        net = Network(tiny_config)
        net.enqueue_packet(Packet(0, 2, tiny_config.packet_length, 0, 0.0))
        drive(net, 200)
        snapshot = net.router_activity_map()
        before = snapshot[0].buffer_writes
        net.enqueue_packet(Packet(0, 2, tiny_config.packet_length, 0, 0.0))
        drive(net, 200)
        assert snapshot[0].buffer_writes == before


class TestRouterPowerMap:
    def test_map_via_simulation(self, tiny_config):
        traffic = PatternTraffic(
            make_pattern("uniform", tiny_config.make_mesh()), 0.1)
        sim = Simulation(tiny_config, traffic, seed=1)
        res = sim.run(300, 600)
        model = PowerModel(tiny_config)
        per_router = model.router_power_map(
            sim.network.router_activity_map(),
            freq_hz=tiny_config.f_max_hz,
            duration_ns=res.measure_duration_ns)
        assert len(per_router) == tiny_config.num_nodes
        assert all(p > 0 for p in per_router)
        # The centre router of a mesh carries more than the average
        # uniform through-traffic (short runs are too noisy to demand
        # it be the strict maximum).
        mean = sum(per_router) / len(per_router)
        assert per_router[4] > mean

    def test_map_validates_inputs(self, tiny_config):
        model = PowerModel(tiny_config)
        with pytest.raises(ValueError):
            model.router_power_map([], 1e9, 100.0)

    def test_heatmap_renders(self):
        text = power_heatmap([1.0, 2.0, 3.0, 4.0], width=2, height=2)
        assert "peak 4.00" in text
        assert text.count("\n") == 2

    def test_heatmap_validates_shape(self):
        with pytest.raises(ValueError):
            power_heatmap([1.0, 2.0], width=2, height=2)
