"""Unit tests for dimension-ordered routing."""

import pytest

from repro.noc.routing import (get_routing_function, route_path, xy_route,
                               yx_route)
from repro.noc.topology import EAST, LOCAL, Mesh, NORTH, SOUTH, WEST


class TestXyRoute:
    def test_corrects_x_first(self, mesh4):
        # from (0,0) to (2,2): must go EAST first under XY.
        assert xy_route(mesh4, 0, mesh4.node_at(2, 2)) == EAST

    def test_goes_west_when_needed(self, mesh4):
        assert xy_route(mesh4, mesh4.node_at(3, 0), 0) == WEST

    def test_y_after_x_aligned(self, mesh4):
        src = mesh4.node_at(2, 0)
        dst = mesh4.node_at(2, 3)
        assert xy_route(mesh4, src, dst) == SOUTH

    def test_north_when_above(self, mesh4):
        src = mesh4.node_at(1, 3)
        dst = mesh4.node_at(1, 1)
        assert xy_route(mesh4, src, dst) == NORTH

    def test_local_at_destination(self, mesh4):
        assert xy_route(mesh4, 5, 5) == LOCAL


class TestYxRoute:
    def test_corrects_y_first(self, mesh4):
        assert yx_route(mesh4, 0, mesh4.node_at(2, 2)) == SOUTH

    def test_x_after_y_aligned(self, mesh4):
        src = mesh4.node_at(0, 2)
        dst = mesh4.node_at(3, 2)
        assert yx_route(mesh4, src, dst) == EAST


class TestRegistry:
    def test_lookup_known(self):
        assert get_routing_function("dor_xy") is xy_route
        assert get_routing_function("dor_yx") is yx_route

    def test_lookup_unknown_raises_with_names(self):
        with pytest.raises(ValueError, match="dor_xy"):
            get_routing_function("adaptive")


class TestRoutePath:
    def test_path_is_minimal(self, mesh4):
        for src in range(mesh4.num_nodes):
            for dst in range(mesh4.num_nodes):
                if src == dst:
                    continue
                path = route_path(mesh4, xy_route, src, dst)
                assert len(path) - 1 == mesh4.hop_distance(src, dst)

    def test_path_endpoints(self, mesh4):
        path = route_path(mesh4, xy_route, 1, 14)
        assert path[0] == 1
        assert path[-1] == 14

    def test_path_of_self_is_single_node(self, mesh4):
        assert route_path(mesh4, xy_route, 3, 3) == [3]

    def test_xy_path_turns_at_most_once(self, mesh4):
        """XY routing: all x-moves strictly precede all y-moves."""
        for src in range(mesh4.num_nodes):
            for dst in range(mesh4.num_nodes):
                if src == dst:
                    continue
                path = route_path(mesh4, xy_route, src, dst)
                moves = []
                for a, b in zip(path, path[1:]):
                    ca, cb = mesh4.coord(a), mesh4.coord(b)
                    moves.append("x" if ca.y == cb.y else "y")
                assert "".join(moves).count("xy") <= 1
                assert "yx" not in "".join(moves)

    def test_xy_and_yx_paths_have_equal_length(self, mesh4):
        for src in (0, 5, 10):
            for dst in (15, 3, 12):
                if src == dst:
                    continue
                p1 = route_path(mesh4, xy_route, src, dst)
                p2 = route_path(mesh4, yx_route, src, dst)
                assert len(p1) == len(p2)
