"""Unit tests for the policy base classes and trivial policies."""

import pytest

from conftest import sample
from repro.core import FixedFrequency, NoDvfs
from repro.noc import GHZ, NocConfig
from repro.noc.stats import MeasurementSample


class TestMeasurementSample:
    def test_node_lambda(self):
        s = sample(node_lambda_flits=80, node_cycles=100, num_nodes=4)
        assert s.node_lambda == pytest.approx(0.2)

    def test_node_lambda_empty_window(self):
        s = MeasurementSample(0, 0, 0.0, 0, 0, None, None, 1 * GHZ, 0.0, 4)
        assert s.node_lambda == 0.0


class TestNoDvfs:
    def test_always_f_max(self):
        cfg = NocConfig()
        policy = NoDvfs()
        assert policy.reset(cfg) == cfg.f_max_hz
        assert policy.update(sample()) == cfg.f_max_hz

    def test_update_before_reset_raises(self):
        with pytest.raises(RuntimeError, match="reset"):
            NoDvfs().update(sample())


class TestFixedFrequency:
    def test_holds_frequency(self):
        policy = FixedFrequency(0.5 * GHZ)
        assert policy.reset(NocConfig()) == 0.5 * GHZ
        assert policy.update(sample()) == 0.5 * GHZ

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedFrequency(0.0)
