"""Tests for the Fig. 8 sensitivity-case generator."""

import pytest

from repro.analysis import sensitivity_cases
from repro.analysis.sensitivity import (BUFFER_VALUES, MESH_VALUES,
                                        PACKET_VALUES, VC_VALUES)
from repro.noc import PAPER_BASELINE


class TestCases:
    def test_paper_parameter_families(self):
        cases = sensitivity_cases(PAPER_BASELINE)
        assert set(cases) == {"virtual_channels", "vc_buffers",
                              "packet_size", "mesh_size"}

    def test_paper_values(self):
        assert VC_VALUES == (2, 4, 8)
        assert BUFFER_VALUES == (4, 8, 16)
        assert PACKET_VALUES == (10, 15, 20)
        assert MESH_VALUES == ((4, 4), (5, 5), (8, 8))

    def test_vc_cases_change_only_vcs(self):
        cases = sensitivity_cases(PAPER_BASELINE)["virtual_channels"]
        for case, vcs in zip(cases, VC_VALUES):
            assert case.config.num_vcs == vcs
            assert case.config.vc_buf_depth == PAPER_BASELINE.vc_buf_depth
            assert case.config.width == PAPER_BASELINE.width

    def test_mesh_cases_change_dimensions(self):
        cases = sensitivity_cases(PAPER_BASELINE)["mesh_size"]
        dims = [(c.config.width, c.config.height) for c in cases]
        assert dims == list(MESH_VALUES)

    def test_baseline_is_among_cases(self):
        """Each family contains the unmodified baseline value."""
        cases = sensitivity_cases(PAPER_BASELINE)
        assert any(c.config == PAPER_BASELINE
                   for c in cases["virtual_channels"])
        assert any(c.config == PAPER_BASELINE for c in cases["vc_buffers"])
        assert any(c.config == PAPER_BASELINE for c in cases["packet_size"])
        assert any(c.config == PAPER_BASELINE for c in cases["mesh_size"])

    def test_labels_are_descriptive(self):
        cases = sensitivity_cases(PAPER_BASELINE)
        assert cases["mesh_size"][0].label == "4x4"
        assert cases["virtual_channels"][0].label == "2 VCs"
