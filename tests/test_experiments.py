"""Tests for the experiments layer: rendering, workbench, fig5 driver.

The heavier figure drivers (2, 4, 6, 7, 8, 10) run in the benchmark
harness; here we exercise their plumbing on tiny configurations plus
everything that is cheap (Fig. 5, rendering, caching, profiles).
"""

import pytest

from repro.experiments import (FULL, QUICK, FigureResult, Series, Workbench,
                               active_profile, figure2, figure5,
                               render_figure, render_figures)
from repro.experiments.common import Profile
from repro.analysis.sweep import SimBudget
from repro.noc import NocConfig

TINY_PROFILE = Profile("tiny", SimBudget(200, 500, 1500),
                       sweep_points=3, dmsd_iterations=3,
                       saturation_iterations=3)


@pytest.fixture
def tiny_bench():
    return Workbench(profile=TINY_PROFILE, seed=5)


@pytest.fixture
def cfg():
    return NocConfig(width=3, height=3, num_vcs=2, vc_buf_depth=2,
                     packet_length=3)


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("s", [1.0, 2.0], [1.0])

    def test_y_at_nearest(self):
        s = Series("s", [0.1, 0.2, 0.3], [10.0, 20.0, 30.0])
        assert s.y_at(0.19) == 20.0
        assert s.y_at(0.0) == 10.0

    def test_y_at_empty_raises(self):
        with pytest.raises(ValueError):
            Series("s", [], []).y_at(0.1)


class TestRender:
    def test_render_contains_all_series(self):
        fig = FigureResult("figX", "demo", "x", "y", [
            Series("a", [0.1, 0.2], [1.0, 2.0]),
            Series("b", [0.1, 0.2], [3.0, None]),
        ], annotations={"ratio": 2.0}, notes=["hello"])
        text = render_figure(fig)
        assert "figX" in text and "demo" in text
        assert "a" in text and "b" in text
        assert "[ratio: 2.00]" in text
        assert "note: hello" in text
        assert "-" in text  # the None cell

    def test_series_named(self):
        fig = FigureResult("f", "t", "x", "y",
                           [Series("a", [1.0], [1.0])])
        assert fig.series_named("a").name == "a"
        with pytest.raises(KeyError):
            fig.series_named("zz")

    def test_render_figures_joins(self):
        fig = FigureResult("f", "t", "x", "y",
                           [Series("a", [1.0], [1.0])])
        assert render_figures([fig, fig]).count("f — t") == 2

    def test_disjoint_x_grids(self):
        fig = FigureResult("f", "t", "x", "y", [
            Series("a", [0.1], [1.0]),
            Series("b", [0.2], [2.0]),
        ])
        text = render_figure(fig)
        assert "0.100" in text and "0.200" in text


class TestProfiles:
    def test_default_profile_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert active_profile() is QUICK

    def test_full_profile_selectable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "full")
        assert active_profile() is FULL

    def test_unknown_profile_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "hero")
        with pytest.raises(ValueError):
            active_profile()


class TestWorkbenchCaching:
    def test_saturation_cached(self, tiny_bench, cfg):
        first = tiny_bench.saturation(cfg, "uniform")
        second = tiny_bench.saturation(cfg, "uniform")
        assert first is second

    def test_sweep_cached(self, tiny_bench, cfg):
        rates = (0.05, 0.1)
        a = tiny_bench.pattern_sweep(cfg, "uniform", "no-dvfs", rates)
        b = tiny_bench.pattern_sweep(cfg, "uniform", "no-dvfs", rates)
        assert a is b

    def test_rate_grid_includes_peak(self, tiny_bench, cfg):
        grid = tiny_bench.rate_grid(cfg, "uniform")
        lam_max = tiny_bench.saturation(cfg, "uniform").lambda_max
        lam_min = lam_max * cfg.f_min_hz / cfg.f_max_hz
        assert any(abs(g - round(lam_min, 4)) < 1e-9 for g in grid)
        # Grid values are rounded for cache-key stability; allow the
        # rounding to land a hair past lambda_max.
        assert max(grid) <= lam_max + 1e-5

    def test_unknown_policy_rejected(self, tiny_bench, cfg):
        with pytest.raises(ValueError):
            tiny_bench.strategy_for("magic", cfg, "uniform")


class TestFig5:
    def test_fig5_shape(self):
        fig = figure5(points=6)
        assert fig.figure_id == "fig5"
        series = fig.series_named("f_max")
        assert len(series.xs) == 6
        assert series.ys[0] == pytest.approx(0.333, abs=0.01)
        assert series.ys[-1] == pytest.approx(1.0, abs=0.01)

    def test_fig5_monotone(self):
        series = figure5(points=10).series_named("f_max")
        assert series.ys == sorted(series.ys)


class TestFig2OnTinyMesh:
    """The full driver, on a 3x3 mesh so it stays fast."""

    def test_fig2_panels(self, tiny_bench, cfg):
        figs = figure2(tiny_bench, cfg, "uniform")
        assert [f.figure_id for f in figs] == ["fig2a", "fig2b"]
        lat, delay = figs
        assert {s.name for s in lat.series} == {"no-dvfs", "rmsd"}
        assert "lambda_min" in lat.annotations
        assert delay.annotations["rmsd_peak_over_no_dvfs"] > 1.5

    def test_fig2_rmsd_delay_above_no_dvfs(self, tiny_bench, cfg):
        figs = figure2(tiny_bench, cfg, "uniform")
        delay = figs[1]
        rmsd = delay.series_named("rmsd")
        base = delay.series_named("no-dvfs")
        for r, b in zip(rmsd.ys, base.ys):
            if r is not None and b is not None:
                assert r >= b * 0.9
