"""Tier-1 enforcement: the shipped tree satisfies its own contract.

``repro-lint`` is only load-bearing if the gate runs where every PR
runs — so this module lints ``src/`` exactly like CI's
``python -m repro.lint src`` step and fails on any non-baselined
finding.  The CLI surface (formats, exit codes, baseline workflow) is
pinned here too, since CI scripts against it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.lint import Baseline, DEFAULT_BASELINE_NAME, check_paths
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / DEFAULT_BASELINE_NAME


def _tree_paths() -> list[Path]:
    if SRC.is_dir():
        return [SRC]
    # Installed layouts (no src/ checkout): lint the package itself.
    return [Path(repro.__file__).resolve().parent]


class TestTreeIsClean:
    def test_src_tree_has_no_unbaselined_findings(self):
        baseline = (Baseline.load(BASELINE) if BASELINE.exists()
                    else None)
        report = check_paths(_tree_paths(), baseline=baseline)
        details = "\n".join(f.render() for f in report.findings)
        assert report.findings == [], (
            f"repro-lint found determinism-contract violations "
            f"(fix them, suppress with a justified inline comment, "
            f"or grandfather via --write-baseline):\n{details}")
        assert report.files > 50  # the walk really saw the tree

    def test_committed_baseline_is_loadable_and_lean(self):
        # The baseline exists to absorb *grandfathered* findings; a
        # growing baseline means new debt is being hidden.  Today it
        # is empty — raising this bound needs a review conversation.
        if not BASELINE.exists():
            pytest.skip("no committed baseline in this layout")
        assert len(Baseline.load(BASELINE)) == 0


class TestCli:
    @pytest.fixture()
    def violating_tree(self, tmp_path):
        pkg = tmp_path / "repro" / "noc"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "import time\n\n\ndef now():\n    return time.time()\n")
        return tmp_path

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path), "--no-baseline"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violation_exits_one_text(self, violating_tree, capsys):
        code = main([str(violating_tree), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "D001" in out and "bad.py:5:" in out

    def test_json_format_is_machine_readable(self, violating_tree,
                                             capsys):
        code = main([str(violating_tree), "--no-baseline",
                     "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["version"] == 1
        assert payload["errors"] == 1
        [finding] = payload["findings"]
        assert finding["rule"] == "D001"
        assert finding["snippet"] == "return time.time()"

    def test_write_baseline_then_enforce(self, violating_tree,
                                         capsys, monkeypatch):
        monkeypatch.chdir(violating_tree)
        assert main([str(violating_tree), "--write-baseline"]) == 0
        assert (violating_tree / DEFAULT_BASELINE_NAME).exists()
        # default baseline is picked up from the cwd -> clean run
        assert main([str(violating_tree)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # and --no-baseline still exposes the grandfathered finding
        assert main([str(violating_tree), "--no-baseline"]) == 1

    def test_select_restricts_rules(self, violating_tree, capsys):
        assert main([str(violating_tree), "--no-baseline",
                     "--select", "D003"]) == 0

    def test_severity_override_flag(self, violating_tree, capsys):
        assert main([str(violating_tree), "--no-baseline",
                     "--severity", "D001=warning"]) == 0
        assert "warning" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("D001", "D002", "D003", "D004", "D005",
                        "D006"):
            assert rule_id in out

    def test_unknown_rule_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path), "--select", "D999"])
        assert excinfo.value.code == 2
