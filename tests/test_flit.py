"""Unit tests for packets and flits."""

import pytest

from repro.noc.flit import Flit, Packet, flits_of


def make_packet(length=4, src=0, dst=1):
    return Packet(src, dst, length, created_cycle=10, created_ns=10.0)


class TestPacket:
    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            Packet(0, 1, 0, 0, 0.0)

    def test_rejects_self_destination(self):
        with pytest.raises(ValueError):
            Packet(2, 2, 4, 0, 0.0)

    def test_pids_are_unique(self):
        a, b = make_packet(), make_packet()
        assert a.pid != b.pid

    def test_not_delivered_initially(self):
        assert not make_packet().is_delivered

    def test_latency_requires_delivery(self):
        with pytest.raises(RuntimeError):
            _ = make_packet().latency_cycles

    def test_delay_requires_delivery(self):
        with pytest.raises(RuntimeError):
            _ = make_packet().delay_ns

    def test_latency_and_delay_after_delivery(self):
        p = make_packet()
        p.ejected_cycle = 35
        p.ejected_ns = 60.0
        assert p.latency_cycles == 25
        assert p.delay_ns == pytest.approx(50.0)

    def test_measured_flag_default_false(self):
        assert make_packet().measured is False


class TestFlit:
    def test_head_tail_flags(self):
        p = make_packet(length=3)
        flits = flits_of(p)
        assert [f.is_head for f in flits] == [True, False, False]
        assert [f.is_tail for f in flits] == [False, False, True]

    def test_single_flit_packet_is_head_and_tail(self):
        flits = flits_of(make_packet(length=1))
        assert len(flits) == 1
        assert flits[0].is_head and flits[0].is_tail

    def test_flit_count_matches_length(self):
        assert len(flits_of(make_packet(length=7))) == 7

    def test_flits_reference_their_packet(self):
        p = make_packet()
        assert all(f.packet is p for f in flits_of(p))

    def test_flit_indices_are_ordered(self):
        flits = flits_of(make_packet(length=5))
        assert [f.index for f in flits] == list(range(5))

    def test_direct_flit_construction(self):
        p = make_packet(length=2)
        f = Flit(p, 1)
        assert f.is_tail and not f.is_head
